//! Regression of the paper's headline results in *shape*: power savings grow
//! with workload intensity, the performance cost stays small, and the DTPM
//! algorithm keeps the platform inside the thermal constraint (Figures 6.5,
//! 6.9 and the abstract's summary numbers).

#[path = "common/mod.rs"]
mod common;

use platform_sim::{BenchmarkComparison, ExperimentKind};
use workload::{BenchmarkCategory, BenchmarkId};

#[test]
fn power_savings_grow_with_workload_intensity() {
    let calibration = common::quick_calibration();

    // One representative benchmark per category (Figure 6.9 groups them the
    // same way): Dijkstra (low), Patricia (medium), matrix multiplication (high).
    let mut savings = Vec::new();
    for benchmark in [
        BenchmarkId::Dijkstra,
        BenchmarkId::Patricia,
        BenchmarkId::MatrixMult,
    ] {
        let with_fan = common::run(&calibration, ExperimentKind::DefaultWithFan, benchmark);
        let dtpm = common::run(&calibration, ExperimentKind::Dtpm, benchmark);
        let cmp = BenchmarkComparison::against_baseline(&with_fan, &dtpm);
        savings.push((
            benchmark,
            cmp.power_saving_percent,
            cmp.performance_loss_percent,
        ));
    }

    // Savings must be non-trivial for the heavier categories and must increase
    // from low to high activity (3% -> 8% -> 14% in the paper).
    let low = savings[0].1;
    let medium = savings[1].1;
    let high = savings[2].1;
    assert!(
        high > medium && medium > low,
        "savings must grow with intensity: {savings:?}"
    );
    assert!(high > 5.0, "high-activity savings {high:.1}% too small");
    assert!(low > -2.0, "low-activity runs must not cost extra power");

    // Performance losses stay bounded for every category; the low-activity
    // case is essentially free (paper: <1%).
    for &(benchmark, _, loss) in &savings {
        assert!(
            loss < 20.0,
            "{benchmark} performance loss {loss:.1}% too large"
        );
    }
    assert!(
        savings[0].2 < 2.0,
        "low-activity loss {:.2}% too large",
        savings[0].2
    );
}

#[test]
fn dtpm_keeps_every_category_within_the_constraint() {
    let calibration = common::quick_calibration();
    for benchmark in [
        BenchmarkId::Blowfish,
        BenchmarkId::Qsort,
        BenchmarkId::Basicmath,
        BenchmarkId::Templerun,
    ] {
        let result = common::run(&calibration, ExperimentKind::Dtpm, benchmark);
        let peak = result.trace.temperature_summary().max;
        assert!(
            peak <= 65.0,
            "{benchmark} peaked at {peak:.1} degC under DTPM"
        );
        assert!(result.completed, "{benchmark} did not complete under DTPM");
    }
}

#[test]
fn multi_threaded_benchmarks_show_the_same_trend_as_figure_6_10() {
    let calibration = common::quick_calibration();
    for benchmark in [BenchmarkId::FftMt, BenchmarkId::LuMt] {
        assert_eq!(benchmark.spec().category, BenchmarkCategory::High);
        let with_fan = common::run(&calibration, ExperimentKind::DefaultWithFan, benchmark);
        let dtpm = common::run(&calibration, ExperimentKind::Dtpm, benchmark);
        let cmp = BenchmarkComparison::against_baseline(&with_fan, &dtpm);
        assert!(
            cmp.power_saving_percent > 3.0,
            "{benchmark}: savings {:.1}% too small",
            cmp.power_saving_percent
        );
        assert!(
            cmp.performance_loss_percent < 25.0,
            "{benchmark}: loss {:.1}% too large",
            cmp.performance_loss_percent
        );
        let peak = dtpm.trace.temperature_summary().max;
        assert!(peak <= 65.0, "{benchmark}: DTPM peak {peak:.1}");
    }
}

//! Comparison of the four experimental configurations of Section 6.2 on a
//! high-activity benchmark (matrix multiplication, the Figure 6.8 workload).

#[path = "common/mod.rs"]
mod common;

use platform_sim::{ExperimentKind, StabilityReport};
use workload::BenchmarkId;

#[test]
fn configurations_rank_as_in_the_paper_for_a_heavy_benchmark() {
    let calibration = common::quick_calibration();
    let benchmark = BenchmarkId::MatrixMult;

    let with_fan = common::run(&calibration, ExperimentKind::DefaultWithFan, benchmark);
    let without_fan = common::run(&calibration, ExperimentKind::WithoutFan, benchmark);
    let reactive = common::run(&calibration, ExperimentKind::Reactive, benchmark);
    let dtpm = common::run(&calibration, ExperimentKind::Dtpm, benchmark);

    let peak = |r: &platform_sim::SimulationResult| r.trace.temperature_summary().max;

    // Without any thermal management the temperature runs away well past the
    // fan-cooled baseline (Figure 1.1 / Figure 6.3 "Without Fan").
    assert!(
        peak(&without_fan) > peak(&with_fan) + 3.0,
        "without-fan peak {:.1} vs with-fan {:.1}",
        peak(&without_fan),
        peak(&with_fan)
    );
    assert!(peak(&without_fan) > 66.0);

    // The proposed DTPM regulates the temperature at the 63 degC constraint
    // without a fan (small margin for prediction error / sensor noise).
    assert!(
        peak(&dtpm) <= 65.0,
        "DTPM peak {:.1} violates the constraint",
        peak(&dtpm)
    );
    assert!(
        peak(&dtpm) < peak(&without_fan) - 2.0,
        "DTPM must clearly improve over no management"
    );

    // DTPM saves platform power relative to the fan-cooled default (the fan
    // power goes away and the cluster runs at lower V/f when throttled).
    assert!(
        dtpm.mean_platform_power_w < with_fan.mean_platform_power_w,
        "DTPM {:.2} W vs with-fan {:.2} W",
        dtpm.mean_platform_power_w,
        with_fan.mean_platform_power_w
    );

    // The performance cost of DTPM stays bounded for a run of this length
    // (the paper reports at most ~5%; allow extra head-room for the simulated
    // plant, which heats faster than the real board).
    let loss =
        100.0 * (dtpm.execution_time_s - with_fan.execution_time_s) / with_fan.execution_time_s;
    assert!(
        (0.0..20.0).contains(&loss),
        "DTPM performance loss {loss:.1}% out of expected range"
    );

    // All four configurations complete the benchmark within the cap.
    for result in [&with_fan, &without_fan, &reactive, &dtpm] {
        assert!(result.completed, "{} did not finish", result.config.kind);
    }
}

#[test]
fn dtpm_is_more_stable_than_the_fan_once_regulation_engages() {
    let calibration = common::quick_calibration();
    let benchmark = BenchmarkId::Templerun;

    let with_fan = common::run(&calibration, ExperimentKind::DefaultWithFan, benchmark);
    let dtpm = common::run(&calibration, ExperimentKind::Dtpm, benchmark);

    // Figure 6.5: the DTPM algorithm shows a much smaller temperature spread
    // and variance than the fan-cooled default, which limit-cycles through its
    // 57/63/68 degC thresholds. Evaluate over the regulated portion of the
    // runs (skip the shared warm-up ramp).
    let fan_stability = StabilityReport::of_steady_portion(&with_fan, 0.3);
    let dtpm_stability = StabilityReport::of_steady_portion(&dtpm, 0.3);

    assert!(
        dtpm_stability.temp_range_c < fan_stability.temp_range_c,
        "DTPM range {:.1} vs fan range {:.1}",
        dtpm_stability.temp_range_c,
        fan_stability.temp_range_c
    );
    assert!(
        dtpm_stability.temp_variance < fan_stability.temp_variance,
        "DTPM variance {:.2} vs fan variance {:.2}",
        dtpm_stability.temp_variance,
        fan_stability.temp_variance
    );
}

#[test]
fn reactive_heuristic_fails_to_hold_the_constraint_that_dtpm_holds() {
    let calibration = common::quick_calibration();
    let benchmark = BenchmarkId::MatrixMult;

    let reactive = common::run(&calibration, ExperimentKind::Reactive, benchmark);
    let dtpm = common::run(&calibration, ExperimentKind::Dtpm, benchmark);

    let reactive_peak = reactive.trace.temperature_summary().max;
    let dtpm_peak = dtpm.trace.temperature_summary().max;

    // The reactive heuristic only acts after the threshold has been crossed
    // and its fixed 18%/25% cuts are not matched to the actual power budget,
    // so on a heavy workload it overshoots the constraint by several degrees
    // while the predictive approach stays pinned at it.
    assert!(
        reactive_peak > dtpm_peak + 1.0,
        "reactive peak {reactive_peak:.1} vs DTPM peak {dtpm_peak:.1}"
    );
    assert!(reactive_peak > 63.5, "reactive peak {reactive_peak:.1}");
    assert!(dtpm_peak <= 65.0, "DTPM peak {dtpm_peak:.1}");
}

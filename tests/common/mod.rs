//! Shared helpers for the cross-crate integration tests.

use platform_sim::{
    Calibration, CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind,
    SimulationResult,
};
use workload::BenchmarkId;

/// A reduced-length characterisation campaign used by the integration tests:
/// the same pipeline as the full campaign (furnace skipped, PRBS shortened)
/// with realistic noisy sensors.
#[allow(dead_code)]
pub fn quick_calibration() -> Calibration {
    CalibrationCampaign {
        prbs_duration_s: 300.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
    .run(2024)
    .expect("calibration campaign must succeed")
}

/// The full characterisation campaign including the furnace sweep.
#[allow(dead_code)]
pub fn full_calibration() -> Calibration {
    CalibrationCampaign::default()
        .run(2024)
        .expect("calibration campaign must succeed")
}

/// Runs one benchmark under one configuration with a fixed seed.
#[allow(dead_code)]
pub fn run(
    calibration: &Calibration,
    kind: ExperimentKind,
    benchmark: BenchmarkId,
) -> SimulationResult {
    let config = ExperimentConfig::new(kind, benchmark).with_seed(7);
    Experiment::new(&config, calibration)
        .expect("experiment construction must succeed")
        .run()
        .expect("experiment run must succeed")
}

//! Integration test of the characterisation pipeline: furnace leakage fit and
//! PRBS system identification (Chapter 4 of the paper).

#[path = "common/mod.rs"]
mod common;

use soc_model::{PowerDomain, Voltage};
use sysid::n_step_prediction;

#[test]
fn identified_model_meets_the_papers_accuracy_targets() {
    let calibration = common::quick_calibration();

    // The paper reports an average 1 s prediction error below 3 % (Figure 6.2).
    assert!(
        calibration.validation.mean_percent_error < 3.0,
        "1 s prediction error {:.2}% exceeds the 3% target",
        calibration.validation.mean_percent_error
    );
    assert!(
        calibration.validation.mean_abs_error_c < 1.5,
        "mean absolute error {:.2} degC too large",
        calibration.validation.mean_abs_error_c
    );
    // The identified model must be stable (physical thermal systems are).
    assert!(calibration.predictor.model().is_stable());
    assert_eq!(calibration.predictor.model().state_count(), 4);
    assert_eq!(calibration.predictor.model().input_count(), 4);
}

#[test]
fn furnace_characterisation_recovers_temperature_dependent_leakage() {
    let calibration = common::full_calibration();
    let leak = calibration
        .power_model
        .domain(PowerDomain::BigCpu)
        .leakage();
    let v = Voltage::from_volts(1.2);

    // Leakage must grow steeply (roughly 2.5-4x) from 40 to 80 degC, the shape
    // of Figure 4.3.
    let cool = leak.power_w(v, 42.0);
    let hot = leak.power_w(v, 82.0);
    assert!(cool > 0.0);
    assert!(
        hot / cool > 1.8 && hot / cool < 6.0,
        "leakage growth factor {:.2} out of the expected range",
        hot / cool
    );

    // And the full campaign still produces an accurate predictor.
    assert!(calibration.validation.mean_percent_error < 3.0);
}

#[test]
fn prediction_error_grows_moderately_with_horizon_like_figure_4_10() {
    use numeric::Vector;
    use platform_sim::{PhysicalPlant, PlantPowerParams, SensorSuite};
    use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, SocSpec};
    use sysid::IdentificationDataset;
    use workload::Demand;

    let calibration = common::quick_calibration();

    // Build fresh validation data the model has never seen: a Templerun-like
    // bursty workload on the plant, logged through the noisy sensors.
    let spec = SocSpec::odroid_xu_e();
    let mut plant = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut sensors = SensorSuite::odroid_defaults(321);
    let mut dataset = IdentificationDataset::new(4, 4, 0.1, 28.0).expect("dataset");
    let mut state = PlatformState::default_for(&spec);
    for k in 0..2400usize {
        // Alternate between a demanding game phase and a quieter phase.
        let busy = (k / 300) % 2 == 0;
        state.set_cluster_frequency(
            ClusterKind::Big,
            Frequency::from_mhz(if busy { 1600 } else { 1000 }),
        );
        let demand = Demand {
            cpu_streams: if busy { 3.2 } else { 1.2 },
            activity_factor: if busy { 0.85 } else { 0.45 },
            gpu_utilization: if busy { 0.6 } else { 0.2 },
            memory_intensity: 0.5,
            frequency_scalability: 0.7,
        };
        let step = plant
            .step_interval(&state, &demand, FanLevel::Off, 28.0, 0.1)
            .expect("plant step");
        let reading = sensors.sample(step.core_temps_c, &step.domain_power, step.platform_power_w);
        dataset
            .push(
                Vector::from_slice(&reading.core_temps_c),
                Vector::from_slice(&reading.domain_power.to_vec()),
            )
            .expect("push");
    }

    // Evaluate the prediction error at 0.5 s, 1 s, 2 s and 5 s horizons.
    let model = calibration.predictor.model();
    let errors: Vec<f64> = [5usize, 10, 20, 50]
        .iter()
        .map(|&h| {
            n_step_prediction(model, &dataset, h)
                .expect("prediction")
                .mean_percent_error
        })
        .collect();

    // Error grows with the horizon (Figure 4.10) but stays moderate at 5 s
    // (the paper reports roughly 7% there, 3% at 1 s).
    assert!(
        errors.windows(2).all(|w| w[1] >= w[0] * 0.8),
        "horizon sweep should not improve sharply with horizon: {errors:?}"
    );
    assert!(errors[1] < 4.0, "1 s error {:.2}% too large", errors[1]);
    assert!(errors[3] < 12.0, "5 s error {:.2}% too large", errors[3]);
    assert!(
        errors[3] >= errors[1],
        "5 s error must not be smaller than the 1 s error: {errors:?}"
    );
}

//! End-to-end distributed campaigns with real `dtpm-worker` subprocesses:
//! the coordinator in this test process, workers as spawned OS processes,
//! over both transport wirings (child stdio and localhost TCP).
//!
//! Verifies the full stack — binary spawn, Hello/Ready handshake with
//! worker-side calibration re-derivation, micro-shard leasing, per-cell
//! outcome transport, subprocess death recovery — and that the merged
//! aggregate is bit-identical to the in-process run of the same grid.

use std::net::TcpListener;
use std::process::Command;
use std::time::Duration;

use platform_sim::distributed::{ChildTransport, TcpTransport, Transport};
use platform_sim::{CalibrationCampaign, Coordinator, ExperimentKind, MergeSink, SweepSpec};
use workload::BenchmarkId;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_dtpm-worker");
const CALIBRATION_SEED: u64 = 37;

fn calibration_campaign() -> CalibrationCampaign {
    CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
}

/// A short six-cell campaign (2 kinds × 3 benchmarks, 1 s per cell).
fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        vec![ExperimentKind::Dtpm, ExperimentKind::Reactive],
        vec![
            BenchmarkId::Crc32,
            BenchmarkId::Qsort,
            BenchmarkId::Basicmath,
        ],
    );
    spec.campaign_seed = 0xE2E_0001;
    spec.max_duration_s = 1.0;
    spec.ideal_sensors = true;
    spec
}

/// The uninterrupted in-process fold the subprocess runs must reproduce.
fn reference_fold() -> &'static MergeSink {
    static REFERENCE: std::sync::OnceLock<MergeSink> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(|| {
        let calibration = calibration_campaign()
            .run(CALIBRATION_SEED)
            .expect("calibration campaign must succeed");
        let spec = small_spec();
        let mut sink = MergeSink::new(0..spec.cells());
        spec.runner().run_into(&calibration, &mut sink);
        assert!(sink.is_complete());
        sink
    })
}

fn coordinator() -> Coordinator {
    Coordinator::new(small_spec())
        .with_calibration(calibration_campaign(), CALIBRATION_SEED)
        .with_lease_cells(2)
        .with_lease_timeout(Duration::from_secs(60))
        .with_ready_timeout(Duration::from_secs(300))
}

#[test]
fn two_subprocess_workers_over_stdio_match_in_process_bits() {
    let transports: Vec<Box<dyn Transport>> = (0..2)
        .map(|_| {
            let transport = ChildTransport::spawn(&mut Command::new(WORKER_BIN))
                .expect("worker binary must spawn");
            Box::new(transport) as Box<dyn Transport>
        })
        .collect();
    let report = coordinator()
        .connect(transports)
        .expect("handshake with subprocess workers must succeed")
        .run()
        .expect("campaign must complete");
    assert_eq!(report.fold().encode(), reference_fold().encode());
    let stats = report.stats();
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.lost_workers, 0);
}

#[test]
fn dying_subprocess_worker_is_recovered_bit_identically() {
    // One worker dies (process exit, no goodbye) after delivering a single
    // cell; the healthy one absorbs the re-leased ranges.
    let chaotic = ChildTransport::spawn(Command::new(WORKER_BIN).args(["--die-after", "1"]))
        .expect("worker binary must spawn");
    let healthy =
        ChildTransport::spawn(&mut Command::new(WORKER_BIN)).expect("worker binary must spawn");
    let report = coordinator()
        .connect(vec![Box::new(chaotic), Box::new(healthy)])
        .expect("handshake must succeed")
        .run()
        .expect("campaign must survive the worker death");
    assert_eq!(report.fold().encode(), reference_fold().encode());
    assert_eq!(report.stats().lost_workers, 1);
}

#[test]
fn tcp_workers_match_in_process_bits() {
    // Workers connect back to a listening coordinator over localhost TCP —
    // the cross-host wiring, exercised end to end on one machine.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let mut children: Vec<std::process::Child> = (0..2)
        .map(|_| {
            Command::new(WORKER_BIN)
                .args(["--connect", &addr])
                .spawn()
                .expect("worker binary must spawn")
        })
        .collect();
    let transports: Vec<Box<dyn Transport>> = (0..2)
        .map(|_| {
            let (stream, _) = listener.accept().expect("worker must connect");
            Box::new(TcpTransport::from_stream(stream).expect("wrap stream")) as Box<dyn Transport>
        })
        .collect();
    let report = coordinator()
        .connect(transports)
        .expect("handshake over TCP must succeed")
        .run()
        .expect("campaign must complete");
    assert_eq!(report.fold().encode(), reference_fold().encode());
    for child in &mut children {
        let status = child.wait().expect("worker must be reapable");
        assert!(status.success(), "worker must exit cleanly: {status}");
    }
}

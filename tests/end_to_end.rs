//! End-to-end integration test: characterisation → DTPM control of a
//! benchmark → constraint satisfaction and sensible outputs.

#[path = "common/mod.rs"]
mod common;

use platform_sim::ExperimentKind;
use workload::BenchmarkId;

#[test]
fn dtpm_runs_a_benchmark_to_completion_within_the_thermal_constraint() {
    let calibration = common::quick_calibration();
    let result = common::run(&calibration, ExperimentKind::Dtpm, BenchmarkId::Patricia);

    assert!(
        result.completed,
        "patricia must finish within the duration cap"
    );
    assert!(result.execution_time_s > 50.0, "suspiciously short run");
    assert!(!result.trace.is_empty());

    // The DTPM configuration must keep the maximum core temperature at or
    // below the 63 degC constraint, allowing a small margin for prediction
    // error and sensor noise (the paper reports <1 degC at the 1 s horizon).
    let peak = result.trace.temperature_summary().max;
    assert!(
        peak <= 64.5,
        "DTPM must respect the 63 degC constraint, peak was {peak:.1}"
    );

    // Power and progress signals must be physically sensible.
    for record in result.trace.records() {
        assert!(record.domain_power.is_physical());
        assert!(record.platform_power_w > 1.0 && record.platform_power_w < 12.0);
        assert!((0.0..=1.0).contains(&record.progress));
        assert!(record.frequency_mhz >= 500 && record.frequency_mhz <= 1600);
        assert!(record.online_cores >= 1 && record.online_cores <= 4);
    }
    // Progress must be monotonically non-decreasing and end at 1.
    let progresses: Vec<f64> = result.trace.records().iter().map(|r| r.progress).collect();
    assert!(progresses.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    assert!(progresses.last().copied().unwrap_or(0.0) > 0.999);
}

#[test]
fn dtpm_is_non_intrusive_for_light_workloads() {
    let calibration = common::quick_calibration();
    let dtpm = common::run(&calibration, ExperimentKind::Dtpm, BenchmarkId::Crc32);
    let plain = common::run(&calibration, ExperimentKind::WithoutFan, BenchmarkId::Crc32);

    // CRC32 barely heats the chip, so the DTPM algorithm should almost never
    // intervene and the execution time should match the unmanaged run closely.
    assert!(
        dtpm.trace.intervention_rate() < 0.10,
        "DTPM intervened in {:.1}% of intervals for a light workload",
        100.0 * dtpm.trace.intervention_rate()
    );
    let slowdown = (dtpm.execution_time_s - plain.execution_time_s) / plain.execution_time_s;
    assert!(
        slowdown.abs() < 0.02,
        "light workloads must not be slowed down ({:.2}% observed)",
        100.0 * slowdown
    );
}

#[test]
fn dtpm_trace_reports_predictions_and_interventions_for_heavy_workloads() {
    let calibration = common::quick_calibration();
    let result = common::run(&calibration, ExperimentKind::Dtpm, BenchmarkId::MatrixMult);
    assert!(result.completed);

    // Predictions are logged every interval in the DTPM configuration.
    assert!(result
        .trace
        .records()
        .iter()
        .all(|r| r.predicted_peak_c.is_some()));

    // A heavy benchmark must eventually trigger the DTPM algorithm, and the
    // trace must reflect the throttling (some interval runs below 1.6 GHz).
    assert!(result.trace.intervention_rate() > 0.0);
    let min_freq = result
        .trace
        .frequency_series()
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_freq < 1600.0,
        "matrix multiplication must see throttling"
    );

    // The platform state in every record stays consistent with the actions.
    let peak = result.trace.temperature_summary().max;
    assert!(
        peak <= 65.0,
        "peak {peak:.1} degC exceeds the constraint region"
    );
}

//! `dtpm-worker`: the worker-process end of a distributed campaign.
//!
//! A thin argument parser around [`platform_sim::distributed::serve`]: the
//! coordinator ships the grid and calibration recipe over the transport, so
//! the binary itself takes only wiring and (for tests) chaos flags.
//!
//! ```text
//! dtpm-worker                         # serve on stdin/stdout (subprocess wiring)
//! dtpm-worker --connect HOST:PORT     # connect to a listening coordinator
//! ```
//!
//! Chaos flags (lease-recovery tests): `--die-after N` drops the transport
//! after delivering N cells; `--stall-after N --stall-ms M` sleeps M ms
//! once, before delivering cell N+1.

use std::process::ExitCode;
use std::time::Duration;

use platform_sim::distributed::{
    serve_with, StdioTransport, TcpTransport, Transport, WorkerChaos, WorkerOptions,
};

/// Parsed command line.
struct Args {
    connect: Option<String>,
    chaos: WorkerChaos,
}

fn usage() -> ! {
    eprintln!(
        "usage: dtpm-worker [--connect HOST:PORT] \
         [--die-after N] [--stall-after N] [--stall-ms M]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: None,
        chaos: WorkerChaos::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| -> String {
            argv.next().unwrap_or_else(|| {
                eprintln!("dtpm-worker: {flag} needs {what}");
                usage();
            })
        };
        match flag.as_str() {
            "--connect" => args.connect = Some(value("an address")),
            "--die-after" => {
                args.chaos.die_after_cells = Some(parse_count(&flag, &value("a cell count")));
            }
            "--stall-after" => {
                args.chaos.stall_after_cells = Some(parse_count(&flag, &value("a cell count")));
            }
            "--stall-ms" => {
                args.chaos.stall_for =
                    Duration::from_millis(parse_count(&flag, &value("milliseconds")) as u64);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("dtpm-worker: unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn parse_count(flag: &str, text: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("dtpm-worker: {flag} expects an unsigned integer, got {text:?}");
        usage();
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let transport: Box<dyn Transport> = match &args.connect {
        Some(addr) => match TcpTransport::connect(addr.as_str()) {
            Ok(transport) => Box::new(transport),
            Err(e) => {
                eprintln!("dtpm-worker: connecting to {addr} failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(StdioTransport::new()),
    };
    let options = WorkerOptions { chaos: args.chaos };
    match serve_with(transport, options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dtpm-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

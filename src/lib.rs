//! Umbrella crate for the DTPM reproduction workspace.
//!
//! The actual functionality lives in the `crates/` members; this root package
//! only hosts the repo-level integration tests (`tests/`) and the runnable
//! examples (`examples/`), and re-exports the member crates for convenience.

// (`bench` is not re-exported: a bare `pub use bench;` collides with the
// built-in `#[bench]` macro name; depend on the crate directly instead.)
pub use dtpm;
pub use governors;
pub use numeric;
pub use platform_sim;
pub use power_model;
pub use soc_model;
pub use sysid;
pub use thermal_model;
pub use workload;

//! Runtime-dispatched SIMD backends for the panel kernels.
//!
//! The batched engines spend almost all of their time in three loop shapes:
//! the fused matrix–panel kernels behind [`crate::Matrix::mul_panel_into`] and
//! [`crate::affine_pair_apply`], the leakage-current spans of the power model,
//! and elementwise `out = base + coef ⊙ cur` assembly spans. This module
//! provides explicit vector implementations of those shapes — AVX2 (4 × f64
//! per vector) on x86-64, NEON (2 × f64) on aarch64 — selected **once** per
//! process by [`PanelKernel::active`] and falling back to the portable blocked
//! scalar code everywhere else.
//!
//! # Kernel dispatch
//!
//! [`PanelKernel::active`] picks the widest kernel the host supports, probed
//! at first use via `is_x86_feature_detected!` /
//! `is_aarch64_feature_detected!` and cached for the life of the process. The
//! [`KERNEL_ENV`] environment variable (`DTPM_PANEL_KERNEL`) overrides the
//! choice for testing: `scalar` forces the portable path, `avx2` / `neon`
//! demand a specific vector path (panicking if the host cannot run it), and
//! `auto` (or unset) keeps the probe. Every dispatched entry point also has a
//! `*_with` form taking an explicit [`PanelKernel`], which the equivalence
//! suites and benchmarks use to compare arms inside one process; a `*_with`
//! call requesting an unavailable kernel safely degrades to scalar.
//!
//! # Bit-identical by default, fused on request
//!
//! In the default build every arm performs, per lane, the *same sequence of
//! IEEE-754 multiplies and adds* as the blocked scalar kernels (vector lanes
//! are independent, so elementwise vector ops round exactly like their scalar
//! counterparts). A lane's result is therefore bit-identical no matter which
//! arm processed it — the existing scalar-vs-batched equivalence suites
//! double as the SIMD oracle.
//!
//! The opt-in `fma` cargo feature switches the shared accumulate primitives
//! ([`madd`], [`madd2`] and their vector twins) to fused multiply-add. All
//! dispatch arms fuse *identically* (scalar code uses [`f64::mul_add`], which
//! rounds exactly like the vector FMA), so arms remain bit-identical to each
//! other; only the contract against the *unfused* reference expressions
//! relaxes, to the documented ≤ 1e-12 °C simulation-level bound. Builds with
//! `fma` should only run on hosts with FMA hardware — `f64::mul_add` without
//! it falls back to a (slow, but correct) libm call.

use std::sync::OnceLock;

/// Environment variable overriding [`PanelKernel::active`]: `auto` (default),
/// `scalar`, `avx2` or `neon`.
pub const KERNEL_ENV: &str = "DTPM_PANEL_KERNEL";

/// The SIMD arm the panel kernels dispatch through.
///
/// All variants exist on every architecture (so dispatch code can name them
/// unconditionally); [`PanelKernel::is_available`] reports whether the
/// current host can actually run one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelKernel {
    /// 256-bit AVX2 path on x86-64: 4 f64 per vector, fused multiply-add
    /// when the `fma` feature is enabled (the host must then also support
    /// FMA).
    Avx2Fma,
    /// 128-bit NEON path on aarch64: 2 f64 per vector.
    Neon,
    /// The portable blocked scalar path — always available, and the
    /// reference the vector arms are held bit-identical to.
    Scalar,
}

impl PanelKernel {
    /// The widest kernel this host supports.
    pub fn detect() -> Self {
        if Self::Avx2Fma.is_available() {
            Self::Avx2Fma
        } else if Self::Neon.is_available() {
            Self::Neon
        } else {
            Self::Scalar
        }
    }

    /// Whether this host can run the kernel.
    pub fn is_available(self) -> bool {
        match self {
            Self::Scalar => true,
            Self::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && (cfg!(not(feature = "fma"))
                            || std::arch::is_x86_feature_detected!("fma"))
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Self::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// The process-wide kernel every dispatched entry point uses: probed once
    /// at first use, honouring the [`KERNEL_ENV`] override (see the module
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics (on first use) if [`KERNEL_ENV`] names an unknown kernel or one
    /// this host cannot run — the override is a testing knob, and silently
    /// ignoring it would un-test the arm it asked for.
    pub fn active() -> Self {
        static ACTIVE: OnceLock<PanelKernel> = OnceLock::new();
        *ACTIVE.get_or_init(Self::select)
    }

    fn select() -> Self {
        Self::select_from(std::env::var(KERNEL_ENV).ok().as_deref())
    }

    /// The pure resolution step behind [`PanelKernel::active`]: maps a raw
    /// [`KERNEL_ENV`] value (`None` = unset) to a kernel. Factored out of the
    /// environment read so the diagnostic messages are unit-testable without
    /// racing on process-global environment state.
    ///
    /// # Panics
    ///
    /// Panics on an unknown or unavailable kernel name; the message lists the
    /// valid names and what the probe detected on this host, so a typo'd or
    /// mistargeted override is diagnosable from the panic alone.
    fn select_from(raw: Option<&str>) -> Self {
        let Some(raw) = raw else {
            return Self::detect();
        };
        let kernel = match raw.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => return Self::detect(),
            "scalar" => Self::Scalar,
            "avx2" | "avx2fma" | "avx2-fma" => Self::Avx2Fma,
            "neon" => Self::Neon,
            other => panic!(
                "{KERNEL_ENV}={other:?} is not a known panel kernel: valid values are \
                 auto, scalar, avx2 (aliases avx2fma, avx2-fma) and neon; \
                 the probe detected `{detected}` on this host",
                detected = Self::detect().name()
            ),
        };
        assert!(
            kernel.is_available(),
            "{KERNEL_ENV} requested the `{name}` kernel, which this host cannot run: \
             valid values are auto, scalar, avx2 (aliases avx2fma, avx2-fma) and neon; \
             the probe detected `{detected}` on this host",
            name = kernel.name(),
            detected = Self::detect().name()
        );
        kernel
    }

    /// Short lower-case name (as accepted by [`KERNEL_ENV`]).
    pub fn name(self) -> &'static str {
        match self {
            Self::Avx2Fma => "avx2",
            Self::Neon => "neon",
            Self::Scalar => "scalar",
        }
    }
}

/// The panel kernels' per-element accumulate step `acc + a·x`.
///
/// Plain multiply-then-add by default; a single fused multiply-add under the
/// `fma` feature. Scalar twins of the batched paths (the thermal transition
/// applies, the horizon-map prediction) accumulate through this same
/// primitive, which is what keeps them bit-identical to the panel kernels in
/// *every* build.
#[inline(always)]
pub fn madd(a: f64, x: f64, acc: f64) -> f64 {
    #[cfg(not(feature = "fma"))]
    {
        acc + a * x
    }
    #[cfg(feature = "fma")]
    {
        a.mul_add(x, acc)
    }
}

/// The panel kernels' fused two-term accumulate step `acc + a·x + b·y`
/// (see [`madd`]): one expression per index, `a`-term before `b`-term.
#[inline(always)]
pub fn madd2(a: f64, x: f64, b: f64, y: f64, acc: f64) -> f64 {
    #[cfg(not(feature = "fma"))]
    {
        acc + (a * x + b * y)
    }
    #[cfg(feature = "fma")]
    {
        a.mul_add(x, b.mul_add(y, acc))
    }
}

/// The `f32` twin of [`madd`]: `acc + a·x` in single precision, fused under
/// the `fma` feature. The mixed-precision panel paths accumulate through this
/// primitive so their scalar and vector arms round identically per lane.
#[inline(always)]
pub fn madd_f32(a: f32, x: f32, acc: f32) -> f32 {
    #[cfg(not(feature = "fma"))]
    {
        acc + a * x
    }
    #[cfg(feature = "fma")]
    {
        a.mul_add(x, acc)
    }
}

/// The `f32` twin of [`madd2`]: `acc + a·x + b·y` in single precision
/// (`a`-term before `b`-term).
#[inline(always)]
pub fn madd2_f32(a: f32, x: f32, b: f32, y: f32, acc: f32) -> f32 {
    #[cfg(not(feature = "fma"))]
    {
        acc + (a * x + b * y)
    }
    #[cfg(feature = "fma")]
    {
        a.mul_add(x, b.mul_add(y, acc))
    }
}

/// Elementwise fused span `out[k] = base[k] + coef[k] · cur[k]`, dispatched
/// through [`PanelKernel::active`] — the batched plant's per-micro-step
/// power-assembly kernel.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn fused_mul_add_span(base: &[f64], coef: &[f64], cur: &[f64], out: &mut [f64]) {
    fused_mul_add_span_elem_with(PanelKernel::active(), base, coef, cur, out);
}

/// [`fused_mul_add_span`] through an explicit kernel arm (testing/benching
/// form; an unavailable kernel degrades to scalar).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn fused_mul_add_span_with(
    kernel: PanelKernel,
    base: &[f64],
    coef: &[f64],
    cur: &[f64],
    out: &mut [f64],
) {
    fused_mul_add_span_elem_with(kernel, base, coef, cur, out);
}

/// Width-generic fused span `out[k] = base[k] + coef[k] · cur[k]` over any
/// panel element type, dispatched through [`PanelKernel::active`] — at `f32`
/// every vector carries twice the lanes of the `f64` path.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn fused_mul_add_span_elem<E: crate::Elem>(base: &[E], coef: &[E], cur: &[E], out: &mut [E]) {
    fused_mul_add_span_elem_with(PanelKernel::active(), base, coef, cur, out);
}

/// [`fused_mul_add_span_elem`] through an explicit kernel arm (an
/// unavailable kernel degrades to scalar).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn fused_mul_add_span_elem_with<E: crate::Elem>(
    kernel: PanelKernel,
    base: &[E],
    coef: &[E],
    cur: &[E],
    out: &mut [E],
) {
    let len = out.len();
    assert!(
        base.len() == len && coef.len() == len && cur.len() == len,
        "fused span slices must agree in length"
    );
    let kernel = if kernel.is_available() {
        kernel
    } else {
        PanelKernel::Scalar
    };
    if E::fused_span(kernel, base, coef, cur, out) {
        return;
    }
    for k in 0..len {
        out[k] = E::madd(coef[k], cur[k], base[k]);
    }
}

/// AVX2 (x86-64) arm: 256-bit vectors, 4 f64 each, a [`crate::LANE_CHUNK`]
/// of 8 lanes as a low/high vector pair. Fused multiply-add only under the
/// `fma` feature, with the same operation order as the scalar [`madd`] /
/// [`madd2`] primitives so every lane rounds identically.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use core::arch::x86_64::{
        __m256, __m256d, _mm256_loadu_pd, _mm256_loadu_ps, _mm256_set1_pd, _mm256_set1_ps,
        _mm256_storeu_pd, _mm256_storeu_ps,
    };
    #[cfg(not(feature = "fma"))]
    use core::arch::x86_64::{_mm256_add_pd, _mm256_add_ps, _mm256_mul_pd, _mm256_mul_ps};
    #[cfg(feature = "fma")]
    use core::arch::x86_64::{_mm256_fmadd_pd, _mm256_fmadd_ps};

    use crate::panel::LANE_CHUNK;

    #[cfg(not(feature = "fma"))]
    macro_rules! simd_fn {
        ($(#[$meta:meta])* unsafe fn $($rest:tt)*) => {
            $(#[$meta])*
            #[target_feature(enable = "avx2")]
            unsafe fn $($rest)*
        };
    }
    #[cfg(feature = "fma")]
    macro_rules! simd_fn {
        ($(#[$meta:meta])* unsafe fn $($rest:tt)*) => {
            $(#[$meta])*
            #[target_feature(enable = "avx2", enable = "fma")]
            unsafe fn $($rest)*
        };
    }

    simd_fn! {
        /// `acc + a·x` per lane, rounding exactly like [`crate::simd::madd`].
        #[inline]
        unsafe fn vmadd(a: __m256d, x: __m256d, acc: __m256d) -> __m256d {
            #[cfg(not(feature = "fma"))]
            {
                _mm256_add_pd(acc, _mm256_mul_pd(a, x))
            }
            #[cfg(feature = "fma")]
            {
                _mm256_fmadd_pd(a, x, acc)
            }
        }
    }

    simd_fn! {
        /// `acc + a·x + b·y` per lane, rounding exactly like
        /// [`crate::simd::madd2`].
        #[inline]
        unsafe fn vmadd2(a: __m256d, x: __m256d, b: __m256d, y: __m256d, acc: __m256d) -> __m256d {
            #[cfg(not(feature = "fma"))]
            {
                _mm256_add_pd(acc, _mm256_add_pd(_mm256_mul_pd(a, x), _mm256_mul_pd(b, y)))
            }
            #[cfg(feature = "fma")]
            {
                _mm256_fmadd_pd(a, x, _mm256_fmadd_pd(b, y, acc))
            }
        }
    }

    /// Rows handled per register-blocked pass: 8 vector accumulators (4 rows
    /// × a low/high pair) leave half the register file for operands.
    const ROW_BLOCK: usize = 4;

    /// Single-matrix panel product over the full lane chunks `[0, full)`:
    /// `out = bias ⊗ 1ᵀ + a·x` (`bias = None` ⇒ zeros), row-blocked so each
    /// loaded input row is applied to [`ROW_BLOCK`] output rows.
    ///
    /// # Safety
    ///
    /// AVX2 (and FMA under the `fma` feature) must be available. `a` must
    /// cover `m × n`, `x` `n × lanes`, `out` `m × lanes`, `bias` (if any)
    /// `m`; `full` must be a multiple of [`LANE_CHUNK`] and ≤ `lanes`.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn mul_chunks(
        a: &[f64],
        bias: Option<&[f64]>,
        x: &[f64],
        out: &mut [f64],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        debug_assert!(a.len() >= m * n && x.len() >= n * lanes && out.len() >= m * lanes);
        let ap = a.as_ptr();
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + ROW_BLOCK <= m {
                let mut acc = [[_mm256_set1_pd(0.0); 2]; ROW_BLOCK];
                for (r, slot) in acc.iter_mut().enumerate() {
                    let bv = _mm256_set1_pd(bias_at(i + r));
                    *slot = [bv, bv];
                }
                for j in 0..n {
                    let xl = _mm256_loadu_pd(xp.add(j * lanes + off));
                    let xh = _mm256_loadu_pd(xp.add(j * lanes + off + 4));
                    for (r, slot) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_pd(*ap.add((i + r) * n + j));
                        slot[0] = vmadd(va, xl, slot[0]);
                        slot[1] = vmadd(va, xh, slot[1]);
                    }
                }
                for (r, slot) in acc.iter().enumerate() {
                    _mm256_storeu_pd(op.add((i + r) * lanes + off), slot[0]);
                    _mm256_storeu_pd(op.add((i + r) * lanes + off + 4), slot[1]);
                }
                i += ROW_BLOCK;
            }
            while i < m {
                let bv = _mm256_set1_pd(bias_at(i));
                let mut accl = bv;
                let mut acch = bv;
                for j in 0..n {
                    let va = _mm256_set1_pd(*ap.add(i * n + j));
                    accl = vmadd(va, _mm256_loadu_pd(xp.add(j * lanes + off)), accl);
                    acch = vmadd(va, _mm256_loadu_pd(xp.add(j * lanes + off + 4)), acch);
                }
                _mm256_storeu_pd(op.add(i * lanes + off), accl);
                _mm256_storeu_pd(op.add(i * lanes + off + 4), acch);
                i += 1;
            }
            off += LANE_CHUNK;
        }
    }

    /// Affine-pair panel step over the full lane chunks `[0, full)`:
    /// `out = bias ⊗ 1ᵀ + a·x + b·y` (see [`mul_chunks`] for the layout
    /// contract; additionally `b` covers `m × n` and `y` `n × lanes`).
    ///
    /// # Safety
    ///
    /// As for [`mul_chunks`].
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn affine_chunks(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        x: &[f64],
        y: &[f64],
        out: &mut [f64],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        debug_assert!(a.len() >= m * n && b.len() >= m * n);
        debug_assert!(x.len() >= n * lanes && y.len() >= n * lanes && out.len() >= m * lanes);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + ROW_BLOCK <= m {
                let mut acc = [[_mm256_set1_pd(0.0); 2]; ROW_BLOCK];
                for (r, slot) in acc.iter_mut().enumerate() {
                    let bv = _mm256_set1_pd(bias_at(i + r));
                    *slot = [bv, bv];
                }
                for j in 0..n {
                    let xl = _mm256_loadu_pd(xp.add(j * lanes + off));
                    let xh = _mm256_loadu_pd(xp.add(j * lanes + off + 4));
                    let yl = _mm256_loadu_pd(yp.add(j * lanes + off));
                    let yh = _mm256_loadu_pd(yp.add(j * lanes + off + 4));
                    for (r, slot) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_pd(*ap.add((i + r) * n + j));
                        let vb = _mm256_set1_pd(*bp.add((i + r) * n + j));
                        slot[0] = vmadd2(va, xl, vb, yl, slot[0]);
                        slot[1] = vmadd2(va, xh, vb, yh, slot[1]);
                    }
                }
                for (r, slot) in acc.iter().enumerate() {
                    _mm256_storeu_pd(op.add((i + r) * lanes + off), slot[0]);
                    _mm256_storeu_pd(op.add((i + r) * lanes + off + 4), slot[1]);
                }
                i += ROW_BLOCK;
            }
            while i < m {
                let bv = _mm256_set1_pd(bias_at(i));
                let mut accl = bv;
                let mut acch = bv;
                for j in 0..n {
                    let va = _mm256_set1_pd(*ap.add(i * n + j));
                    let vb = _mm256_set1_pd(*bp.add(i * n + j));
                    let xl = _mm256_loadu_pd(xp.add(j * lanes + off));
                    let xh = _mm256_loadu_pd(xp.add(j * lanes + off + 4));
                    let yl = _mm256_loadu_pd(yp.add(j * lanes + off));
                    let yh = _mm256_loadu_pd(yp.add(j * lanes + off + 4));
                    accl = vmadd2(va, xl, vb, yl, accl);
                    acch = vmadd2(va, xh, vb, yh, acch);
                }
                _mm256_storeu_pd(op.add(i * lanes + off), accl);
                _mm256_storeu_pd(op.add(i * lanes + off + 4), acch);
                i += 1;
            }
            off += LANE_CHUNK;
        }
    }

    /// [`affine_chunks`] with a per-lane bias *panel* (`m × lanes`, same
    /// layout as `out`): `out = bias + a·x + b·y`. Accumulator init is a
    /// plain vector load of the bias row instead of a broadcast, so a
    /// constant per-lane drive term fuses into the transition apply rather
    /// than costing a separate read-modify-write pass over the output panel.
    ///
    /// # Safety
    ///
    /// As for [`affine_chunks`], with `bias` covering `m × lanes`.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn affine_panel_chunks(
        a: &[f64],
        b: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &[f64],
        out: &mut [f64],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        debug_assert!(a.len() >= m * n && b.len() >= m * n && bias.len() >= m * lanes);
        debug_assert!(x.len() >= n * lanes && y.len() >= n * lanes && out.len() >= m * lanes);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = bias.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + ROW_BLOCK <= m {
                let mut acc = [[_mm256_set1_pd(0.0); 2]; ROW_BLOCK];
                for (r, slot) in acc.iter_mut().enumerate() {
                    slot[0] = _mm256_loadu_pd(cp.add((i + r) * lanes + off));
                    slot[1] = _mm256_loadu_pd(cp.add((i + r) * lanes + off + 4));
                }
                for j in 0..n {
                    let xl = _mm256_loadu_pd(xp.add(j * lanes + off));
                    let xh = _mm256_loadu_pd(xp.add(j * lanes + off + 4));
                    let yl = _mm256_loadu_pd(yp.add(j * lanes + off));
                    let yh = _mm256_loadu_pd(yp.add(j * lanes + off + 4));
                    for (r, slot) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_pd(*ap.add((i + r) * n + j));
                        let vb = _mm256_set1_pd(*bp.add((i + r) * n + j));
                        slot[0] = vmadd2(va, xl, vb, yl, slot[0]);
                        slot[1] = vmadd2(va, xh, vb, yh, slot[1]);
                    }
                }
                for (r, slot) in acc.iter().enumerate() {
                    _mm256_storeu_pd(op.add((i + r) * lanes + off), slot[0]);
                    _mm256_storeu_pd(op.add((i + r) * lanes + off + 4), slot[1]);
                }
                i += ROW_BLOCK;
            }
            while i < m {
                let mut accl = _mm256_loadu_pd(cp.add(i * lanes + off));
                let mut acch = _mm256_loadu_pd(cp.add(i * lanes + off + 4));
                for j in 0..n {
                    let va = _mm256_set1_pd(*ap.add(i * n + j));
                    let vb = _mm256_set1_pd(*bp.add(i * n + j));
                    let xl = _mm256_loadu_pd(xp.add(j * lanes + off));
                    let xh = _mm256_loadu_pd(xp.add(j * lanes + off + 4));
                    let yl = _mm256_loadu_pd(yp.add(j * lanes + off));
                    let yh = _mm256_loadu_pd(yp.add(j * lanes + off + 4));
                    accl = vmadd2(va, xl, vb, yl, accl);
                    acch = vmadd2(va, xh, vb, yh, acch);
                }
                _mm256_storeu_pd(op.add(i * lanes + off), accl);
                _mm256_storeu_pd(op.add(i * lanes + off + 4), acch);
                i += 1;
            }
            off += LANE_CHUNK;
        }
    }

    /// Elementwise `out[k] = base[k] + coef[k] · cur[k]` (vector body plus a
    /// scalar tail that rounds identically).
    ///
    /// # Safety
    ///
    /// AVX2 (and FMA under the `fma` feature) must be available; the slices
    /// must agree in length (checked by the dispatching caller).
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn fused_mul_add_span(
        base: &[f64],
        coef: &[f64],
        cur: &[f64],
        out: &mut [f64],
    ) {
        let len = out.len();
        let mut k = 0;
        while k + 4 <= len {
            let v = vmadd(
                _mm256_loadu_pd(coef.as_ptr().add(k)),
                _mm256_loadu_pd(cur.as_ptr().add(k)),
                _mm256_loadu_pd(base.as_ptr().add(k)),
            );
            _mm256_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 4;
        }
        while k < len {
            out[k] = crate::simd::madd(coef[k], cur[k], base[k]);
            k += 1;
        }
    }

    // ---- f32 arms: 8 single-precision lanes per 256-bit vector, so one ----
    // ---- vector covers a whole LANE_CHUNK — twice the f64 throughput.  ----

    simd_fn! {
        /// `acc + a·x` per f32 lane, rounding exactly like
        /// [`crate::simd::madd_f32`].
        #[inline]
        unsafe fn vmadd_f32(a: __m256, x: __m256, acc: __m256) -> __m256 {
            #[cfg(not(feature = "fma"))]
            {
                _mm256_add_ps(acc, _mm256_mul_ps(a, x))
            }
            #[cfg(feature = "fma")]
            {
                _mm256_fmadd_ps(a, x, acc)
            }
        }
    }

    simd_fn! {
        /// `acc + a·x + b·y` per f32 lane, rounding exactly like
        /// [`crate::simd::madd2_f32`].
        #[inline]
        unsafe fn vmadd2_f32(a: __m256, x: __m256, b: __m256, y: __m256, acc: __m256) -> __m256 {
            #[cfg(not(feature = "fma"))]
            {
                _mm256_add_ps(acc, _mm256_add_ps(_mm256_mul_ps(a, x), _mm256_mul_ps(b, y)))
            }
            #[cfg(feature = "fma")]
            {
                _mm256_fmadd_ps(a, x, _mm256_fmadd_ps(b, y, acc))
            }
        }
    }

    /// The f32 [`mul_chunks`]: one 8-lane vector per [`LANE_CHUNK`] chunk,
    /// [`ROW_BLOCK`] output rows per pass (4 accumulators, half the register
    /// budget of the f64 path's low/high pairs).
    ///
    /// # Safety
    ///
    /// As for [`mul_chunks`], with every slice in f32.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn mul_chunks_f32(
        a: &[f32],
        bias: Option<&[f32]>,
        x: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        debug_assert!(a.len() >= m * n && x.len() >= n * lanes && out.len() >= m * lanes);
        let ap = a.as_ptr();
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + ROW_BLOCK <= m {
                let mut acc = [_mm256_set1_ps(0.0); ROW_BLOCK];
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_set1_ps(bias_at(i + r));
                }
                for j in 0..n {
                    let xv = _mm256_loadu_ps(xp.add(j * lanes + off));
                    for (r, slot) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_ps(*ap.add((i + r) * n + j));
                        *slot = vmadd_f32(va, xv, *slot);
                    }
                }
                for (r, slot) in acc.iter().enumerate() {
                    _mm256_storeu_ps(op.add((i + r) * lanes + off), *slot);
                }
                i += ROW_BLOCK;
            }
            while i < m {
                let mut acc = _mm256_set1_ps(bias_at(i));
                for j in 0..n {
                    let va = _mm256_set1_ps(*ap.add(i * n + j));
                    acc = vmadd_f32(va, _mm256_loadu_ps(xp.add(j * lanes + off)), acc);
                }
                _mm256_storeu_ps(op.add(i * lanes + off), acc);
                i += 1;
            }
            off += LANE_CHUNK;
        }
    }

    /// The f32 [`affine_chunks`]: one 8-lane vector per [`LANE_CHUNK`]
    /// chunk, [`ROW_BLOCK`] output rows per pass.
    ///
    /// # Safety
    ///
    /// As for [`affine_chunks`], with every slice in f32.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn affine_chunks_f32(
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        x: &[f32],
        y: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        debug_assert!(a.len() >= m * n && b.len() >= m * n);
        debug_assert!(x.len() >= n * lanes && y.len() >= n * lanes && out.len() >= m * lanes);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + ROW_BLOCK <= m {
                let mut acc = [_mm256_set1_ps(0.0); ROW_BLOCK];
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_set1_ps(bias_at(i + r));
                }
                for j in 0..n {
                    let xv = _mm256_loadu_ps(xp.add(j * lanes + off));
                    let yv = _mm256_loadu_ps(yp.add(j * lanes + off));
                    for (r, slot) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_ps(*ap.add((i + r) * n + j));
                        let vb = _mm256_set1_ps(*bp.add((i + r) * n + j));
                        *slot = vmadd2_f32(va, xv, vb, yv, *slot);
                    }
                }
                for (r, slot) in acc.iter().enumerate() {
                    _mm256_storeu_ps(op.add((i + r) * lanes + off), *slot);
                }
                i += ROW_BLOCK;
            }
            while i < m {
                let mut acc = _mm256_set1_ps(bias_at(i));
                for j in 0..n {
                    let va = _mm256_set1_ps(*ap.add(i * n + j));
                    let vb = _mm256_set1_ps(*bp.add(i * n + j));
                    let xv = _mm256_loadu_ps(xp.add(j * lanes + off));
                    let yv = _mm256_loadu_ps(yp.add(j * lanes + off));
                    acc = vmadd2_f32(va, xv, vb, yv, acc);
                }
                _mm256_storeu_ps(op.add(i * lanes + off), acc);
                i += 1;
            }
            off += LANE_CHUNK;
        }
    }

    /// The f32 [`affine_panel_chunks`]: one 8-lane vector per [`LANE_CHUNK`]
    /// chunk, [`ROW_BLOCK`] output rows per pass, accumulators initialised by
    /// vector loads of the `m × lanes` bias panel.
    ///
    /// # Safety
    ///
    /// As for [`affine_panel_chunks`], with every slice in f32.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn affine_panel_chunks_f32(
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        x: &[f32],
        y: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        debug_assert!(a.len() >= m * n && b.len() >= m * n && bias.len() >= m * lanes);
        debug_assert!(x.len() >= n * lanes && y.len() >= n * lanes && out.len() >= m * lanes);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = bias.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let mut off = 0;
        // Two-chunk pass: each coefficient broadcast feeds both chunks'
        // FMAs, halving the broadcast traffic that dominates this kernel at
        // narrow panel widths (at 16 f32 lanes a row is just two vectors, so
        // per-chunk broadcasting would re-load every `a`/`b` entry twice).
        // Per-lane operation order is untouched — a lane still sees bias,
        // then the `a`-term before the `b`-term for each `j` in order.
        while off + 2 * LANE_CHUNK <= full {
            let mut i = 0;
            while i + ROW_BLOCK <= m {
                let mut acc0 = [_mm256_set1_ps(0.0); ROW_BLOCK];
                let mut acc1 = [_mm256_set1_ps(0.0); ROW_BLOCK];
                for r in 0..ROW_BLOCK {
                    acc0[r] = _mm256_loadu_ps(cp.add((i + r) * lanes + off));
                    acc1[r] = _mm256_loadu_ps(cp.add((i + r) * lanes + off + LANE_CHUNK));
                }
                for j in 0..n {
                    let xv0 = _mm256_loadu_ps(xp.add(j * lanes + off));
                    let xv1 = _mm256_loadu_ps(xp.add(j * lanes + off + LANE_CHUNK));
                    let yv0 = _mm256_loadu_ps(yp.add(j * lanes + off));
                    let yv1 = _mm256_loadu_ps(yp.add(j * lanes + off + LANE_CHUNK));
                    for r in 0..ROW_BLOCK {
                        let va = _mm256_set1_ps(*ap.add((i + r) * n + j));
                        let vb = _mm256_set1_ps(*bp.add((i + r) * n + j));
                        acc0[r] = vmadd2_f32(va, xv0, vb, yv0, acc0[r]);
                        acc1[r] = vmadd2_f32(va, xv1, vb, yv1, acc1[r]);
                    }
                }
                for r in 0..ROW_BLOCK {
                    _mm256_storeu_ps(op.add((i + r) * lanes + off), acc0[r]);
                    _mm256_storeu_ps(op.add((i + r) * lanes + off + LANE_CHUNK), acc1[r]);
                }
                i += ROW_BLOCK;
            }
            while i < m {
                let mut acc0 = _mm256_loadu_ps(cp.add(i * lanes + off));
                let mut acc1 = _mm256_loadu_ps(cp.add(i * lanes + off + LANE_CHUNK));
                for j in 0..n {
                    let va = _mm256_set1_ps(*ap.add(i * n + j));
                    let vb = _mm256_set1_ps(*bp.add(i * n + j));
                    let xv0 = _mm256_loadu_ps(xp.add(j * lanes + off));
                    let xv1 = _mm256_loadu_ps(xp.add(j * lanes + off + LANE_CHUNK));
                    let yv0 = _mm256_loadu_ps(yp.add(j * lanes + off));
                    let yv1 = _mm256_loadu_ps(yp.add(j * lanes + off + LANE_CHUNK));
                    acc0 = vmadd2_f32(va, xv0, vb, yv0, acc0);
                    acc1 = vmadd2_f32(va, xv1, vb, yv1, acc1);
                }
                _mm256_storeu_ps(op.add(i * lanes + off), acc0);
                _mm256_storeu_ps(op.add(i * lanes + off + LANE_CHUNK), acc1);
                i += 1;
            }
            off += 2 * LANE_CHUNK;
        }
        while off < full {
            let mut i = 0;
            while i + ROW_BLOCK <= m {
                let mut acc = [_mm256_set1_ps(0.0); ROW_BLOCK];
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_loadu_ps(cp.add((i + r) * lanes + off));
                }
                for j in 0..n {
                    let xv = _mm256_loadu_ps(xp.add(j * lanes + off));
                    let yv = _mm256_loadu_ps(yp.add(j * lanes + off));
                    for (r, slot) in acc.iter_mut().enumerate() {
                        let va = _mm256_set1_ps(*ap.add((i + r) * n + j));
                        let vb = _mm256_set1_ps(*bp.add((i + r) * n + j));
                        *slot = vmadd2_f32(va, xv, vb, yv, *slot);
                    }
                }
                for (r, slot) in acc.iter().enumerate() {
                    _mm256_storeu_ps(op.add((i + r) * lanes + off), *slot);
                }
                i += ROW_BLOCK;
            }
            while i < m {
                let mut acc = _mm256_loadu_ps(cp.add(i * lanes + off));
                for j in 0..n {
                    let va = _mm256_set1_ps(*ap.add(i * n + j));
                    let vb = _mm256_set1_ps(*bp.add(i * n + j));
                    let xv = _mm256_loadu_ps(xp.add(j * lanes + off));
                    let yv = _mm256_loadu_ps(yp.add(j * lanes + off));
                    acc = vmadd2_f32(va, xv, vb, yv, acc);
                }
                _mm256_storeu_ps(op.add(i * lanes + off), acc);
                i += 1;
            }
            off += LANE_CHUNK;
        }
    }

    /// The f32 [`fused_mul_add_span`]: 8-wide vector body plus a scalar tail
    /// that rounds identically.
    ///
    /// # Safety
    ///
    /// AVX2 (and FMA under the `fma` feature) must be available; the slices
    /// must agree in length (checked by the dispatching caller).
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2", enable = "fma"))]
    pub(crate) unsafe fn fused_mul_add_span_f32(
        base: &[f32],
        coef: &[f32],
        cur: &[f32],
        out: &mut [f32],
    ) {
        let len = out.len();
        let mut k = 0;
        while k + 8 <= len {
            let v = vmadd_f32(
                _mm256_loadu_ps(coef.as_ptr().add(k)),
                _mm256_loadu_ps(cur.as_ptr().add(k)),
                _mm256_loadu_ps(base.as_ptr().add(k)),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(k), v);
            k += 8;
        }
        while k < len {
            out[k] = crate::simd::madd_f32(coef[k], cur[k], base[k]);
            k += 1;
        }
    }
}

/// NEON (aarch64) arm: 128-bit vectors, 2 f64 each, a [`crate::LANE_CHUNK`]
/// of 8 lanes as four vectors. Operation order matches the scalar [`madd`] /
/// [`madd2`] primitives in both the default and `fma` builds.
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use core::arch::aarch64::{
        float32x4_t, float64x2_t, vaddq_f32, vaddq_f64, vdupq_n_f32, vdupq_n_f64, vld1q_f32,
        vld1q_f64, vmulq_f32, vmulq_f64, vst1q_f32, vst1q_f64,
    };
    #[cfg(feature = "fma")]
    use core::arch::aarch64::{vfmaq_f32, vfmaq_f64};

    use crate::panel::LANE_CHUNK;

    /// Vectors per lane chunk (8 lanes / 2 f64 per vector).
    const CHUNK_VECS: usize = LANE_CHUNK / 2;

    /// f32 vectors per lane chunk (8 lanes / 4 f32 per vector).
    const CHUNK_VECS_F32: usize = LANE_CHUNK / 4;

    /// `acc + a·x` per lane (see the scalar [`crate::simd::madd`]).
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn vmadd(a: float64x2_t, x: float64x2_t, acc: float64x2_t) -> float64x2_t {
        #[cfg(not(feature = "fma"))]
        {
            vaddq_f64(acc, vmulq_f64(a, x))
        }
        #[cfg(feature = "fma")]
        {
            vfmaq_f64(acc, a, x)
        }
    }

    /// `acc + a·x + b·y` per lane (see the scalar [`crate::simd::madd2`]).
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn vmadd2(
        a: float64x2_t,
        x: float64x2_t,
        b: float64x2_t,
        y: float64x2_t,
        acc: float64x2_t,
    ) -> float64x2_t {
        #[cfg(not(feature = "fma"))]
        {
            vaddq_f64(acc, vaddq_f64(vmulq_f64(a, x), vmulq_f64(b, y)))
        }
        #[cfg(feature = "fma")]
        {
            vfmaq_f64(vfmaq_f64(acc, b, y), a, x)
        }
    }

    /// Single-matrix panel product over the full lane chunks `[0, full)`;
    /// two output rows per pass.
    ///
    /// # Safety
    ///
    /// NEON must be available; layout contract as in the AVX2 arm.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn mul_chunks(
        a: &[f64],
        bias: Option<&[f64]>,
        x: &[f64],
        out: &mut [f64],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        let ap = a.as_ptr();
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + 2 <= m {
                let b0 = vdupq_n_f64(bias_at(i));
                let b1 = vdupq_n_f64(bias_at(i + 1));
                let mut acc0 = [b0; CHUNK_VECS];
                let mut acc1 = [b1; CHUNK_VECS];
                for j in 0..n {
                    let va0 = vdupq_n_f64(*ap.add(i * n + j));
                    let va1 = vdupq_n_f64(*ap.add((i + 1) * n + j));
                    for v in 0..CHUNK_VECS {
                        let xv = vld1q_f64(xp.add(j * lanes + off + 2 * v));
                        acc0[v] = vmadd(va0, xv, acc0[v]);
                        acc1[v] = vmadd(va1, xv, acc1[v]);
                    }
                }
                for v in 0..CHUNK_VECS {
                    vst1q_f64(op.add(i * lanes + off + 2 * v), acc0[v]);
                    vst1q_f64(op.add((i + 1) * lanes + off + 2 * v), acc1[v]);
                }
                i += 2;
            }
            if i < m {
                let mut acc = [vdupq_n_f64(bias_at(i)); CHUNK_VECS];
                for j in 0..n {
                    let va = vdupq_n_f64(*ap.add(i * n + j));
                    for v in 0..CHUNK_VECS {
                        let xv = vld1q_f64(xp.add(j * lanes + off + 2 * v));
                        acc[v] = vmadd(va, xv, acc[v]);
                    }
                }
                for v in 0..CHUNK_VECS {
                    vst1q_f64(op.add(i * lanes + off + 2 * v), acc[v]);
                }
            }
            off += LANE_CHUNK;
        }
    }

    /// Affine-pair panel step over the full lane chunks `[0, full)`; two
    /// output rows per pass.
    ///
    /// # Safety
    ///
    /// NEON must be available; layout contract as in the AVX2 arm.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn affine_chunks(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        x: &[f64],
        y: &[f64],
        out: &mut [f64],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + 2 <= m {
                let bv0 = vdupq_n_f64(bias_at(i));
                let bv1 = vdupq_n_f64(bias_at(i + 1));
                let mut acc0 = [bv0; CHUNK_VECS];
                let mut acc1 = [bv1; CHUNK_VECS];
                for j in 0..n {
                    let va0 = vdupq_n_f64(*ap.add(i * n + j));
                    let va1 = vdupq_n_f64(*ap.add((i + 1) * n + j));
                    let vb0 = vdupq_n_f64(*bp.add(i * n + j));
                    let vb1 = vdupq_n_f64(*bp.add((i + 1) * n + j));
                    for v in 0..CHUNK_VECS {
                        let xv = vld1q_f64(xp.add(j * lanes + off + 2 * v));
                        let yv = vld1q_f64(yp.add(j * lanes + off + 2 * v));
                        acc0[v] = vmadd2(va0, xv, vb0, yv, acc0[v]);
                        acc1[v] = vmadd2(va1, xv, vb1, yv, acc1[v]);
                    }
                }
                for v in 0..CHUNK_VECS {
                    vst1q_f64(op.add(i * lanes + off + 2 * v), acc0[v]);
                    vst1q_f64(op.add((i + 1) * lanes + off + 2 * v), acc1[v]);
                }
                i += 2;
            }
            if i < m {
                let mut acc = [vdupq_n_f64(bias_at(i)); CHUNK_VECS];
                for j in 0..n {
                    let va = vdupq_n_f64(*ap.add(i * n + j));
                    let vb = vdupq_n_f64(*bp.add(i * n + j));
                    for v in 0..CHUNK_VECS {
                        let xv = vld1q_f64(xp.add(j * lanes + off + 2 * v));
                        let yv = vld1q_f64(yp.add(j * lanes + off + 2 * v));
                        acc[v] = vmadd2(va, xv, vb, yv, acc[v]);
                    }
                }
                for v in 0..CHUNK_VECS {
                    vst1q_f64(op.add(i * lanes + off + 2 * v), acc[v]);
                }
            }
            off += LANE_CHUNK;
        }
    }

    /// [`affine_chunks`] with a per-lane bias *panel* (`m × lanes`, same
    /// layout as `out`): `out = bias + a·x + b·y`, accumulators initialised
    /// by vector loads of the bias row.
    ///
    /// # Safety
    ///
    /// NEON must be available; layout contract as in the AVX2 arm.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn affine_panel_chunks(
        a: &[f64],
        b: &[f64],
        bias: &[f64],
        x: &[f64],
        y: &[f64],
        out: &mut [f64],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = bias.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + 2 <= m {
                let mut acc0 = [vdupq_n_f64(0.0); CHUNK_VECS];
                let mut acc1 = [vdupq_n_f64(0.0); CHUNK_VECS];
                for v in 0..CHUNK_VECS {
                    acc0[v] = vld1q_f64(cp.add(i * lanes + off + 2 * v));
                    acc1[v] = vld1q_f64(cp.add((i + 1) * lanes + off + 2 * v));
                }
                for j in 0..n {
                    let va0 = vdupq_n_f64(*ap.add(i * n + j));
                    let va1 = vdupq_n_f64(*ap.add((i + 1) * n + j));
                    let vb0 = vdupq_n_f64(*bp.add(i * n + j));
                    let vb1 = vdupq_n_f64(*bp.add((i + 1) * n + j));
                    for v in 0..CHUNK_VECS {
                        let xv = vld1q_f64(xp.add(j * lanes + off + 2 * v));
                        let yv = vld1q_f64(yp.add(j * lanes + off + 2 * v));
                        acc0[v] = vmadd2(va0, xv, vb0, yv, acc0[v]);
                        acc1[v] = vmadd2(va1, xv, vb1, yv, acc1[v]);
                    }
                }
                for v in 0..CHUNK_VECS {
                    vst1q_f64(op.add(i * lanes + off + 2 * v), acc0[v]);
                    vst1q_f64(op.add((i + 1) * lanes + off + 2 * v), acc1[v]);
                }
                i += 2;
            }
            if i < m {
                let mut acc = [vdupq_n_f64(0.0); CHUNK_VECS];
                for v in 0..CHUNK_VECS {
                    acc[v] = vld1q_f64(cp.add(i * lanes + off + 2 * v));
                }
                for j in 0..n {
                    let va = vdupq_n_f64(*ap.add(i * n + j));
                    let vb = vdupq_n_f64(*bp.add(i * n + j));
                    for v in 0..CHUNK_VECS {
                        let xv = vld1q_f64(xp.add(j * lanes + off + 2 * v));
                        let yv = vld1q_f64(yp.add(j * lanes + off + 2 * v));
                        acc[v] = vmadd2(va, xv, vb, yv, acc[v]);
                    }
                }
                for v in 0..CHUNK_VECS {
                    vst1q_f64(op.add(i * lanes + off + 2 * v), acc[v]);
                }
            }
            off += LANE_CHUNK;
        }
    }

    /// Elementwise `out[k] = base[k] + coef[k] · cur[k]`.
    ///
    /// # Safety
    ///
    /// NEON must be available; the slices must agree in length (checked by
    /// the dispatching caller).
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn fused_mul_add_span(
        base: &[f64],
        coef: &[f64],
        cur: &[f64],
        out: &mut [f64],
    ) {
        let len = out.len();
        let mut k = 0;
        while k + 2 <= len {
            let v = vmadd(
                vld1q_f64(coef.as_ptr().add(k)),
                vld1q_f64(cur.as_ptr().add(k)),
                vld1q_f64(base.as_ptr().add(k)),
            );
            vst1q_f64(out.as_mut_ptr().add(k), v);
            k += 2;
        }
        while k < len {
            out[k] = crate::simd::madd(coef[k], cur[k], base[k]);
            k += 1;
        }
    }

    // ---- f32 arms: 4 single-precision lanes per 128-bit vector, two ----
    // ---- vectors per LANE_CHUNK — twice the f64 throughput.         ----

    /// `acc + a·x` per f32 lane (see the scalar [`crate::simd::madd_f32`]).
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn vmadd_f32(a: float32x4_t, x: float32x4_t, acc: float32x4_t) -> float32x4_t {
        #[cfg(not(feature = "fma"))]
        {
            vaddq_f32(acc, vmulq_f32(a, x))
        }
        #[cfg(feature = "fma")]
        {
            vfmaq_f32(acc, a, x)
        }
    }

    /// `acc + a·x + b·y` per f32 lane (see [`crate::simd::madd2_f32`]).
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn vmadd2_f32(
        a: float32x4_t,
        x: float32x4_t,
        b: float32x4_t,
        y: float32x4_t,
        acc: float32x4_t,
    ) -> float32x4_t {
        #[cfg(not(feature = "fma"))]
        {
            vaddq_f32(acc, vaddq_f32(vmulq_f32(a, x), vmulq_f32(b, y)))
        }
        #[cfg(feature = "fma")]
        {
            vfmaq_f32(vfmaq_f32(acc, b, y), a, x)
        }
    }

    /// The f32 [`mul_chunks`]: two 4-lane vectors per chunk, two output rows
    /// per pass.
    ///
    /// # Safety
    ///
    /// NEON must be available; layout contract as in [`mul_chunks`], with
    /// every slice in f32.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn mul_chunks_f32(
        a: &[f32],
        bias: Option<&[f32]>,
        x: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        let ap = a.as_ptr();
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + 2 <= m {
                let mut acc0 = [vdupq_n_f32(bias_at(i)); CHUNK_VECS_F32];
                let mut acc1 = [vdupq_n_f32(bias_at(i + 1)); CHUNK_VECS_F32];
                for j in 0..n {
                    let va0 = vdupq_n_f32(*ap.add(i * n + j));
                    let va1 = vdupq_n_f32(*ap.add((i + 1) * n + j));
                    for v in 0..CHUNK_VECS_F32 {
                        let xv = vld1q_f32(xp.add(j * lanes + off + 4 * v));
                        acc0[v] = vmadd_f32(va0, xv, acc0[v]);
                        acc1[v] = vmadd_f32(va1, xv, acc1[v]);
                    }
                }
                for v in 0..CHUNK_VECS_F32 {
                    vst1q_f32(op.add(i * lanes + off + 4 * v), acc0[v]);
                    vst1q_f32(op.add((i + 1) * lanes + off + 4 * v), acc1[v]);
                }
                i += 2;
            }
            if i < m {
                let mut acc = [vdupq_n_f32(bias_at(i)); CHUNK_VECS_F32];
                for j in 0..n {
                    let va = vdupq_n_f32(*ap.add(i * n + j));
                    for v in 0..CHUNK_VECS_F32 {
                        let xv = vld1q_f32(xp.add(j * lanes + off + 4 * v));
                        acc[v] = vmadd_f32(va, xv, acc[v]);
                    }
                }
                for v in 0..CHUNK_VECS_F32 {
                    vst1q_f32(op.add(i * lanes + off + 4 * v), acc[v]);
                }
            }
            off += LANE_CHUNK;
        }
    }

    /// The f32 [`affine_chunks`]: two 4-lane vectors per chunk, two output
    /// rows per pass.
    ///
    /// # Safety
    ///
    /// NEON must be available; layout contract as in [`affine_chunks`], with
    /// every slice in f32.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn affine_chunks_f32(
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        x: &[f32],
        y: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + 2 <= m {
                let mut acc0 = [vdupq_n_f32(bias_at(i)); CHUNK_VECS_F32];
                let mut acc1 = [vdupq_n_f32(bias_at(i + 1)); CHUNK_VECS_F32];
                for j in 0..n {
                    let va0 = vdupq_n_f32(*ap.add(i * n + j));
                    let va1 = vdupq_n_f32(*ap.add((i + 1) * n + j));
                    let vb0 = vdupq_n_f32(*bp.add(i * n + j));
                    let vb1 = vdupq_n_f32(*bp.add((i + 1) * n + j));
                    for v in 0..CHUNK_VECS_F32 {
                        let xv = vld1q_f32(xp.add(j * lanes + off + 4 * v));
                        let yv = vld1q_f32(yp.add(j * lanes + off + 4 * v));
                        acc0[v] = vmadd2_f32(va0, xv, vb0, yv, acc0[v]);
                        acc1[v] = vmadd2_f32(va1, xv, vb1, yv, acc1[v]);
                    }
                }
                for v in 0..CHUNK_VECS_F32 {
                    vst1q_f32(op.add(i * lanes + off + 4 * v), acc0[v]);
                    vst1q_f32(op.add((i + 1) * lanes + off + 4 * v), acc1[v]);
                }
                i += 2;
            }
            if i < m {
                let mut acc = [vdupq_n_f32(bias_at(i)); CHUNK_VECS_F32];
                for j in 0..n {
                    let va = vdupq_n_f32(*ap.add(i * n + j));
                    let vb = vdupq_n_f32(*bp.add(i * n + j));
                    for v in 0..CHUNK_VECS_F32 {
                        let xv = vld1q_f32(xp.add(j * lanes + off + 4 * v));
                        let yv = vld1q_f32(yp.add(j * lanes + off + 4 * v));
                        acc[v] = vmadd2_f32(va, xv, vb, yv, acc[v]);
                    }
                }
                for v in 0..CHUNK_VECS_F32 {
                    vst1q_f32(op.add(i * lanes + off + 4 * v), acc[v]);
                }
            }
            off += LANE_CHUNK;
        }
    }

    /// The f32 [`affine_panel_chunks`]: two 4-lane vectors per chunk, two
    /// output rows per pass, accumulators initialised by vector loads of the
    /// `m × lanes` bias panel.
    ///
    /// # Safety
    ///
    /// NEON must be available; layout contract as in [`affine_panel_chunks`],
    /// with every slice in f32.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn affine_panel_chunks_f32(
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        x: &[f32],
        y: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) {
        debug_assert!(full <= lanes && full.is_multiple_of(LANE_CHUNK));
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = bias.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let op = out.as_mut_ptr();
        let mut off = 0;
        while off < full {
            let mut i = 0;
            while i + 2 <= m {
                let mut acc0 = [vdupq_n_f32(0.0); CHUNK_VECS_F32];
                let mut acc1 = [vdupq_n_f32(0.0); CHUNK_VECS_F32];
                for v in 0..CHUNK_VECS_F32 {
                    acc0[v] = vld1q_f32(cp.add(i * lanes + off + 4 * v));
                    acc1[v] = vld1q_f32(cp.add((i + 1) * lanes + off + 4 * v));
                }
                for j in 0..n {
                    let va0 = vdupq_n_f32(*ap.add(i * n + j));
                    let va1 = vdupq_n_f32(*ap.add((i + 1) * n + j));
                    let vb0 = vdupq_n_f32(*bp.add(i * n + j));
                    let vb1 = vdupq_n_f32(*bp.add((i + 1) * n + j));
                    for v in 0..CHUNK_VECS_F32 {
                        let xv = vld1q_f32(xp.add(j * lanes + off + 4 * v));
                        let yv = vld1q_f32(yp.add(j * lanes + off + 4 * v));
                        acc0[v] = vmadd2_f32(va0, xv, vb0, yv, acc0[v]);
                        acc1[v] = vmadd2_f32(va1, xv, vb1, yv, acc1[v]);
                    }
                }
                for v in 0..CHUNK_VECS_F32 {
                    vst1q_f32(op.add(i * lanes + off + 4 * v), acc0[v]);
                    vst1q_f32(op.add((i + 1) * lanes + off + 4 * v), acc1[v]);
                }
                i += 2;
            }
            if i < m {
                let mut acc = [vdupq_n_f32(0.0); CHUNK_VECS_F32];
                for v in 0..CHUNK_VECS_F32 {
                    acc[v] = vld1q_f32(cp.add(i * lanes + off + 4 * v));
                }
                for j in 0..n {
                    let va = vdupq_n_f32(*ap.add(i * n + j));
                    let vb = vdupq_n_f32(*bp.add(i * n + j));
                    for v in 0..CHUNK_VECS_F32 {
                        let xv = vld1q_f32(xp.add(j * lanes + off + 4 * v));
                        let yv = vld1q_f32(yp.add(j * lanes + off + 4 * v));
                        acc[v] = vmadd2_f32(va, xv, vb, yv, acc[v]);
                    }
                }
                for v in 0..CHUNK_VECS_F32 {
                    vst1q_f32(op.add(i * lanes + off + 4 * v), acc[v]);
                }
            }
            off += LANE_CHUNK;
        }
    }

    /// The f32 [`fused_mul_add_span`]: 4-wide vector body plus a scalar tail
    /// that rounds identically.
    ///
    /// # Safety
    ///
    /// NEON must be available; the slices must agree in length (checked by
    /// the dispatching caller).
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn fused_mul_add_span_f32(
        base: &[f32],
        coef: &[f32],
        cur: &[f32],
        out: &mut [f32],
    ) {
        let len = out.len();
        let mut k = 0;
        while k + 4 <= len {
            let v = vmadd_f32(
                vld1q_f32(coef.as_ptr().add(k)),
                vld1q_f32(cur.as_ptr().add(k)),
                vld1q_f32(base.as_ptr().add(k)),
            );
            vst1q_f32(out.as_mut_ptr().add(k), v);
            k += 4;
        }
        while k < len {
            out[k] = crate::simd::madd_f32(coef[k], cur[k], base[k]);
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_returns_an_available_kernel() {
        assert!(PanelKernel::detect().is_available());
        assert!(PanelKernel::Scalar.is_available());
    }

    #[test]
    fn active_is_available() {
        assert!(PanelKernel::active().is_available());
    }

    #[test]
    fn names_round_trip() {
        for k in [PanelKernel::Avx2Fma, PanelKernel::Neon, PanelKernel::Scalar] {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn fused_span_arms_are_bit_identical() {
        let len = 37;
        let base: Vec<f64> = (0..len).map(|k| 0.3 + k as f64 * 0.07).collect();
        let coef: Vec<f64> = (0..len).map(|k| (k as f64 * 0.31).sin()).collect();
        let cur: Vec<f64> = (0..len).map(|k| 0.9 + (k as f64 * 0.17).cos()).collect();
        let mut scalar = vec![0.0; len];
        fused_mul_add_span_with(PanelKernel::Scalar, &base, &coef, &cur, &mut scalar);
        for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
            if !kernel.is_available() {
                continue;
            }
            let mut wide = vec![0.0; len];
            fused_mul_add_span_with(kernel, &base, &coef, &cur, &mut wide);
            for (k, (a, b)) in scalar.iter().zip(&wide).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "kernel {kernel:?} index {k}");
            }
        }
    }

    #[test]
    fn unavailable_kernel_degrades_to_scalar() {
        // On any single host at most one vector arm is available; the other
        // must safely fall back rather than fault.
        let base = [1.0, 2.0, 3.0];
        let coef = [0.5; 3];
        let cur = [2.0; 3];
        let mut out = [0.0; 3];
        for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
            fused_mul_add_span_with(kernel, &base, &coef, &cur, &mut out);
            assert_eq!(out, [2.0, 3.0, 4.0]);
        }
    }

    #[test]
    #[should_panic(expected = "fused span slices must agree in length")]
    fn fused_span_rejects_mismatched_lengths() {
        let mut out = [0.0; 2];
        fused_mul_add_span(&[1.0], &[1.0], &[1.0], &mut out);
    }

    #[test]
    fn f32_fused_span_arms_are_bit_identical() {
        let len = 37;
        let base: Vec<f32> = (0..len).map(|k| 0.3 + k as f32 * 0.07).collect();
        let coef: Vec<f32> = (0..len).map(|k| (k as f32 * 0.31).sin()).collect();
        let cur: Vec<f32> = (0..len).map(|k| 0.9 + (k as f32 * 0.17).cos()).collect();
        let mut scalar = vec![0.0f32; len];
        fused_mul_add_span_elem_with(PanelKernel::Scalar, &base, &coef, &cur, &mut scalar);
        for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
            if !kernel.is_available() {
                continue;
            }
            let mut wide = vec![0.0f32; len];
            fused_mul_add_span_elem_with(kernel, &base, &coef, &cur, &mut wide);
            for (k, (a, b)) in scalar.iter().zip(&wide).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "kernel {kernel:?} index {k}");
            }
        }
    }

    /// Runs `f`, returning the panic payload's message (panics if `f` does
    /// not panic).
    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let payload = std::panic::catch_unwind(f).expect_err("closure must panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload must be a string")
    }

    #[test]
    fn override_resolution_honours_known_names() {
        assert_eq!(PanelKernel::select_from(None), PanelKernel::detect());
        assert_eq!(
            PanelKernel::select_from(Some("auto")),
            PanelKernel::detect()
        );
        assert_eq!(PanelKernel::select_from(Some("")), PanelKernel::detect());
        assert_eq!(
            PanelKernel::select_from(Some(" SCALAR ")),
            PanelKernel::Scalar
        );
        let detected = PanelKernel::detect();
        if detected != PanelKernel::Scalar {
            assert_eq!(PanelKernel::select_from(Some(detected.name())), detected);
        }
    }

    #[test]
    fn unknown_override_panics_with_valid_names_and_probe_result() {
        let message = panic_message(|| {
            PanelKernel::select_from(Some("axv2"));
        });
        assert!(message.contains(KERNEL_ENV), "{message}");
        assert!(message.contains("\"axv2\""), "{message}");
        assert!(message.contains("not a known panel kernel"), "{message}");
        for name in ["auto", "scalar", "avx2", "neon"] {
            assert!(message.contains(name), "missing {name}: {message}");
        }
        let probe = format!(
            "the probe detected `{}` on this host",
            PanelKernel::detect().name()
        );
        assert!(message.contains(&probe), "{message}");
    }

    #[test]
    fn unavailable_override_panics_with_valid_names_and_probe_result() {
        // At most one vector arm exists per host, so the other is a
        // guaranteed-unavailable request.
        let Some(unavailable) = [PanelKernel::Avx2Fma, PanelKernel::Neon]
            .into_iter()
            .find(|k| !k.is_available())
        else {
            return;
        };
        let message = panic_message(move || {
            PanelKernel::select_from(Some(unavailable.name()));
        });
        assert!(message.contains(KERNEL_ENV), "{message}");
        assert!(message.contains("cannot run"), "{message}");
        assert!(
            message.contains(&format!("`{}` kernel", unavailable.name())),
            "{message}"
        );
        for name in ["auto", "scalar", "avx2", "neon"] {
            assert!(message.contains(name), "missing {name}: {message}");
        }
        let probe = format!(
            "the probe detected `{}` on this host",
            PanelKernel::detect().name()
        );
        assert!(message.contains(&probe), "{message}");
    }
}

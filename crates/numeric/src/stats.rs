//! Descriptive statistics used throughout the evaluation.
//!
//! The paper reports thermal stability as average temperature, max–min spread
//! and temperature *variance* (the "6× reduction in variance" headline),
//! prediction quality as mean absolute percentage error, and power/performance
//! as relative savings/loss. All of those reductions live here so every crate
//! computes them identically.

use serde::{Deserialize, Serialize};

/// Summary statistics of a scalar time series.
///
/// # Example
///
/// ```
/// use numeric::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.max - s.min, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Standard deviation (square root of the population variance).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of the given samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarise an empty series");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min,
            max,
        }
    }

    /// Max–min spread of the series (the paper's thermal-stability metric).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Streaming (single-pass) accumulator for the [`Summary`] statistics:
/// Welford's online mean/variance recurrence plus running min/max.
///
/// Folding a series sample-by-sample produces the same mean/min/max as the
/// two-pass [`Summary::of`] (bit-identical for min/max) and a variance within
/// numerical noise of it, while retaining O(1) state — the building block the
/// simulation crate's online run metrics use to summarise a run without
/// keeping its per-interval trace in memory.
///
/// # Example
///
/// ```
/// use numeric::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert_eq!(w.max() - w.min(), 3.0);
/// ```
// Deliberately not serde-derived: an empty accumulator's ±∞ min/max
// sentinels do not round-trip through JSON-style formats. Serialise the
// finished [`Summary`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample into the running statistics.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded in so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Returns `true` if no samples have been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Running arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Running population variance; 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Running minimum; `+∞` for an empty accumulator.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Running maximum; `−∞` for an empty accumulator.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of squared deviations from the running mean (the raw `M2` term of
    /// Welford's recurrence; population variance is `m2 / count`). Exposed so
    /// checkpoint/merge wire formats can persist an accumulator exactly —
    /// pair with [`Welford::from_parts`] to reconstruct it.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Reassembles an accumulator from its raw state, the inverse of reading
    /// `count`/`mean`/[`Welford::m2`]/`min`/`max` — the bit-exact
    /// round-trip used by campaign checkpoint files. The parts are trusted:
    /// feeding back anything other than a previously observed state produces
    /// an accumulator that never arose from pushes.
    pub fn from_parts(count: usize, mean: f64, m2: f64, min: f64, max: f64) -> Welford {
        Welford {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges two accumulators into the statistics of their combined sample
    /// streams (Chan et al.'s parallel combination of mean and `M2`, plus
    /// plain min/max folds), the building block for sharded campaigns.
    ///
    /// The combination formula is not floating-point symmetric in its
    /// operands, so `merge` first orders the pair by a fixed total order
    /// over their raw state (count, then the bit patterns of mean/m2/
    /// min/max) and always applies the formula to the ordered pair. That
    /// makes the operation **exactly commutative** — `a.merge(&b)` is
    /// bit-identical to `b.merge(&a)` — which is what lets shard aggregates
    /// be independent of arrival order. Associativity holds only up to
    /// floating-point rounding; order-sensitive pipelines should fold in a
    /// canonical sequence (as the campaign merge sink does).
    ///
    /// Count, min and max combine exactly; the merged mean agrees with a
    /// sequential feed of both streams to within rounding and the merged
    /// variance to within numerical noise.
    ///
    /// # Example
    ///
    /// ```
    /// use numeric::stats::Welford;
    ///
    /// let mut left = Welford::new();
    /// let mut right = Welford::new();
    /// for x in [1.0, 2.0] {
    ///     left.push(x);
    /// }
    /// for x in [3.0, 4.0] {
    ///     right.push(x);
    /// }
    /// let merged = left.merge(&right);
    /// assert_eq!(merged.count(), 4);
    /// assert_eq!(merged.mean(), 2.5);
    /// assert_eq!(merged, right.merge(&left));
    /// ```
    pub fn merge(&self, other: &Welford) -> Welford {
        // The fp-stable ordering rule: a total order over the raw state so
        // both argument orders apply the formula to the same (a, b) pair.
        let key = |w: &Welford| {
            (
                w.count,
                w.mean.to_bits(),
                w.m2.to_bits(),
                w.min.to_bits(),
                w.max.to_bits(),
            )
        };
        let (a, b) = if key(self) <= key(other) {
            (self, other)
        } else {
            (other, self)
        };
        if a.count == 0 {
            return *b;
        }
        let count = a.count + b.count;
        let (na, nb, n) = (a.count as f64, b.count as f64, count as f64);
        let delta = b.mean - a.mean;
        Welford {
            count,
            mean: a.mean + delta * (nb / n),
            m2: a.m2 + b.m2 + delta * delta * na * (nb / n),
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        }
    }

    /// The accumulated statistics as a [`Summary`].
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty, mirroring [`Summary::of`].
    pub fn summary(&self) -> Summary {
        assert!(self.count > 0, "cannot summarise an empty series");
        let variance = self.variance();
        Summary {
            count: self.count,
            mean: self.mean,
            variance,
            std_dev: variance.sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

impl Default for Welford {
    fn default() -> Self {
        Welford::new()
    }
}

/// Arithmetic mean of the samples; returns 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Population variance of the samples; returns 0 for fewer than two samples.
pub fn variance(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64
}

/// Root-mean-square error between two equally long series.
///
/// # Panics
///
/// Panics if the series lengths differ or are zero.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse length mismatch");
    assert!(!predicted.is_empty(), "rmse of empty series");
    let sum: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    (sum / predicted.len() as f64).sqrt()
}

/// Mean absolute error between two equally long series.
///
/// # Panics
///
/// Panics if the series lengths differ or are zero.
pub fn mean_absolute_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "mae length mismatch");
    assert!(!predicted.is_empty(), "mae of empty series");
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Mean absolute percentage error (in percent) between predictions and actual
/// values. Samples whose actual value is zero are skipped.
///
/// This is the metric behind the paper's "average prediction error is less
/// than 3%" claim (with temperatures expressed in °C).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn mean_absolute_percentage_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "mape length mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if a.abs() > f64::EPSILON {
            total += ((p - a) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Maximum absolute error between two equally long series.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn max_absolute_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "max error length mismatch");
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .fold(0.0, f64::max)
}

/// Normalised fit percentage, `100·(1 − ‖y − ŷ‖ / ‖y − mean(y)‖)`, the metric
/// reported by MATLAB's `compare` for identified models. 100 means a perfect
/// fit, 0 means no better than predicting the mean.
///
/// # Panics
///
/// Panics if the series lengths differ or are zero.
pub fn fit_percentage(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "fit length mismatch");
    assert!(!predicted.is_empty(), "fit of empty series");
    let mean_actual = mean(actual);
    let err: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        .sqrt();
    let denom: f64 = actual
        .iter()
        .map(|a| (a - mean_actual) * (a - mean_actual))
        .sum::<f64>()
        .sqrt();
    if denom <= f64::EPSILON {
        if err <= f64::EPSILON {
            100.0
        } else {
            0.0
        }
    } else {
        100.0 * (1.0 - err / denom)
    }
}

/// Relative change from `baseline` to `value` in percent. Positive means
/// `value` is larger than the baseline.
///
/// Returns 0 if the baseline is zero.
pub fn relative_change_percent(baseline: f64, value: f64) -> f64 {
    if baseline.abs() <= f64::EPSILON {
        0.0
    } else {
        100.0 * (value - baseline) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_series() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.variance, 4.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.range(), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_of_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn mean_and_variance_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(variance(&[1.0, 3.0]), 1.0);
    }

    #[test]
    fn rmse_and_mae() {
        let p = [1.0, 2.0, 3.0];
        let a = [1.0, 2.0, 5.0];
        assert!((rmse(&p, &a) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mean_absolute_error(&p, &a) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(max_absolute_error(&p, &a), 2.0);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let p = [1.1, 2.0, 50.0];
        let a = [1.0, 2.0, 0.0];
        // Only the first two points count: (10% + 0%) / 2 = 5%.
        assert!((mean_absolute_percentage_error(&p, &a) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mape_all_zero_actuals_is_zero() {
        assert_eq!(mean_absolute_percentage_error(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn fit_percentage_perfect_and_mean_prediction() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fit_percentage(&actual, &actual), 100.0);
        let mean_pred = [2.5, 2.5, 2.5, 2.5];
        assert!(fit_percentage(&mean_pred, &actual).abs() < 1e-9);
    }

    #[test]
    fn fit_percentage_constant_actual() {
        assert_eq!(fit_percentage(&[5.0, 5.0], &[5.0, 5.0]), 100.0);
        assert_eq!(fit_percentage(&[4.0, 6.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn welford_matches_two_pass_summary() {
        // Deterministic pseudo-random series (LCG), a few magnitudes.
        let mut x = 0x2545F4914F6CDD1Du64;
        for scale in [1.0, 60.0, 1e6] {
            let mut samples = Vec::new();
            let mut w = Welford::new();
            for _ in 0..1000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = scale * (x >> 11) as f64 / (1u64 << 53) as f64;
                samples.push(v);
                w.push(v);
            }
            let two_pass = Summary::of(&samples);
            let online = w.summary();
            assert_eq!(online.count, two_pass.count);
            assert_eq!(online.min, two_pass.min, "min is a plain running fold");
            assert_eq!(online.max, two_pass.max, "max is a plain running fold");
            assert!(
                (online.mean - two_pass.mean).abs() <= 1e-12 * scale,
                "mean {} vs {}",
                online.mean,
                two_pass.mean
            );
            assert!(
                (online.variance - two_pass.variance).abs() <= 1e-9 * scale * scale,
                "variance {} vs {}",
                online.variance,
                two_pass.variance
            );
        }
    }

    #[test]
    fn welford_edge_cases() {
        let w = Welford::new();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), f64::INFINITY);
        assert_eq!(w.max(), f64::NEG_INFINITY);
        let mut w = Welford::default();
        w.push(3.0);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!((w.min(), w.max()), (3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn welford_summary_of_empty_panics() {
        Welford::new().summary();
    }

    #[test]
    fn welford_merge_matches_sequential_feed() {
        let samples: Vec<f64> = (0..500)
            .map(|k| 40.0 + (k as f64 * 0.37).sin() * 15.0)
            .collect();
        for split in [0, 1, 17, 250, 499, 500] {
            let mut all = Welford::new();
            let mut left = Welford::new();
            let mut right = Welford::new();
            for (k, &x) in samples.iter().enumerate() {
                all.push(x);
                if k < split {
                    left.push(x);
                } else {
                    right.push(x);
                }
            }
            let merged = left.merge(&right);
            assert_eq!(merged.count(), all.count(), "split {split}");
            assert_eq!(merged.min(), all.min(), "split {split}: min is exact");
            assert_eq!(merged.max(), all.max(), "split {split}: max is exact");
            assert!(
                (merged.mean() - all.mean()).abs() <= 1e-12 * all.mean().abs().max(1.0),
                "split {split}: mean {} vs {}",
                merged.mean(),
                all.mean()
            );
            assert!(
                (merged.variance() - all.variance()).abs() <= 1e-9 * all.variance().abs().max(1.0),
                "split {split}: variance {} vs {}",
                merged.variance(),
                all.variance()
            );
        }
    }

    #[test]
    fn welford_merge_is_exactly_commutative_and_empty_is_identity() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        for x in [3.0, -1.5, 62.25, 0.125] {
            a.push(x);
        }
        for x in [41.0, 40.5, 58.0] {
            b.push(x);
        }
        assert_eq!(a.merge(&b), b.merge(&a), "bit-identical either way round");
        assert_eq!(a.merge(&Welford::new()), a, "empty right identity");
        assert_eq!(Welford::new().merge(&a), a, "empty left identity");
        assert_eq!(Welford::new().merge(&Welford::new()), Welford::new());
    }

    #[test]
    fn welford_parts_round_trip() {
        let mut w = Welford::new();
        for x in [55.0, 57.5, 56.25, 58.0] {
            w.push(x);
        }
        let back = Welford::from_parts(w.count(), w.mean(), w.m2(), w.min(), w.max());
        assert_eq!(back, w, "raw-state round trip is bit-exact");
        // An empty accumulator (±∞ sentinels) round-trips too — the case
        // JSON-style serialisation would mangle.
        let empty = Welford::new();
        let back = Welford::from_parts(
            empty.count(),
            empty.mean(),
            empty.m2(),
            empty.min(),
            empty.max(),
        );
        assert_eq!(back, empty);
    }

    #[test]
    fn relative_change() {
        assert_eq!(relative_change_percent(2.0, 1.0), -50.0);
        assert_eq!(relative_change_percent(0.0, 1.0), 0.0);
        assert_eq!(relative_change_percent(4.0, 5.0), 25.0);
    }
}

//! Small, dependency-free numerical substrate for the DTPM reproduction.
//!
//! The paper's methodology relies on three numerical building blocks that are
//! normally delegated to MATLAB:
//!
//! * dense linear algebra for the discrete thermal state-space model
//!   `T[k+1] = As·T[k] + Bs·P[k]` ([`Matrix`], [`Vector`]),
//! * linear least squares for system identification of `As` and `Bs`
//!   ([`lstsq`](mod@lstsq)),
//! * nonlinear least squares for fitting the leakage model
//!   `I_leak = c1·T²·e^(c2/T) + I_gate` to furnace measurements ([`fit`]).
//!
//! On top of those, [`stats`] provides the descriptive statistics used by the
//! evaluation (variance, max–min spread, RMSE, MAPE, fit percentage) and
//! [`interp`] provides the table interpolation used by voltage/frequency maps.
//!
//! For batched scenario evaluation, [`panel`] adds the structure-of-arrays
//! [`Panel`] (one scenario per column, [`PANEL_ALIGN`]-byte-aligned storage)
//! and the blocked matrix–panel kernels ([`Matrix::mul_panel_into`],
//! [`affine_pair_apply`]) that advance many scenarios per instruction stream
//! with each matrix loaded once per step. Panels are generic over element
//! precision via the sealed [`Elem`] trait ([`PanelT`]; `Panel` is
//! `PanelT<f64>`, [`PanelF32`] is `PanelT<f32>`), and the width-generic
//! kernel entry points ([`mul_panel_into_elem`], [`affine_pair_apply_elem`],
//! [`fused_mul_add_span_elem`]) serve both widths from one code path.
//!
//! # Kernel dispatch
//!
//! The panel kernels run through an explicit SIMD backend ([`simd`]):
//!
//! * **Selection** happens once per process. [`PanelKernel::active`] probes
//!   the host at first use (`is_x86_feature_detected!("avx2")` on x86-64,
//!   `is_aarch64_feature_detected!("neon")` on ARM) and caches the widest
//!   available arm — AVX2 (4 f64 per vector), NEON (2 f64), or the portable
//!   blocked scalar code.
//! * **Override for testing**: set [`KERNEL_ENV`] (`DTPM_PANEL_KERNEL`) to
//!   `scalar`, `avx2`, `neon` or `auto`. Naming an arm the host cannot run
//!   panics rather than silently degrading. Each kernel entry point also has
//!   a `*_with` form taking an explicit [`PanelKernel`] so equivalence suites
//!   and benchmarks can compare arms inside one process.
//! * **Bit-identical by default**: every arm performs the same per-lane
//!   sequence of IEEE-754 multiplies and adds, so in the default build a
//!   lane's result is bit-for-bit independent of the arm that produced it —
//!   the scalar-vs-batched equivalence suites double as the SIMD oracle.
//! * **`fma` feature**: opts into fused multiply-add in *all* arms (scalar
//!   code via [`f64::mul_add`]), which keeps the arms bit-identical to each
//!   other but relaxes the contract against unfused reference expressions to
//!   the documented ≤ 1e-12 °C simulation-level bound.
//!
//! # Precision selection
//!
//! Every panel kernel exists at two element widths: the default f64 path and
//! an f32 path reached through [`PanelF32`] and the `*_elem` entry points
//! (AVX2 carries 8 f32 lanes per vector instead of 4, NEON 4 instead of 2,
//! and every panel byte moved per micro-step halves). Guidance for choosing:
//!
//! * **When f32 is safe.** The thermal state spans ~25–95 °C, where f32 has
//!   ≈ 4–8 µ°C of resolution — three orders of magnitude below both sensor
//!   quantisation and the 1e-3 °C trajectory budget the mixed-precision
//!   engine is validated against. Use f32 for throughput-bound sweeps and
//!   campaigns whose outputs are summary statistics, constraint decisions,
//!   or energy totals. Numerically sensitive *setup* work (state-space
//!   discretisation, leakage anchoring via `libm` exp, least-squares fits)
//!   always stays in f64 and is demoted once per control interval, so f32
//!   only ever integrates short inter-anchor spans.
//! * **What shadow mode costs.** The simulator's `F32Shadow` mode steps the
//!   f64 engine in lockstep with the f32 engine and records the worst-case
//!   node-temperature divergence, so it pays for *both* engines (slightly
//!   more than 1× + 1/speedup ≈ 1.6× the f64-only cost) — use it to qualify
//!   a new scenario family, then switch to plain `F32`.
//! * **Measured error** (16-lane paper-scale sweep shape, f32 vs f64 oracle;
//!   see `BENCH_mixed_precision.json` and the `mixed_precision` proptests):
//!   worst-case trajectory divergence stays below the 1e-3 °C budget with
//!   over two orders of headroom (~4e-6 °C measured), per-lane energy
//!   totals agree within 0.01 %, and
//!   `SafetyLadder` rung transitions agree exactly on every tested run.
//! * **Bit-identity caveat.** The f32 arms are bit-identical *to each other*
//!   (same per-lane IEEE-754 operation order across scalar/AVX2/NEON, like
//!   the f64 arms) but not to the f64 path; cross-width comparisons are
//!   budgeted, not exact.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Vector};
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! // Solve a small linear system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b)?;
//! assert!((a.mul_vector(&x)? - b).norm() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aligned;
pub mod codec;
pub mod elem;
pub mod fit;
pub mod interp;
pub mod lstsq;
pub mod matrix;
pub mod panel;
pub mod simd;
pub mod solve;
pub mod stats;

mod error;

pub use aligned::PANEL_ALIGN;
pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use elem::Elem;
pub use error::NumericError;
pub use fit::{levenberg_marquardt, FitOptions, FitReport};
pub use interp::{interp1, Table1d};
pub use lstsq::{lstsq, ridge_lstsq};
pub use matrix::{Matrix, Vector};
pub use panel::{
    affine_pair_apply, affine_pair_apply_elem, affine_pair_apply_elem_with, affine_pair_apply_with,
    affine_panel_bias_apply_elem, affine_panel_bias_apply_elem_with, mul_panel_into_elem,
    mul_panel_into_elem_with, Panel, PanelF32, PanelT, LANE_CHUNK,
};
pub use simd::{
    fused_mul_add_span, fused_mul_add_span_elem, fused_mul_add_span_elem_with,
    fused_mul_add_span_with, madd2_f32, madd_f32, PanelKernel, KERNEL_ENV,
};
pub use solve::LuDecomposition;
pub use stats::{Summary, Welford};

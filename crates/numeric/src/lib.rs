//! Small, dependency-free numerical substrate for the DTPM reproduction.
//!
//! The paper's methodology relies on three numerical building blocks that are
//! normally delegated to MATLAB:
//!
//! * dense linear algebra for the discrete thermal state-space model
//!   `T[k+1] = As·T[k] + Bs·P[k]` ([`Matrix`], [`Vector`]),
//! * linear least squares for system identification of `As` and `Bs`
//!   ([`lstsq`](mod@lstsq)),
//! * nonlinear least squares for fitting the leakage model
//!   `I_leak = c1·T²·e^(c2/T) + I_gate` to furnace measurements ([`fit`]).
//!
//! On top of those, [`stats`] provides the descriptive statistics used by the
//! evaluation (variance, max–min spread, RMSE, MAPE, fit percentage) and
//! [`interp`] provides the table interpolation used by voltage/frequency maps.
//!
//! For batched scenario evaluation, [`panel`] adds the structure-of-arrays
//! [`Panel`] (one scenario per column) and the blocked matrix–panel kernels
//! ([`Matrix::mul_panel_into`], [`affine_pair_apply`]) that advance many
//! scenarios per instruction stream with each matrix loaded once per step.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Vector};
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! // Solve a small linear system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b)?;
//! assert!((a.mul_vector(&x)? - b).norm() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fit;
pub mod interp;
pub mod lstsq;
pub mod matrix;
pub mod panel;
pub mod solve;
pub mod stats;

mod error;

pub use error::NumericError;
pub use fit::{levenberg_marquardt, FitOptions, FitReport};
pub use interp::{interp1, Table1d};
pub use lstsq::{lstsq, ridge_lstsq};
pub use matrix::{Matrix, Vector};
pub use panel::{affine_pair_apply, Panel, LANE_CHUNK};
pub use solve::LuDecomposition;
pub use stats::{Summary, Welford};

//! Small, dependency-free numerical substrate for the DTPM reproduction.
//!
//! The paper's methodology relies on three numerical building blocks that are
//! normally delegated to MATLAB:
//!
//! * dense linear algebra for the discrete thermal state-space model
//!   `T[k+1] = As·T[k] + Bs·P[k]` ([`Matrix`], [`Vector`]),
//! * linear least squares for system identification of `As` and `Bs`
//!   ([`lstsq`](mod@lstsq)),
//! * nonlinear least squares for fitting the leakage model
//!   `I_leak = c1·T²·e^(c2/T) + I_gate` to furnace measurements ([`fit`]).
//!
//! On top of those, [`stats`] provides the descriptive statistics used by the
//! evaluation (variance, max–min spread, RMSE, MAPE, fit percentage) and
//! [`interp`] provides the table interpolation used by voltage/frequency maps.
//!
//! For batched scenario evaluation, [`panel`] adds the structure-of-arrays
//! [`Panel`] (one scenario per column, [`PANEL_ALIGN`]-byte-aligned storage)
//! and the blocked matrix–panel kernels ([`Matrix::mul_panel_into`],
//! [`affine_pair_apply`]) that advance many scenarios per instruction stream
//! with each matrix loaded once per step.
//!
//! # Kernel dispatch
//!
//! The panel kernels run through an explicit SIMD backend ([`simd`]):
//!
//! * **Selection** happens once per process. [`PanelKernel::active`] probes
//!   the host at first use (`is_x86_feature_detected!("avx2")` on x86-64,
//!   `is_aarch64_feature_detected!("neon")` on ARM) and caches the widest
//!   available arm — AVX2 (4 f64 per vector), NEON (2 f64), or the portable
//!   blocked scalar code.
//! * **Override for testing**: set [`KERNEL_ENV`] (`DTPM_PANEL_KERNEL`) to
//!   `scalar`, `avx2`, `neon` or `auto`. Naming an arm the host cannot run
//!   panics rather than silently degrading. Each kernel entry point also has
//!   a `*_with` form taking an explicit [`PanelKernel`] so equivalence suites
//!   and benchmarks can compare arms inside one process.
//! * **Bit-identical by default**: every arm performs the same per-lane
//!   sequence of IEEE-754 multiplies and adds, so in the default build a
//!   lane's result is bit-for-bit independent of the arm that produced it —
//!   the scalar-vs-batched equivalence suites double as the SIMD oracle.
//! * **`fma` feature**: opts into fused multiply-add in *all* arms (scalar
//!   code via [`f64::mul_add`]), which keeps the arms bit-identical to each
//!   other but relaxes the contract against unfused reference expressions to
//!   the documented ≤ 1e-12 °C simulation-level bound.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Vector};
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! // Solve a small linear system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b)?;
//! assert!((a.mul_vector(&x)? - b).norm() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aligned;
pub mod fit;
pub mod interp;
pub mod lstsq;
pub mod matrix;
pub mod panel;
pub mod simd;
pub mod solve;
pub mod stats;

mod error;

pub use aligned::PANEL_ALIGN;
pub use error::NumericError;
pub use fit::{levenberg_marquardt, FitOptions, FitReport};
pub use interp::{interp1, Table1d};
pub use lstsq::{lstsq, ridge_lstsq};
pub use matrix::{Matrix, Vector};
pub use panel::{affine_pair_apply, affine_pair_apply_with, Panel, LANE_CHUNK};
pub use simd::{fused_mul_add_span, fused_mul_add_span_with, PanelKernel, KERNEL_ENV};
pub use solve::LuDecomposition;
pub use stats::{Summary, Welford};

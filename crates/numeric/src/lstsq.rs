//! Linear least squares.
//!
//! System identification of the thermal model reduces to an ordinary linear
//! least-squares problem per output row (see `sysid`): given a regressor
//! matrix `Φ` (one row per time step, columns = previous temperatures and
//! power inputs) and a target vector `y` (next-step temperature of one
//! hotspot), find `θ` minimising `‖Φθ − y‖²`.
//!
//! The problems here are small and well-conditioned (a handful of regressors,
//! thousands of samples), so the normal equations with optional ridge
//! regularisation are accurate enough and keep the code simple.

use crate::{Matrix, NumericError, Vector};

/// Solves the ordinary least-squares problem `min‖Φθ − y‖²`.
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] if `phi.rows() != y.len()`.
/// * [`NumericError::InsufficientData`] if there are fewer rows than columns.
/// * [`NumericError::Singular`] if the normal equations are singular
///   (collinear regressors); use [`ridge_lstsq`] in that case.
///
/// # Example
///
/// ```
/// use numeric::{lstsq, Matrix, Vector};
///
/// # fn main() -> Result<(), numeric::NumericError> {
/// // Fit y = 2x + 1 from noisy-free samples.
/// let phi = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]])?;
/// let y = Vector::from_slice(&[1.0, 3.0, 5.0]);
/// let theta = lstsq(&phi, &y)?;
/// assert!((theta[0] - 2.0).abs() < 1e-12);
/// assert!((theta[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn lstsq(phi: &Matrix, y: &Vector) -> Result<Vector, NumericError> {
    ridge_lstsq(phi, y, 0.0)
}

/// Solves the ridge-regularised least-squares problem
/// `min ‖Φθ − y‖² + λ‖θ‖²`.
///
/// A small positive `lambda` keeps the normal equations well conditioned when
/// an excitation signal leaves some input almost constant (e.g. the memory
/// power channel while only the big cluster is excited).
///
/// # Errors
///
/// Same conditions as [`lstsq`]; additionally returns
/// [`NumericError::InvalidArgument`] for a negative or non-finite `lambda`.
pub fn ridge_lstsq(phi: &Matrix, y: &Vector, lambda: f64) -> Result<Vector, NumericError> {
    if !(lambda >= 0.0) || !lambda.is_finite() {
        return Err(NumericError::InvalidArgument(
            "ridge parameter must be finite and non-negative",
        ));
    }
    if phi.rows() != y.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "least squares",
            left: (phi.rows(), phi.cols()),
            right: (y.len(), 1),
        });
    }
    if phi.rows() < phi.cols() {
        return Err(NumericError::InsufficientData {
            required: phi.cols(),
            provided: phi.rows(),
        });
    }

    let phi_t = phi.transpose();
    let mut gram = phi_t.mul(phi)?;
    if lambda > 0.0 {
        for i in 0..gram.rows() {
            gram[(i, i)] += lambda;
        }
    }
    let rhs = phi_t.mul_vector(y)?;
    gram.solve(&rhs)
}

/// Residual vector `Φθ − y` of a least-squares fit.
///
/// # Errors
///
/// Returns a dimension error if the operands are incompatible.
pub fn residuals(phi: &Matrix, y: &Vector, theta: &Vector) -> Result<Vector, NumericError> {
    let predicted = phi.mul_vector(theta)?;
    if predicted.len() != y.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "residual computation",
            left: (predicted.len(), 1),
            right: (y.len(), 1),
        });
    }
    Ok(Vector::from_iter(
        predicted.iter().zip(y.iter()).map(|(p, t)| p - t),
    ))
}

/// Coefficient of determination (R²) of a fit; 1.0 means a perfect fit.
///
/// Returns `None` when the target has zero variance (R² is undefined).
pub fn r_squared(phi: &Matrix, y: &Vector, theta: &Vector) -> Option<f64> {
    let res = residuals(phi, y, theta).ok()?;
    let ss_res: f64 = res.iter().map(|r| r * r).sum();
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    if ss_tot <= f64::EPSILON {
        return None;
    }
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_of_linear_model() {
        let phi = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]).unwrap();
        let theta_true = Vector::from_slice(&[3.0, -1.5]);
        let y = phi.mul_vector(&theta_true).unwrap();
        let theta = lstsq(&phi, &y).unwrap();
        assert!((theta[0] - 3.0).abs() < 1e-12);
        assert!((theta[1] + 1.5).abs() < 1e-12);
        assert_eq!(r_squared(&phi, &y, &theta), Some(1.0));
    }

    #[test]
    fn overdetermined_noisy_fit_recovers_parameters() {
        // y = 0.8*x1 + 0.05*x2 with deterministic "noise" pattern.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for k in 0..200 {
            let x1 = (k as f64 * 0.37).sin();
            let x2 = (k as f64 * 0.11).cos() * 2.0;
            let noise = ((k * 7919) % 13) as f64 / 13.0 - 0.5; // bounded, zero-ish mean
            rows.push(vec![x1, x2]);
            targets.push(0.8 * x1 + 0.05 * x2 + 0.001 * noise);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let phi = Matrix::from_rows(&row_refs).unwrap();
        let y = Vector::from_slice(&targets);
        let theta = lstsq(&phi, &y).unwrap();
        assert!((theta[0] - 0.8).abs() < 0.01);
        assert!((theta[1] - 0.05).abs() < 0.01);
        assert!(r_squared(&phi, &y, &theta).unwrap() > 0.999);
    }

    #[test]
    fn underdetermined_rejected() {
        let phi = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let y = Vector::from_slice(&[1.0]);
        assert!(matches!(
            lstsq(&phi, &y),
            Err(NumericError::InsufficientData { .. })
        ));
    }

    #[test]
    fn mismatched_target_length_rejected() {
        let phi = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let y = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert!(lstsq(&phi, &y).is_err());
    }

    #[test]
    fn collinear_regressors_need_ridge() {
        // Second column is exactly twice the first: singular normal equations.
        let phi = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let y = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert!(matches!(lstsq(&phi, &y), Err(NumericError::Singular)));
        let theta = ridge_lstsq(&phi, &y, 1e-6).unwrap();
        // The ridge solution still reproduces the targets.
        let res = residuals(&phi, &y, &theta).unwrap();
        assert!(res.inf_norm() < 1e-3);
    }

    #[test]
    fn negative_lambda_rejected() {
        let phi = Matrix::identity(2);
        let y = Vector::from_slice(&[1.0, 1.0]);
        assert!(ridge_lstsq(&phi, &y, -1.0).is_err());
        assert!(ridge_lstsq(&phi, &y, f64::NAN).is_err());
    }

    #[test]
    fn r_squared_undefined_for_constant_target() {
        let phi = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let y = Vector::from_slice(&[4.0, 4.0, 4.0]);
        let theta = lstsq(&phi, &y).unwrap();
        assert_eq!(r_squared(&phi, &y, &theta), None);
    }
}

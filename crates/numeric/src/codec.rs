//! Binary codec primitives for compact wire formats: little-endian
//! primitive encoding with floats as exact bit patterns, plus an IEEE
//! CRC32 for integrity footers.
//!
//! The campaign layer's text checkpoint format already established the
//! discipline — floats travel as bit patterns, never decimal renderings —
//! and this module carries it into a length-prefixed binary form for the
//! distributed dispatch path, where payloads are machine-to-machine and
//! decode cost matters. [`ByteWriter`]/[`ByteReader`] are deliberately
//! dumb: fixed-width little-endian primitives, length-prefixed byte
//! strings, no varints, no framing — framing and versioning belong to the
//! protocol layer. Every read is bounds-checked, so truncated or hostile
//! input surfaces as a [`CodecError`], never a panic or a mis-read.

use std::error::Error;
use std::fmt;

/// A decode failure: the input ended early or carried an impossible value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the requested value was complete.
    Truncated,
    /// A value was structurally impossible (bad bool byte, oversized
    /// length, non-UTF-8 string bytes, trailing garbage, ...).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "binary payload truncated"),
            CodecError::Malformed(what) => write!(f, "malformed binary payload: {what}"),
        }
    }
}

impl Error for CodecError {}

/// An append-only little-endian binary encoder.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer into its encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (platform-independent width).
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// Appends an `f64` as its exact bit pattern — the binary analogue of
    /// the text format's 16-hex-digit float fields; nothing is rounded.
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, x: bool) {
        self.put_u8(u8::from(x));
    }

    /// Appends a length-prefixed byte string (`u32` length + raw bytes).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `u32::MAX` bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("byte string exceeds u32 length");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// A bounds-checked little-endian binary decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Takes a `usize` encoded as a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] at end of input, [`CodecError::Malformed`]
    /// if the value does not fit this platform's `usize`.
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| CodecError::Malformed("count exceeds platform usize"))
    }

    /// Takes an `f64` from its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Takes a bool byte (strictly 0 or 1).
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] on any other byte value.
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool byte is neither 0 nor 1")),
        }
    }

    /// Takes a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix promises more bytes than
    /// remain.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Takes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] if the bytes are not valid UTF-8.
    pub fn take_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|_| CodecError::Malformed("string bytes are not UTF-8"))
    }

    /// Asserts the input is fully consumed — the guard against payloads
    /// carrying trailing garbage.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] if bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes after payload"))
        }
    }
}

/// The 256-entry lookup table of the reflected IEEE CRC32 (polynomial
/// 0xEDB88320), built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// The IEEE CRC32 of `bytes` (the zlib/PNG/gzip checksum) — the integrity
/// footer for checkpoints and framed payloads. Detects any single burst
/// error up to 32 bits and all 1–3 bit flips, which is exactly the torn
/// write / flipped byte class checkpointing has to survive.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // The canonical check value of the reflected IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        // Any flipped byte moves the checksum.
        assert_ne!(crc32(b"123456789"), crc32(b"123456780"));
    }

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_usize(usize::MAX);
        for x in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            w.put_f64(x);
        }
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("grüße\nwith newline");
        w.put_str("");
        w.put_bytes(&[1, 2, 3]);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take_usize().unwrap(), usize::MAX);
        for x in [
            0.0f64,
            -0.0,
            1.5,
            f64::NAN,
            f64::INFINITY,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(r.take_f64().unwrap().to_bits(), x.to_bits());
        }
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_str().unwrap(), "grüße\nwith newline");
        assert_eq!(r.take_str().unwrap(), "");
        assert_eq!(r.take_bytes().unwrap(), &[1, 2, 3]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn truncated_and_malformed_input_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(7);
        let bytes = w.as_slice();
        // Every proper prefix is a truncation error, never a panic.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert_eq!(r.take_u64(), Err(CodecError::Truncated), "cut at {cut}");
        }
        // A length prefix promising more than the buffer holds.
        let mut w = ByteWriter::new();
        w.put_u32(1000);
        let mut r = ByteReader::new(w.as_slice());
        assert_eq!(r.take_bytes(), Err(CodecError::Truncated));
        // Bad bool byte.
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.take_bool(), Err(CodecError::Malformed(_))));
        // Non-UTF-8 string bytes.
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let mut r = ByteReader::new(w.as_slice());
        assert!(matches!(r.take_str(), Err(CodecError::Malformed(_))));
        // Trailing garbage fails the finish guard.
        let mut r = ByteReader::new(&[0]);
        assert!(r.finish().is_err());
        r.take_u8().unwrap();
        assert!(r.finish().is_ok());
    }
}

//! Element precision for the panel kernels: [`Elem`] abstracts the scalar
//! type (`f64` or `f32`) that [`crate::PanelT`] and the SIMD dispatch arms
//! operate on.
//!
//! The batched hot loops (matrix–panel products, affine-pair transition
//! steps, elementwise fused spans) are shape-identical at both widths; what
//! differs is the vector geometry — AVX2 carries 4 f64 or 8 f32 per 256-bit
//! register, NEON 2 f64 or 4 f32 per 128-bit register — and the rounding of
//! each accumulate. `Elem` carries exactly that per-type knowledge: the
//! scalar accumulate primitives ([`Elem::madd`] / [`Elem::madd2`], which
//! fuse under the `fma` cargo feature exactly like their [`crate::simd`]
//! `f64` twins) and the hooks that hand full [`crate::LANE_CHUNK`]-wide lane
//! chunks to the concrete `#[target_feature]` kernels (generic functions
//! cannot be `#[target_feature]`, so each impl forwards to monomorphic
//! intrinsics code in [`crate::simd`]).
//!
//! The trait is sealed: implementations promise that the all-zero byte
//! pattern is a valid value equal to [`Elem::ZERO`] (panel storage is
//! allocated with `alloc_zeroed`) and that the SIMD hooks round bit-for-bit
//! like the scalar primitives, lane by lane. `f64` and `f32` are the only
//! implementors.

use crate::simd::PanelKernel;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A panel element type: `f64` (the default precision everywhere) or `f32`
/// (the mixed-precision engine's lane type). See the [module docs](self) for
/// the contract the SIMD hooks uphold.
pub trait Elem:
    sealed::Sealed + Copy + PartialEq + PartialOrd + std::fmt::Debug + Send + Sync + 'static
{
    /// The additive identity (also the value of zeroed storage).
    const ZERO: Self;

    /// Short type name for diagnostics and bench JSON (`"f64"` / `"f32"`).
    const NAME: &'static str;

    /// Demotes (or passes through) an `f64` value.
    fn from_f64(v: f64) -> Self;

    /// Promotes to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;

    /// The per-element accumulate step `acc + a·x`: plain multiply-then-add
    /// by default, one fused multiply-add under the `fma` cargo feature —
    /// rounding exactly like the vector arms' per-lane operation.
    fn madd(a: Self, x: Self, acc: Self) -> Self;

    /// The fused two-term accumulate `acc + a·x + b·y` (`a`-term before
    /// `b`-term, like [`Elem::madd`]).
    fn madd2(a: Self, x: Self, b: Self, y: Self, acc: Self) -> Self;

    /// Hands the full lane chunks `[0, full)` of a matrix–panel product
    /// `out = bias ⊗ 1ᵀ + a·x` to this type's vector kernel, returning how
    /// many lanes were handled (`full`, or 0 when `kernel` has no vector arm
    /// for this host/type — the caller then runs the blocked scalar path).
    ///
    /// `a` covers `m × n` row-major, `x` `n × lanes`, `out` `m × lanes`,
    /// `bias` (if any) `m`; `full` is a multiple of [`crate::LANE_CHUNK`]
    /// and ≤ `lanes`. Callers must pre-validate those extents.
    #[allow(clippy::too_many_arguments)]
    fn mul_chunks(
        kernel: PanelKernel,
        a: &[Self],
        bias: Option<&[Self]>,
        x: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize;

    /// Hands the full lane chunks `[0, full)` of an affine-pair step
    /// `out = bias ⊗ 1ᵀ + a·x + b·y` to this type's vector kernel (layout
    /// contract as in [`Elem::mul_chunks`], with `b` covering `m × n` and
    /// `y` `n × lanes`); returns lanes handled.
    #[allow(clippy::too_many_arguments)]
    fn affine_chunks(
        kernel: PanelKernel,
        a: &[Self],
        b: &[Self],
        bias: Option<&[Self]>,
        x: &[Self],
        y: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize;

    /// Hands the full lane chunks `[0, full)` of an affine-pair step with a
    /// per-lane bias *panel*, `out = bias + a·x + b·y`, to this type's
    /// vector kernel (layout contract as in [`Elem::affine_chunks`], except
    /// `bias` covers `m × lanes` — the same layout as `out`); returns lanes
    /// handled.
    #[allow(clippy::too_many_arguments)]
    fn affine_panel_chunks(
        kernel: PanelKernel,
        a: &[Self],
        b: &[Self],
        bias: &[Self],
        x: &[Self],
        y: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize;

    /// Hands an entire elementwise span `out[k] = base[k] + coef[k]·cur[k]`
    /// (equal-length slices, pre-validated) to this type's vector kernel;
    /// returns `true` if handled (vector body plus an identically-rounding
    /// scalar tail), `false` when the caller should run the scalar loop.
    fn fused_span(
        kernel: PanelKernel,
        base: &[Self],
        coef: &[Self],
        cur: &[Self],
        out: &mut [Self],
    ) -> bool;
}

impl Elem for f64 {
    const ZERO: Self = 0.0;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn madd(a: Self, x: Self, acc: Self) -> Self {
        crate::simd::madd(a, x, acc)
    }

    #[inline(always)]
    fn madd2(a: Self, x: Self, b: Self, y: Self, acc: Self) -> Self {
        crate::simd::madd2(a, x, b, y, acc)
    }

    #[allow(unused_variables)]
    fn mul_chunks(
        kernel: PanelKernel,
        a: &[Self],
        bias: Option<&[Self]>,
        x: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize {
        if full == 0 || !kernel.is_available() {
            return 0;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; extents pre-validated by
            // the caller per the trait contract.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::mul_chunks(a, bias, x, out, m, n, lanes, full);
                full
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::mul_chunks(a, bias, x, out, m, n, lanes, full);
                full
            },
            _ => 0,
        }
    }

    #[allow(unused_variables)]
    fn affine_chunks(
        kernel: PanelKernel,
        a: &[Self],
        b: &[Self],
        bias: Option<&[Self]>,
        x: &[Self],
        y: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize {
        if full == 0 || !kernel.is_available() {
            return 0;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; extents pre-validated.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::affine_chunks(a, b, bias, x, y, out, m, n, lanes, full);
                full
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::affine_chunks(a, b, bias, x, y, out, m, n, lanes, full);
                full
            },
            _ => 0,
        }
    }

    #[allow(unused_variables)]
    fn affine_panel_chunks(
        kernel: PanelKernel,
        a: &[Self],
        b: &[Self],
        bias: &[Self],
        x: &[Self],
        y: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize {
        if full == 0 || !kernel.is_available() {
            return 0;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; extents pre-validated.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::affine_panel_chunks(a, b, bias, x, y, out, m, n, lanes, full);
                full
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::affine_panel_chunks(a, b, bias, x, y, out, m, n, lanes, full);
                full
            },
            _ => 0,
        }
    }

    #[allow(unused_variables)]
    fn fused_span(
        kernel: PanelKernel,
        base: &[Self],
        coef: &[Self],
        cur: &[Self],
        out: &mut [Self],
    ) -> bool {
        if !kernel.is_available() {
            return false;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; lengths pre-validated.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::fused_mul_add_span(base, coef, cur, out);
                true
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::fused_mul_add_span(base, coef, cur, out);
                true
            },
            _ => false,
        }
    }
}

impl Elem for f32 {
    const ZERO: Self = 0.0;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline(always)]
    fn madd(a: Self, x: Self, acc: Self) -> Self {
        crate::simd::madd_f32(a, x, acc)
    }

    #[inline(always)]
    fn madd2(a: Self, x: Self, b: Self, y: Self, acc: Self) -> Self {
        crate::simd::madd2_f32(a, x, b, y, acc)
    }

    #[allow(unused_variables)]
    fn mul_chunks(
        kernel: PanelKernel,
        a: &[Self],
        bias: Option<&[Self]>,
        x: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize {
        if full == 0 || !kernel.is_available() {
            return 0;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; extents pre-validated.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::mul_chunks_f32(a, bias, x, out, m, n, lanes, full);
                full
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::mul_chunks_f32(a, bias, x, out, m, n, lanes, full);
                full
            },
            _ => 0,
        }
    }

    #[allow(unused_variables)]
    fn affine_chunks(
        kernel: PanelKernel,
        a: &[Self],
        b: &[Self],
        bias: Option<&[Self]>,
        x: &[Self],
        y: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize {
        if full == 0 || !kernel.is_available() {
            return 0;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; extents pre-validated.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::affine_chunks_f32(a, b, bias, x, y, out, m, n, lanes, full);
                full
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::affine_chunks_f32(a, b, bias, x, y, out, m, n, lanes, full);
                full
            },
            _ => 0,
        }
    }

    #[allow(unused_variables)]
    fn affine_panel_chunks(
        kernel: PanelKernel,
        a: &[Self],
        b: &[Self],
        bias: &[Self],
        x: &[Self],
        y: &[Self],
        out: &mut [Self],
        m: usize,
        n: usize,
        lanes: usize,
        full: usize,
    ) -> usize {
        if full == 0 || !kernel.is_available() {
            return 0;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; extents pre-validated.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::affine_panel_chunks_f32(
                    a, b, bias, x, y, out, m, n, lanes, full,
                );
                full
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::affine_panel_chunks_f32(
                    a, b, bias, x, y, out, m, n, lanes, full,
                );
                full
            },
            _ => 0,
        }
    }

    #[allow(unused_variables)]
    fn fused_span(
        kernel: PanelKernel,
        base: &[Self],
        coef: &[Self],
        cur: &[Self],
        out: &mut [Self],
    ) -> bool {
        if !kernel.is_available() {
            return false;
        }
        match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked above; lengths pre-validated.
            PanelKernel::Avx2Fma => unsafe {
                crate::simd::avx2::fused_mul_add_span_f32(base, coef, cur, out);
                true
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            PanelKernel::Neon => unsafe {
                crate::simd::neon::fused_mul_add_span_f32(base, coef, cur, out);
                true
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_exactly() {
        assert_eq!(f64::from_f64(1.25), 1.25);
        assert_eq!(1.25f64.to_f64(), 1.25);
        assert_eq!(f32::from_f64(1.25), 1.25f32);
        assert_eq!(1.25f32.to_f64(), 1.25);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f32::ZERO, 0.0);
    }

    #[test]
    fn generic_madd_matches_the_concrete_primitives() {
        assert_eq!(
            <f64 as Elem>::madd(1.5, 2.0, 0.25),
            crate::simd::madd(1.5, 2.0, 0.25)
        );
        assert_eq!(
            <f64 as Elem>::madd2(1.5, 2.0, 3.0, 4.0, 0.25),
            crate::simd::madd2(1.5, 2.0, 3.0, 4.0, 0.25)
        );
        assert_eq!(
            <f32 as Elem>::madd(1.5, 2.0, 0.25),
            crate::simd::madd_f32(1.5, 2.0, 0.25)
        );
        assert_eq!(
            <f32 as Elem>::madd2(1.5, 2.0, 3.0, 4.0, 0.25),
            crate::simd::madd2_f32(1.5, 2.0, 3.0, 4.0, 0.25)
        );
    }

    #[test]
    fn scalar_kernel_hooks_decline_the_work() {
        let a = [1.0f64; 4];
        let x = [1.0f64; 8];
        let mut out = [0.0f64; 8];
        assert_eq!(
            f64::mul_chunks(PanelKernel::Scalar, &a, None, &x, &mut out, 1, 4, 8, 8),
            0
        );
        let mut out32 = [0.0f32; 8];
        assert!(!f32::fused_span(
            PanelKernel::Scalar,
            &[0.0; 8],
            &[0.0; 8],
            &[0.0; 8],
            &mut out32
        ));
    }
}

//! Nonlinear least-squares fitting (Levenberg–Marquardt).
//!
//! The paper fits the condensed leakage-current model
//! `I_leak(T) = c1·T²·e^(c2/T) + I_gate` to furnace measurements using a
//! "non-linear fitting tool" (MATLAB). This module provides the equivalent:
//! a damped Gauss–Newton (Levenberg–Marquardt) solver with a numerical
//! Jacobian, adequate for the low-dimensional, smooth fitting problems that
//! appear in power-model characterisation.

use crate::{lstsq::ridge_lstsq, Matrix, NumericError, Vector};

/// Options controlling the Levenberg–Marquardt iteration.
#[derive(Debug, Clone, Copy)]
pub struct FitOptions {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the relative decrease of the cost function.
    pub cost_tolerance: f64,
    /// Convergence threshold on the infinity norm of the parameter update.
    pub step_tolerance: f64,
    /// Initial damping factor λ.
    pub initial_damping: f64,
    /// Relative step used for the finite-difference Jacobian.
    pub jacobian_step: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            max_iterations: 200,
            cost_tolerance: 1e-12,
            step_tolerance: 1e-10,
            initial_damping: 1e-3,
            jacobian_step: 1e-6,
        }
    }
}

/// Result of a nonlinear fit.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Fitted parameter vector.
    pub parameters: Vector,
    /// Final cost (half the sum of squared residuals).
    pub cost: f64,
    /// Root-mean-square residual.
    pub rms_residual: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the iteration met a convergence criterion (as opposed to
    /// stopping at the iteration limit).
    pub converged: bool,
}

fn cost_of(residuals: &Vector) -> f64 {
    0.5 * residuals.iter().map(|r| r * r).sum::<f64>()
}

/// Fits parameters `p` so that the residual function `r(p)` is minimised in
/// the least-squares sense, using Levenberg–Marquardt with a forward-difference
/// Jacobian.
///
/// `residual_fn` must return one residual per data point; its length must not
/// change between calls.
///
/// # Errors
///
/// * [`NumericError::InvalidArgument`] if the initial guess is empty or the
///   residual function returns non-finite values for the initial guess.
/// * [`NumericError::InsufficientData`] if there are fewer residuals than
///   parameters.
/// * [`NumericError::NoConvergence`] if the iteration limit is reached while
///   the cost is still decreasing significantly.
///
/// # Example
///
/// ```
/// use numeric::{levenberg_marquardt, FitOptions, Vector};
///
/// # fn main() -> Result<(), numeric::NumericError> {
/// // Fit y = a * exp(b * x) to exact data with a = 2, b = 0.5.
/// let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (0.5 * x).exp()).collect();
/// let report = levenberg_marquardt(
///     &Vector::from_slice(&[1.0, 0.1]),
///     &FitOptions::default(),
///     |p| {
///         Vector::from_iter(
///             xs.iter()
///                 .zip(&ys)
///                 .map(|(x, y)| p[0] * (p[1] * x).exp() - y),
///         )
///     },
/// )?;
/// assert!((report.parameters[0] - 2.0).abs() < 1e-6);
/// assert!((report.parameters[1] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn levenberg_marquardt<F>(
    initial: &Vector,
    options: &FitOptions,
    residual_fn: F,
) -> Result<FitReport, NumericError>
where
    F: Fn(&Vector) -> Vector,
{
    if initial.is_empty() {
        return Err(NumericError::InvalidArgument(
            "initial parameter vector must not be empty",
        ));
    }
    let mut params = initial.clone();
    let mut residuals = residual_fn(&params);
    if !residuals.is_finite() {
        return Err(NumericError::InvalidArgument(
            "residual function returned non-finite values at the initial guess",
        ));
    }
    if residuals.len() < params.len() {
        return Err(NumericError::InsufficientData {
            required: params.len(),
            provided: residuals.len(),
        });
    }

    let mut cost = cost_of(&residuals);
    let mut damping = options.initial_damping;
    let n_params = params.len();
    let n_res = residuals.len();

    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..options.max_iterations {
        iterations = iter + 1;

        // Forward-difference Jacobian.
        let mut jacobian = Matrix::zeros(n_res, n_params);
        for j in 0..n_params {
            let step = options.jacobian_step * params[j].abs().max(1e-8);
            let mut perturbed = params.clone();
            perturbed[j] += step;
            let r_perturbed = residual_fn(&perturbed);
            if r_perturbed.len() != n_res {
                return Err(NumericError::InvalidArgument(
                    "residual function changed output length",
                ));
            }
            for i in 0..n_res {
                jacobian[(i, j)] = (r_perturbed[i] - residuals[i]) / step;
            }
        }

        // Solve the damped normal equations (Jᵀ J + λ diag) δ = -Jᵀ r, which is
        // exactly ridge least squares on (J, -r).
        let neg_res = Vector::from_iter(residuals.iter().map(|r| -r));
        let mut step_accepted = false;
        for _ in 0..20 {
            let delta = match ridge_lstsq(&jacobian, &neg_res, damping) {
                Ok(d) => d,
                Err(NumericError::Singular) => {
                    damping *= 10.0;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let candidate = Vector::from_iter(params.iter().zip(delta.iter()).map(|(p, d)| p + d));
            let candidate_res = residual_fn(&candidate);
            let candidate_cost = if candidate_res.is_finite() {
                cost_of(&candidate_res)
            } else {
                f64::INFINITY
            };
            if candidate_cost < cost {
                let relative_decrease = (cost - candidate_cost) / cost.max(1e-300);
                let step_size = delta.inf_norm();
                params = candidate;
                residuals = candidate_res;
                cost = candidate_cost;
                damping = (damping * 0.5).max(1e-12);
                step_accepted = true;
                if relative_decrease < options.cost_tolerance || step_size < options.step_tolerance
                {
                    converged = true;
                }
                break;
            }
            damping *= 10.0;
            if damping > 1e12 {
                break;
            }
        }

        if !step_accepted {
            // No descent direction improves the cost: we are at a (local) minimum.
            converged = true;
        }
        if converged {
            break;
        }
    }

    if !converged && iterations >= options.max_iterations {
        return Err(NumericError::NoConvergence {
            iterations,
            residual: (2.0 * cost).sqrt(),
        });
    }

    let rms = (residuals.iter().map(|r| r * r).sum::<f64>() / n_res as f64).sqrt();
    Ok(FitReport {
        parameters: params,
        cost,
        rms_residual: rms,
        iterations,
        converged: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exponential_exactly() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * (-0.7 * x).exp() + 0.1).collect();
        let report = levenberg_marquardt(
            &Vector::from_slice(&[1.0, -0.1, 0.0]),
            &FitOptions::default(),
            |p| {
                Vector::from_iter(
                    xs.iter()
                        .zip(&ys)
                        .map(|(x, y)| p[0] * (p[1] * x).exp() + p[2] - y),
                )
            },
        )
        .unwrap();
        assert!((report.parameters[0] - 3.0).abs() < 1e-5);
        assert!((report.parameters[1] + 0.7).abs() < 1e-5);
        assert!((report.parameters[2] - 0.1).abs() < 1e-5);
        assert!(report.rms_residual < 1e-7);
    }

    #[test]
    fn fits_leakage_shaped_model() {
        // Same functional form the paper fits: c1*T^2*exp(c2/T) + igate, with T in kelvin.
        let c1 = 2.0e-6;
        let c2 = -800.0;
        let igate = 0.02;
        let temps: Vec<f64> = (0..9).map(|i| 313.15 + 5.0 * i as f64).collect();
        let currents: Vec<f64> = temps
            .iter()
            .map(|t| c1 * t * t * (c2 / t).exp() + igate)
            .collect();
        let report = levenberg_marquardt(
            &Vector::from_slice(&[1.0e-6, -500.0, 0.0]),
            &FitOptions::default(),
            |p| {
                Vector::from_iter(
                    temps
                        .iter()
                        .zip(&currents)
                        .map(|(t, i)| p[0] * t * t * (p[1] / t).exp() + p[2] - i),
                )
            },
        )
        .unwrap();
        // The model is over-parameterised over a narrow range, so check the
        // *predicted* currents rather than the raw parameters.
        for (t, i_true) in temps.iter().zip(&currents) {
            let p = &report.parameters;
            let i_fit = p[0] * t * t * (p[1] / t).exp() + p[2];
            assert!(
                (i_fit - i_true).abs() < 1e-6,
                "at T={t}: {i_fit} vs {i_true}"
            );
        }
    }

    #[test]
    fn rejects_empty_initial_guess() {
        let r = levenberg_marquardt(&Vector::zeros(0), &FitOptions::default(), |_| {
            Vector::from_slice(&[0.0])
        });
        assert!(r.is_err());
    }

    #[test]
    fn rejects_fewer_residuals_than_parameters() {
        let r = levenberg_marquardt(
            &Vector::from_slice(&[1.0, 2.0, 3.0]),
            &FitOptions::default(),
            |_| Vector::from_slice(&[0.0]),
        );
        assert!(matches!(r, Err(NumericError::InsufficientData { .. })));
    }

    #[test]
    fn rejects_non_finite_initial_residuals() {
        let r = levenberg_marquardt(&Vector::from_slice(&[1.0]), &FitOptions::default(), |_| {
            Vector::from_slice(&[f64::NAN, 1.0])
        });
        assert!(r.is_err());
    }

    #[test]
    fn already_optimal_terminates_quickly() {
        // Residuals independent of parameters -> first iteration accepts nothing and converges.
        let report =
            levenberg_marquardt(&Vector::from_slice(&[5.0]), &FitOptions::default(), |p| {
                Vector::from_slice(&[p[0] - 5.0, 0.0])
            })
            .unwrap();
        assert!(report.iterations <= 3);
        assert!(report.cost < 1e-20);
    }
}

use std::error::Error;
use std::fmt;

/// Error type returned by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Dimensions of the left operand (rows, cols).
        left: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically so) and cannot be factorised.
    Singular,
    /// The input data was empty or otherwise insufficient for the operation.
    InsufficientData {
        /// Minimum number of samples/rows required.
        required: usize,
        /// Number actually provided.
        provided: usize,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// An argument was invalid (NaN, non-positive where positive required, ...).
    InvalidArgument(&'static str),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::DimensionMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {operation}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NumericError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            NumericError::Singular => write!(f, "matrix is singular to working precision"),
            NumericError::InsufficientData { required, provided } => write!(
                f,
                "insufficient data: {provided} samples provided, at least {required} required"
            ),
            NumericError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iteration failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for NumericError {}

//! One-dimensional table interpolation.
//!
//! Voltage/frequency operating points, fan-speed curves and characterised
//! power tables are all piecewise-linear lookups; [`Table1d`] provides a
//! checked, monotonic table with clamped linear interpolation.

use serde::{Deserialize, Serialize};

use crate::NumericError;

/// Linearly interpolates `y(x)` on the sample points `(xs, ys)`.
///
/// Values of `x` outside the table range are clamped to the first/last entry,
/// which matches how DVFS voltage tables behave (no extrapolation beyond the
/// supported operating points).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the tables are empty, have
/// different lengths, or `xs` is not strictly increasing.
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumericError> {
    Table1d::new(xs.to_vec(), ys.to_vec())?.lookup(x)
}

/// A monotonic piecewise-linear lookup table.
///
/// # Example
///
/// ```
/// use numeric::Table1d;
///
/// # fn main() -> Result<(), numeric::NumericError> {
/// let volts = Table1d::new(vec![800.0, 1600.0], vec![0.9, 1.2])?;
/// assert_eq!(volts.lookup(1200.0)?, 1.05);
/// assert_eq!(volts.lookup(2000.0)?, 1.2); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1d {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Table1d {
    /// Builds a table from strictly increasing abscissae `xs` and ordinates `ys`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if the inputs are empty, of
    /// different lengths, non-finite, or `xs` is not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericError> {
        if xs.is_empty() || ys.is_empty() {
            return Err(NumericError::InvalidArgument(
                "interpolation table is empty",
            ));
        }
        if xs.len() != ys.len() {
            return Err(NumericError::InvalidArgument(
                "interpolation table has mismatched lengths",
            ));
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumericError::InvalidArgument(
                "interpolation table contains non-finite values",
            ));
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return Err(NumericError::InvalidArgument(
                "interpolation abscissae must be strictly increasing",
            ));
        }
        Ok(Table1d { xs, ys })
    }

    /// Number of sample points in the table.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the table has no entries (never true for a
    /// successfully constructed table).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Looks up `y(x)` with clamped linear interpolation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `x` is not finite.
    pub fn lookup(&self, x: f64) -> Result<f64, NumericError> {
        if !x.is_finite() {
            return Err(NumericError::InvalidArgument(
                "lookup abscissa is not finite",
            ));
        }
        if x <= self.xs[0] {
            return Ok(self.ys[0]);
        }
        if x >= *self.xs.last().expect("non-empty") {
            return Ok(*self.ys.last().expect("non-empty"));
        }
        // Find the bracketing interval.
        let idx = self.xs.partition_point(|&v| v < x);
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        let t = (x - x0) / (x1 - x0);
        Ok(y0 + t * (y1 - y0))
    }

    /// Sample abscissae of the table.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Sample ordinates of the table.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_linearly() {
        let t = Table1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 30.0]).unwrap();
        assert_eq!(t.lookup(0.5).unwrap(), 5.0);
        assert_eq!(t.lookup(1.5).unwrap(), 20.0);
        assert_eq!(t.lookup(1.0).unwrap(), 10.0);
    }

    #[test]
    fn clamps_outside_range() {
        let t = Table1d::new(vec![1.0, 2.0], vec![5.0, 6.0]).unwrap();
        assert_eq!(t.lookup(0.0).unwrap(), 5.0);
        assert_eq!(t.lookup(3.0).unwrap(), 6.0);
    }

    #[test]
    fn single_point_table_is_constant() {
        let t = Table1d::new(vec![1.0], vec![42.0]).unwrap();
        assert_eq!(t.lookup(-10.0).unwrap(), 42.0);
        assert_eq!(t.lookup(10.0).unwrap(), 42.0);
    }

    #[test]
    fn rejects_bad_tables() {
        assert!(Table1d::new(vec![], vec![]).is_err());
        assert!(Table1d::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Table1d::new(vec![1.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(Table1d::new(vec![2.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(Table1d::new(vec![1.0, f64::NAN], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_non_finite_lookup() {
        let t = Table1d::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        assert!(t.lookup(f64::NAN).is_err());
    }

    #[test]
    fn interp1_convenience_matches_table() {
        assert_eq!(interp1(&[0.0, 2.0], &[0.0, 4.0], 1.0).unwrap(), 2.0);
    }
}

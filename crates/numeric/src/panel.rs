//! Structure-of-arrays panels: one scenario per column.
//!
//! A [`Panel`] holds the same state vector for `lanes` independent scenarios
//! side by side: row `i` stores element `i` of every scenario contiguously, so
//! column `l` is scenario `l`'s state scattered at stride `lanes`. Batched
//! kernels walk a row across all lanes with unit stride, which is exactly the
//! layout the autovectorizer wants and what lets an `n × n` transition matrix
//! be loaded *once* per step for every scenario instead of once per scenario.
//!
//! The panel kernels ([`Matrix::mul_panel_into`], [`affine_pair_apply`])
//! process lanes in fixed-width chunks of [`LANE_CHUNK`] with register
//! accumulators (two output rows per pass so each loaded input row is reused),
//! falling back to a per-lane scalar loop for the remainder. Both paths
//! accumulate in the same per-lane order (`j = 0..n`, `A`-term before
//! `B`-term), so a lane's result is bit-identical no matter which path
//! processed it or how many lanes surround it.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Panel};
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! // Two scenarios advanced by the same 2×2 map in one pass.
//! let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 2.0]])?;
//! let mut x = Panel::zeros(2, 2);
//! x.set_column(0, &[1.0, 1.0]);
//! x.set_column(1, &[4.0, 4.0]);
//! let mut out = Panel::zeros(2, 2);
//! a.mul_panel_into(&x, &mut out)?;
//! assert_eq!(out.column(0), vec![0.5, 2.0]);
//! assert_eq!(out.column(1), vec![2.0, 8.0]);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::NumericError;

/// Width of the register-blocked fast path of the panel kernels.
pub const LANE_CHUNK: usize = 8;

/// A structure-of-arrays panel: `rows` state elements for `lanes` independent
/// scenarios, stored row-major (`data[i * lanes + l]` is element `i` of
/// scenario `l`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    rows: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl Panel {
    /// Creates a `rows × lanes` panel filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `lanes` is zero.
    pub fn zeros(rows: usize, lanes: usize) -> Self {
        assert!(rows > 0 && lanes > 0, "panel dimensions must be non-zero");
        Panel {
            rows,
            lanes,
            data: vec![0.0; rows * lanes],
        }
    }

    /// Number of state rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of scenario lanes (columns).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Row `i` across all lanes, unit stride.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "panel row index out of bounds");
        &self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Mutable row `i` across all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "panel row index out of bounds");
        &mut self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Element `i` of scenario `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `lane` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, lane: usize) -> f64 {
        assert!(
            i < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        self.data[i * self.lanes + lane]
    }

    /// Sets element `i` of scenario `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `lane` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, lane: usize, value: f64) {
        assert!(
            i < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        self.data[i * self.lanes + lane] = value;
    }

    /// Copies scenario `lane`'s state vector into the panel (one value per
    /// row).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds or `values.len() != self.rows()`.
    pub fn set_column(&mut self, lane: usize, values: &[f64]) {
        assert!(lane < self.lanes, "panel lane index out of bounds");
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self.data[i * self.lanes + lane] = v;
        }
    }

    /// Extracts scenario `lane`'s state vector into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds or `out.len() != self.rows()`.
    pub fn column_into(&self, lane: usize, out: &mut [f64]) {
        assert!(lane < self.lanes, "panel lane index out of bounds");
        assert_eq!(out.len(), self.rows, "column length mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.data[i * self.lanes + lane];
        }
    }

    /// Scenario `lane`'s state vector as a fresh `Vec` (allocating
    /// convenience over [`Panel::column_into`]).
    pub fn column(&self, lane: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.column_into(lane, &mut out);
        out
    }

    /// Fills the whole panel with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major storage, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Matrix {
    /// The `i`-th row as a borrowed slice — the allocation-free form of
    /// [`Matrix::row`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(i < self.rows(), "row index out of bounds");
        &self.as_slice()[i * self.cols()..(i + 1) * self.cols()]
    }

    /// Matrix–panel product `out = self · x`: advances every scenario column
    /// of `x` through the same linear map in one pass, loading each matrix
    /// entry once for all lanes.
    ///
    /// Lanes are processed in register-blocked chunks of [`LANE_CHUNK`] (two
    /// output rows per pass) with a scalar per-lane remainder; every lane
    /// accumulates in the same order, so results are bit-identical across
    /// chunk boundaries and lane counts.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `self.cols() != x.rows()`
    /// or `out` is not `self.rows() × x.lanes()`.
    pub fn mul_panel_into(&self, x: &Panel, out: &mut Panel) -> Result<(), NumericError> {
        if self.cols() != x.rows() {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-panel multiplication",
                left: (self.rows(), self.cols()),
                right: (x.rows(), x.lanes()),
            });
        }
        if out.rows != self.rows() || out.lanes != x.lanes {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-panel output",
                left: (self.rows(), x.lanes),
                right: (out.rows, out.lanes),
            });
        }
        fused_panel_kernel(self, None, None, x, None, out);
        Ok(())
    }
}

/// Fused affine panel step `out = bias ⊗ 1ᵀ + a·x + b·y`.
///
/// This is the batched form of one affine transition applied to `x.lanes()`
/// scenarios at once: both matrices are streamed through the cache a single
/// time per call, and the inner loops run across lanes at unit stride. For
/// each output element the accumulation order is `bias`, then for `j = 0..n`
/// the `a`-term followed by the `b`-term — the same order for every lane and
/// identical to a scalar column-major (axpy) evaluation, which is what makes
/// batched and scalar transition stepping agree to the last bit.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if the matrix shapes differ,
/// `bias` does not cover the output rows, the panels disagree in shape, or
/// `out` is not `a.rows() × x.lanes()`.
pub fn affine_pair_apply(
    a: &Matrix,
    b: &Matrix,
    bias: &[f64],
    x: &Panel,
    y: &Panel,
    out: &mut Panel,
) -> Result<(), NumericError> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel pair",
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    if a.cols() != x.rows() || x.rows != y.rows || x.lanes != y.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel inputs",
            left: (a.cols(), x.lanes),
            right: (y.rows, y.lanes),
        });
    }
    if bias.len() != a.rows() || out.rows != a.rows() || out.lanes != x.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel output",
            left: (a.rows(), x.lanes),
            right: (out.rows, out.lanes),
        });
    }
    fused_panel_kernel(a, Some(b), Some(bias), x, Some(y), out);
    Ok(())
}

/// Shared blocked kernel behind [`Matrix::mul_panel_into`] and
/// [`affine_pair_apply`]. `b`/`y` are `None` for the single-matrix product;
/// a `None` bias means all zeros (no allocation). Dimensions are assumed
/// pre-validated.
fn fused_panel_kernel(
    a: &Matrix,
    b: Option<&Matrix>,
    bias: Option<&[f64]>,
    x: &Panel,
    y: Option<&Panel>,
    out: &mut Panel,
) {
    let bias_at = |i: usize| bias.map_or(0.0, |b| b[i]);
    let m = a.rows();
    let n = a.cols();
    let lanes = x.lanes;
    let a_data = a.as_slice();
    let b_data = b.map(Matrix::as_slice);
    let x_data = x.as_slice();
    let y_data = y.map(Panel::as_slice);

    let mut off = 0;
    while off < lanes {
        let width = (lanes - off).min(LANE_CHUNK);
        if width == LANE_CHUNK {
            // Register-blocked fast path: two output rows per pass so each
            // loaded input row is applied twice.
            let mut i = 0;
            while i + 1 < m {
                let mut acc0 = [bias_at(i); LANE_CHUNK];
                let mut acc1 = [bias_at(i + 1); LANE_CHUNK];
                for j in 0..n {
                    let a0 = a_data[i * n + j];
                    let a1 = a_data[(i + 1) * n + j];
                    let x_row = &x_data[j * lanes + off..j * lanes + off + LANE_CHUNK];
                    match (b_data, y_data) {
                        (Some(bd), Some(yd)) => {
                            let b0 = bd[i * n + j];
                            let b1 = bd[(i + 1) * n + j];
                            let y_row = &yd[j * lanes + off..j * lanes + off + LANE_CHUNK];
                            for q in 0..LANE_CHUNK {
                                let xv = x_row[q];
                                let yv = y_row[q];
                                acc0[q] += a0 * xv + b0 * yv;
                                acc1[q] += a1 * xv + b1 * yv;
                            }
                        }
                        _ => {
                            for q in 0..LANE_CHUNK {
                                let xv = x_row[q];
                                acc0[q] += a0 * xv;
                                acc1[q] += a1 * xv;
                            }
                        }
                    }
                }
                out.data[i * lanes + off..i * lanes + off + LANE_CHUNK].copy_from_slice(&acc0);
                out.data[(i + 1) * lanes + off..(i + 1) * lanes + off + LANE_CHUNK]
                    .copy_from_slice(&acc1);
                i += 2;
            }
            if i < m {
                let mut acc = [bias_at(i); LANE_CHUNK];
                for j in 0..n {
                    let a0 = a_data[i * n + j];
                    let x_row = &x_data[j * lanes + off..j * lanes + off + LANE_CHUNK];
                    match (b_data, y_data) {
                        (Some(bd), Some(yd)) => {
                            let b0 = bd[i * n + j];
                            let y_row = &yd[j * lanes + off..j * lanes + off + LANE_CHUNK];
                            for q in 0..LANE_CHUNK {
                                acc[q] += a0 * x_row[q] + b0 * y_row[q];
                            }
                        }
                        _ => {
                            for q in 0..LANE_CHUNK {
                                acc[q] += a0 * x_row[q];
                            }
                        }
                    }
                }
                out.data[i * lanes + off..i * lanes + off + LANE_CHUNK].copy_from_slice(&acc);
            }
        } else {
            // Scalar remainder: same per-lane accumulation order as the
            // blocked path, so lane results never depend on the chunking.
            for i in 0..m {
                for q in 0..width {
                    let lane = off + q;
                    let mut acc = bias_at(i);
                    match (b_data, y_data) {
                        (Some(bd), Some(yd)) => {
                            for j in 0..n {
                                // Single expression per j, matching the
                                // blocked path's rounding exactly.
                                acc += a_data[i * n + j] * x_data[j * lanes + lane]
                                    + bd[i * n + j] * yd[j * lanes + lane];
                            }
                        }
                        _ => {
                            for j in 0..n {
                                acc += a_data[i * n + j] * x_data[j * lanes + lane];
                            }
                        }
                    }
                    out.data[i * lanes + lane] = acc;
                }
            }
        }
        off += width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    fn test_matrix(n: usize, seed: f64) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = ((i * n + j) as f64).sin() * seed + if i == j { 0.9 } else { 0.0 };
            }
        }
        m
    }

    #[test]
    fn panel_accessors_round_trip() {
        let mut p = Panel::zeros(3, 5);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.lanes(), 5);
        p.set(1, 4, 2.5);
        assert_eq!(p.get(1, 4), 2.5);
        p.set_column(2, &[1.0, 2.0, 3.0]);
        assert_eq!(p.column(2), vec![1.0, 2.0, 3.0]);
        assert_eq!(p.row(1)[2], 2.0);
        p.row_mut(0)[0] = 7.0;
        assert_eq!(p.get(0, 0), 7.0);
        let mut col = vec![0.0; 3];
        p.column_into(2, &mut col);
        assert_eq!(col, vec![1.0, 2.0, 3.0]);
        p.fill(0.0);
        assert!(p.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn set_column_rejects_wrong_length() {
        Panel::zeros(3, 2).set_column(0, &[1.0]);
    }

    #[test]
    fn row_slice_matches_row() {
        let m = test_matrix(4, 0.3);
        for i in 0..4 {
            assert_eq!(m.row_slice(i), m.row(i).as_slice());
        }
    }

    #[test]
    fn mul_panel_matches_per_column_mat_vec() {
        // Cover the blocked path, the remainder path and the odd-row tail.
        for lanes in [1, 3, 7, 8, 9, 16, 19] {
            for n in [3, 4, 8] {
                let a = test_matrix(n, 0.7);
                let mut x = Panel::zeros(n, lanes);
                for lane in 0..lanes {
                    let col: Vec<f64> = (0..n).map(|i| (lane * n + i) as f64 * 0.1 + 1.0).collect();
                    x.set_column(lane, &col);
                }
                let mut out = Panel::zeros(n, lanes);
                a.mul_panel_into(&x, &mut out).unwrap();
                for lane in 0..lanes {
                    let v = Vector::from_slice(&x.column(lane));
                    let expect = a.mul_vector(&v).unwrap();
                    for i in 0..n {
                        assert!(
                            (out.get(i, lane) - expect[i]).abs() < 1e-12,
                            "n={n} lanes={lanes} lane={lane} row={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mul_panel_lane_results_do_not_depend_on_neighbours() {
        // A lane's result must be bit-identical whether it sits in a full
        // chunk of 8 or in the scalar remainder.
        let n = 8;
        let a = test_matrix(n, 0.4);
        let col: Vec<f64> = (0..n).map(|i| 40.0 + i as f64 * 1.3).collect();
        let mut wide = Panel::zeros(n, 11);
        for lane in 0..11 {
            wide.set_column(lane, &col);
        }
        let mut out_wide = Panel::zeros(n, 11);
        a.mul_panel_into(&wide, &mut out_wide).unwrap();
        let mut narrow = Panel::zeros(n, 1);
        narrow.set_column(0, &col);
        let mut out_narrow = Panel::zeros(n, 1);
        a.mul_panel_into(&narrow, &mut out_narrow).unwrap();
        for lane in 0..11 {
            for i in 0..n {
                assert_eq!(
                    out_wide.get(i, lane).to_bits(),
                    out_narrow.get(i, 0).to_bits(),
                    "lane {lane} row {i}"
                );
            }
        }
    }

    #[test]
    fn affine_pair_matches_scalar_reference() {
        for lanes in [1, 5, 8, 13] {
            let n = 8;
            let a = test_matrix(n, 0.2);
            let b = test_matrix(n, 0.05);
            let bias: Vec<f64> = (0..n).map(|i| 0.01 * i as f64).collect();
            let mut x = Panel::zeros(n, lanes);
            let mut y = Panel::zeros(n, lanes);
            for lane in 0..lanes {
                for i in 0..n {
                    x.set(i, lane, 50.0 + (lane + i) as f64 * 0.37);
                    y.set(i, lane, 0.5 + (lane * i) as f64 * 0.011);
                }
            }
            let mut out = Panel::zeros(n, lanes);
            affine_pair_apply(&a, &b, &bias, &x, &y, &mut out).unwrap();
            for lane in 0..lanes {
                for i in 0..n {
                    let mut acc = bias[i];
                    for j in 0..n {
                        acc += a[(i, j)] * x.get(j, lane);
                        acc += b[(i, j)] * y.get(j, lane);
                    }
                    assert!(
                        (out.get(i, lane) - acc).abs() < 1e-10,
                        "lanes={lanes} lane={lane} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_reject_mismatched_shapes() {
        let a = Matrix::zeros(3, 3);
        let x = Panel::zeros(4, 2);
        let mut out = Panel::zeros(3, 2);
        assert!(a.mul_panel_into(&x, &mut out).is_err());
        let x = Panel::zeros(3, 2);
        let mut bad_out = Panel::zeros(3, 4);
        assert!(a.mul_panel_into(&x, &mut bad_out).is_err());

        let b = Matrix::zeros(3, 2);
        let y = Panel::zeros(3, 2);
        assert!(affine_pair_apply(&a, &b, &[0.0; 3], &x, &y, &mut out).is_err());
        let b = Matrix::zeros(3, 3);
        assert!(affine_pair_apply(&a, &b, &[0.0; 2], &x, &y, &mut out).is_err());
        let y_bad = Panel::zeros(3, 3);
        assert!(affine_pair_apply(&a, &b, &[0.0; 3], &x, &y_bad, &mut out).is_err());
    }
}

//! Structure-of-arrays panels: one scenario per column.
//!
//! A [`Panel`] holds the same state vector for `lanes` independent scenarios
//! side by side: row `i` stores element `i` of every scenario contiguously, so
//! column `l` is scenario `l`'s state scattered at stride `lanes`. Batched
//! kernels walk a row across all lanes with unit stride, which is exactly the
//! layout wide vector loads want and what lets an `n × n` transition matrix be
//! loaded *once* per step for every scenario instead of once per scenario.
//! Panel storage is allocated at [`crate::PANEL_ALIGN`]-byte boundaries (see
//! [`crate::aligned`]) so those wide loads never straddle cache lines.
//!
//! The panel kernels ([`Matrix::mul_panel_into`], [`affine_pair_apply`])
//! process lanes in fixed-width chunks of [`LANE_CHUNK`] through the SIMD arm
//! selected by [`PanelKernel::active`] (see [`crate::simd`] for the dispatch
//! and equivalence contract), falling back to register-blocked scalar code for
//! the remainder lanes and on hosts without a vector unit. Every arm
//! accumulates each lane in the same per-lane order (`j = 0..n`, `A`-term
//! before `B`-term), so a lane's result is bit-identical no matter which arm
//! processed it or how many lanes surround it.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Panel};
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! // Two scenarios advanced by the same 2×2 map in one pass.
//! let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 2.0]])?;
//! let mut x = Panel::zeros(2, 2);
//! x.set_column(0, &[1.0, 1.0]);
//! x.set_column(1, &[4.0, 4.0]);
//! let mut out = Panel::zeros(2, 2);
//! a.mul_panel_into(&x, &mut out)?;
//! assert_eq!(out.column(0), vec![0.5, 2.0]);
//! assert_eq!(out.column(1), vec![2.0, 8.0]);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::aligned::{AlignedVec, PANEL_ALIGN};
use crate::elem::Elem;
use crate::matrix::Matrix;
use crate::simd::PanelKernel;
use crate::NumericError;

/// Width of the register-blocked fast path of the panel kernels.
pub const LANE_CHUNK: usize = 8;

/// The default double-precision panel every existing path uses.
pub type Panel = PanelT<f64>;

/// A single-precision panel: same layout as [`Panel`] at half the width, so
/// every 256-bit vector carries 8 lanes instead of 4. Used by the
/// mixed-precision engine; see [`crate::simd`] for the precision-selection
/// guide.
pub type PanelF32 = PanelT<f32>;

/// A structure-of-arrays panel: `rows` state elements for `lanes` independent
/// scenarios, stored row-major (`data[i * lanes + l]` is element `i` of
/// scenario `l`) in [`crate::PANEL_ALIGN`]-byte-aligned storage, generic over
/// the element precision ([`Elem`]: `f64` or `f32`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelT<E: Elem> {
    rows: usize,
    lanes: usize,
    data: AlignedVec<E>,
}

impl<E: Elem> PanelT<E> {
    /// Creates a `rows × lanes` panel filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `lanes` is zero.
    pub fn zeros(rows: usize, lanes: usize) -> Self {
        assert!(rows > 0 && lanes > 0, "panel dimensions must be non-zero");
        let data = AlignedVec::zeroed(rows * lanes);
        debug_assert_eq!(
            data.as_ptr() as usize % PANEL_ALIGN,
            0,
            "panel storage must be {PANEL_ALIGN}-byte aligned"
        );
        PanelT { rows, lanes, data }
    }

    /// Number of state rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of scenario lanes (columns).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Row `i` across all lanes, unit stride.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[E] {
        assert!(i < self.rows, "panel row index out of bounds");
        &self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Mutable row `i` across all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [E] {
        assert!(i < self.rows, "panel row index out of bounds");
        &mut self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Element `i` of scenario `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `lane` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, lane: usize) -> E {
        assert!(
            i < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        self.data[i * self.lanes + lane]
    }

    /// Sets element `i` of scenario `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `lane` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, lane: usize, value: E) {
        assert!(
            i < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        self.data[i * self.lanes + lane] = value;
    }

    /// Copies scenario `lane`'s state vector into the panel (one value per
    /// row).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds or `values.len() != self.rows()`.
    pub fn set_column(&mut self, lane: usize, values: &[E]) {
        assert!(lane < self.lanes, "panel lane index out of bounds");
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self.data[i * self.lanes + lane] = v;
        }
    }

    /// Extracts scenario `lane`'s state vector into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds or `out.len() != self.rows()`.
    pub fn column_into(&self, lane: usize, out: &mut [E]) {
        assert!(lane < self.lanes, "panel lane index out of bounds");
        assert_eq!(out.len(), self.rows, "column length mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.data[i * self.lanes + lane];
        }
    }

    /// Scenario `lane`'s state vector as a fresh `Vec` (allocating
    /// convenience over [`PanelT::column_into`]).
    pub fn column(&self, lane: usize) -> Vec<E> {
        let mut out = vec![E::ZERO; self.rows];
        self.column_into(lane, &mut out);
        out
    }

    /// Fills the whole panel with `value`.
    pub fn fill(&mut self, value: E) {
        self.data.fill(value);
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// The underlying row-major storage, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }
}

impl Matrix {
    /// The `i`-th row as a borrowed slice — the allocation-free form of
    /// [`Matrix::row`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(i < self.rows(), "row index out of bounds");
        &self.as_slice()[i * self.cols()..(i + 1) * self.cols()]
    }

    /// Matrix–panel product `out = self · x`: advances every scenario column
    /// of `x` through the same linear map in one pass, loading each matrix
    /// entry once for all lanes.
    ///
    /// Full chunks of [`LANE_CHUNK`] lanes go through the SIMD arm selected
    /// by [`PanelKernel::active`]; remainder lanes take the blocked scalar
    /// path. Every lane accumulates in the same order regardless of arm, so
    /// results are bit-identical across chunk boundaries, lane counts and
    /// (in the default build) dispatch arms — see [`crate::simd`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `self.cols() != x.rows()`
    /// or `out` is not `self.rows() × x.lanes()`.
    pub fn mul_panel_into(&self, x: &Panel, out: &mut Panel) -> Result<(), NumericError> {
        self.mul_panel_into_with(PanelKernel::active(), x, out)
    }

    /// [`Matrix::mul_panel_into`] through an explicit [`PanelKernel`] arm
    /// (testing/benching form; an unavailable kernel degrades to scalar).
    ///
    /// # Errors
    ///
    /// As for [`Matrix::mul_panel_into`].
    pub fn mul_panel_into_with(
        &self,
        kernel: PanelKernel,
        x: &Panel,
        out: &mut Panel,
    ) -> Result<(), NumericError> {
        if self.cols() != x.rows() {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-panel multiplication",
                left: (self.rows(), self.cols()),
                right: (x.rows(), x.lanes()),
            });
        }
        if out.rows != self.rows() || out.lanes != x.lanes {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-panel output",
                left: (self.rows(), x.lanes),
                right: (out.rows, out.lanes),
            });
        }
        let (m, n, lanes) = (self.rows(), self.cols(), x.lanes);
        fused_panel_kernel::<f64>(
            kernel,
            self.as_slice(),
            None,
            None,
            x.as_slice(),
            None,
            &mut out.data,
            m,
            n,
            lanes,
        );
        Ok(())
    }
}

/// Width-generic matrix–panel product `out = a · x`, where the `m × n`
/// "matrix" is itself a [`PanelT`] (`rows() = m`, `lanes() = n`, row-major —
/// the exact [`Matrix`] layout at either precision). This is the f32-capable
/// twin of [`Matrix::mul_panel_into`], dispatched through
/// [`PanelKernel::active`].
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if `a.lanes() != x.rows()` or
/// `out` is not `a.rows() × x.lanes()`.
pub fn mul_panel_into_elem<E: Elem>(
    a: &PanelT<E>,
    x: &PanelT<E>,
    out: &mut PanelT<E>,
) -> Result<(), NumericError> {
    mul_panel_into_elem_with(PanelKernel::active(), a, x, out)
}

/// [`mul_panel_into_elem`] through an explicit [`PanelKernel`] arm
/// (testing/benching form; an unavailable kernel degrades to scalar).
///
/// # Errors
///
/// As for [`mul_panel_into_elem`].
pub fn mul_panel_into_elem_with<E: Elem>(
    kernel: PanelKernel,
    a: &PanelT<E>,
    x: &PanelT<E>,
    out: &mut PanelT<E>,
) -> Result<(), NumericError> {
    if a.lanes != x.rows {
        return Err(NumericError::DimensionMismatch {
            operation: "matrix-panel multiplication",
            left: (a.rows, a.lanes),
            right: (x.rows, x.lanes),
        });
    }
    if out.rows != a.rows || out.lanes != x.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "matrix-panel output",
            left: (a.rows, x.lanes),
            right: (out.rows, out.lanes),
        });
    }
    let (m, n, lanes) = (a.rows, a.lanes, x.lanes);
    fused_panel_kernel::<E>(
        kernel,
        a.as_slice(),
        None,
        None,
        x.as_slice(),
        None,
        &mut out.data,
        m,
        n,
        lanes,
    );
    Ok(())
}

/// Fused affine panel step `out = bias ⊗ 1ᵀ + a·x + b·y`.
///
/// This is the batched form of one affine transition applied to `x.lanes()`
/// scenarios at once: both matrices are streamed through the cache a single
/// time per call, and the inner loops run across lanes at unit stride through
/// the SIMD arm selected by [`PanelKernel::active`]. For each output element
/// the accumulation order is `bias`, then for `j = 0..n` the `a`-term
/// followed by the `b`-term — the same order for every lane and arm, and
/// identical to a scalar column-major (axpy) evaluation, which is what makes
/// batched and scalar transition stepping agree to the last bit (see
/// [`crate::simd`] for the `fma`-build contract).
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if the matrix shapes differ,
/// `bias` does not cover the output rows, the panels disagree in shape, or
/// `out` is not `a.rows() × x.lanes()`.
pub fn affine_pair_apply(
    a: &Matrix,
    b: &Matrix,
    bias: &[f64],
    x: &Panel,
    y: &Panel,
    out: &mut Panel,
) -> Result<(), NumericError> {
    affine_pair_apply_with(PanelKernel::active(), a, b, bias, x, y, out)
}

/// [`affine_pair_apply`] through an explicit [`PanelKernel`] arm
/// (testing/benching form; an unavailable kernel degrades to scalar).
///
/// # Errors
///
/// As for [`affine_pair_apply`].
pub fn affine_pair_apply_with(
    kernel: PanelKernel,
    a: &Matrix,
    b: &Matrix,
    bias: &[f64],
    x: &Panel,
    y: &Panel,
    out: &mut Panel,
) -> Result<(), NumericError> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel pair",
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    if a.cols() != x.rows() || x.rows != y.rows || x.lanes != y.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel inputs",
            left: (a.cols(), x.lanes),
            right: (y.rows, y.lanes),
        });
    }
    if bias.len() != a.rows() || out.rows != a.rows() || out.lanes != x.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel output",
            left: (a.rows(), x.lanes),
            right: (out.rows, out.lanes),
        });
    }
    let (m, n, lanes) = (a.rows(), a.cols(), x.lanes);
    fused_panel_kernel::<f64>(
        kernel,
        a.as_slice(),
        Some(b.as_slice()),
        Some(bias),
        x.as_slice(),
        Some(y.as_slice()),
        &mut out.data,
        m,
        n,
        lanes,
    );
    Ok(())
}

/// Width-generic fused affine panel step `out = bias ⊗ 1ᵀ + a·x + b·y`,
/// where the `m × n` matrices are [`PanelT`]s (`rows() = m`, `lanes() = n`,
/// row-major). This is the f32-capable twin of [`affine_pair_apply`] — the
/// batched thermal transition's hot loop — with the same per-lane
/// accumulation-order contract, dispatched through [`PanelKernel::active`].
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] under the same conditions as
/// [`affine_pair_apply`].
pub fn affine_pair_apply_elem<E: Elem>(
    a: &PanelT<E>,
    b: &PanelT<E>,
    bias: &[E],
    x: &PanelT<E>,
    y: &PanelT<E>,
    out: &mut PanelT<E>,
) -> Result<(), NumericError> {
    affine_pair_apply_elem_with(PanelKernel::active(), a, b, bias, x, y, out)
}

/// [`affine_pair_apply_elem`] through an explicit [`PanelKernel`] arm
/// (testing/benching form; an unavailable kernel degrades to scalar).
///
/// # Errors
///
/// As for [`affine_pair_apply_elem`].
#[allow(clippy::too_many_arguments)]
pub fn affine_pair_apply_elem_with<E: Elem>(
    kernel: PanelKernel,
    a: &PanelT<E>,
    b: &PanelT<E>,
    bias: &[E],
    x: &PanelT<E>,
    y: &PanelT<E>,
    out: &mut PanelT<E>,
) -> Result<(), NumericError> {
    if a.rows != b.rows || a.lanes != b.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel pair",
            left: (a.rows, a.lanes),
            right: (b.rows, b.lanes),
        });
    }
    if a.lanes != x.rows || x.rows != y.rows || x.lanes != y.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel inputs",
            left: (a.lanes, x.lanes),
            right: (y.rows, y.lanes),
        });
    }
    if bias.len() != a.rows || out.rows != a.rows || out.lanes != x.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel output",
            left: (a.rows, x.lanes),
            right: (out.rows, out.lanes),
        });
    }
    let (m, n, lanes) = (a.rows, a.lanes, x.lanes);
    fused_panel_kernel::<E>(
        kernel,
        a.as_slice(),
        Some(b.as_slice()),
        Some(bias),
        x.as_slice(),
        Some(y.as_slice()),
        &mut out.data,
        m,
        n,
        lanes,
    );
    Ok(())
}

/// Width-generic fused affine panel step with a per-lane bias *panel*:
/// `out = bias + a·x + b·y`, where `bias` is `m × lanes` (the same layout as
/// `out`) instead of a per-row broadcast vector. This is the transition-apply
/// shape used by the mixed-precision delta-form engine: the constant per-lane
/// drive `c + (R − I)·T0` rides in through the accumulator initialisation (a
/// plain vector load), so it costs no separate read-modify-write pass over
/// the deviation panel. Accumulation order per output element is the bias
/// element, then for `j = 0..n` the `a`-term followed by the `b`-term — the
/// same contract as [`affine_pair_apply_elem`], upheld identically by every
/// arm.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if the matrix panels disagree
/// in shape, the inputs do not match, or `bias`/`out` is not
/// `a.rows() × x.lanes()`.
pub fn affine_panel_bias_apply_elem<E: Elem>(
    a: &PanelT<E>,
    b: &PanelT<E>,
    bias: &PanelT<E>,
    x: &PanelT<E>,
    y: &PanelT<E>,
    out: &mut PanelT<E>,
) -> Result<(), NumericError> {
    affine_panel_bias_apply_elem_with(PanelKernel::active(), a, b, bias, x, y, out)
}

/// [`affine_panel_bias_apply_elem`] through an explicit [`PanelKernel`] arm
/// (testing/benching form; an unavailable kernel degrades to scalar).
///
/// # Errors
///
/// As for [`affine_panel_bias_apply_elem`].
#[allow(clippy::too_many_arguments)]
pub fn affine_panel_bias_apply_elem_with<E: Elem>(
    kernel: PanelKernel,
    a: &PanelT<E>,
    b: &PanelT<E>,
    bias: &PanelT<E>,
    x: &PanelT<E>,
    y: &PanelT<E>,
    out: &mut PanelT<E>,
) -> Result<(), NumericError> {
    if a.rows != b.rows || a.lanes != b.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel pair",
            left: (a.rows, a.lanes),
            right: (b.rows, b.lanes),
        });
    }
    if a.lanes != x.rows || x.rows != y.rows || x.lanes != y.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel inputs",
            left: (a.lanes, x.lanes),
            right: (y.rows, y.lanes),
        });
    }
    if bias.rows != a.rows || bias.lanes != x.lanes || out.rows != a.rows || out.lanes != x.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel bias/output",
            left: (a.rows, x.lanes),
            right: (out.rows, out.lanes),
        });
    }
    let (m, n, lanes) = (a.rows, a.lanes, x.lanes);
    let kernel = if kernel.is_available() {
        kernel
    } else {
        PanelKernel::Scalar
    };
    let (a_data, b_data, bias_data) = (a.as_slice(), b.as_slice(), bias.as_slice());
    let (x_data, y_data) = (x.as_slice(), y.as_slice());
    let out = &mut out.data;
    let full = lanes - lanes % LANE_CHUNK;
    let handled = E::affine_panel_chunks(
        kernel, a_data, b_data, bias_data, x_data, y_data, out, m, n, lanes, full,
    );
    if handled == lanes {
        return Ok(());
    }

    // Scalar arm and remainder: same row blocking as [`fused_panel_kernel`],
    // with the accumulators seeded from the bias panel row instead of a
    // broadcast.
    let mut i = 0;
    while i + 2 <= m {
        let mut off = handled;
        while off + LANE_CHUNK <= lanes {
            scalar_rows_bias_panel::<E, 2>(
                a_data, b_data, bias_data, x_data, y_data, out, i, n, lanes, off, LANE_CHUNK,
            );
            off += LANE_CHUNK;
        }
        if off < lanes {
            scalar_rows_bias_panel::<E, 2>(
                a_data,
                b_data,
                bias_data,
                x_data,
                y_data,
                out,
                i,
                n,
                lanes,
                off,
                lanes - off,
            );
        }
        i += 2;
    }
    if i < m {
        let mut off = handled;
        while off + LANE_CHUNK <= lanes {
            scalar_rows_bias_panel::<E, 1>(
                a_data, b_data, bias_data, x_data, y_data, out, i, n, lanes, off, LANE_CHUNK,
            );
            off += LANE_CHUNK;
        }
        if off < lanes {
            scalar_rows_bias_panel::<E, 1>(
                a_data,
                b_data,
                bias_data,
                x_data,
                y_data,
                out,
                i,
                n,
                lanes,
                off,
                lanes - off,
            );
        }
    }
    Ok(())
}

/// Shared dispatching kernel behind [`Matrix::mul_panel_into`],
/// [`affine_pair_apply`] and their width-generic `_elem` twins, operating on
/// raw row-major slices so one monomorphisation per element type serves both
/// the [`Matrix`]-fronted f64 API and the panel-as-matrix f32 API. `b_data` /
/// `y_data` are `None` for the single-matrix product; a `None` bias means all
/// zeros (no allocation). Dimensions are assumed pre-validated: `a` (and `b`)
/// cover `m × n`, `x` (and `y`) `n × lanes`, `out` `m × lanes`.
///
/// The requested arm (degraded to scalar if unavailable on this host, routed
/// through the [`Elem`] chunk hooks) handles the full [`LANE_CHUNK`]-wide
/// chunks `[0, full)`; the remainder lanes always take [`scalar_rows`]. Both
/// produce bit-identical lanes — see [`crate::simd`].
#[allow(clippy::too_many_arguments)]
fn fused_panel_kernel<E: Elem>(
    kernel: PanelKernel,
    a_data: &[E],
    b_data: Option<&[E]>,
    bias: Option<&[E]>,
    x_data: &[E],
    y_data: Option<&[E]>,
    out: &mut [E],
    m: usize,
    n: usize,
    lanes: usize,
) {
    let full = lanes - lanes % LANE_CHUNK;

    let kernel = if kernel.is_available() {
        kernel
    } else {
        PanelKernel::Scalar
    };
    let handled = match (b_data, y_data) {
        (Some(bd), Some(yd)) => {
            E::affine_chunks(kernel, a_data, bd, bias, x_data, yd, out, m, n, lanes, full)
        }
        _ => E::mul_chunks(kernel, a_data, bias, x_data, out, m, n, lanes, full),
    };
    if handled == lanes {
        return;
    }

    // Scalar arm and remainder: rows outer so each row's bias is read once
    // (not once per lane chunk), two output rows per pass so each loaded
    // input row is applied twice. Full chunks call the width-generic helper
    // with the literal `LANE_CHUNK` so constant propagation recovers the
    // fixed-trip-count inner loops the autovectorizer needs.
    let mut i = 0;
    while i + 2 <= m {
        let biases = [bias_at(bias, i), bias_at(bias, i + 1)];
        let mut off = handled;
        while off + LANE_CHUNK <= lanes {
            scalar_rows::<E, 2>(
                a_data, b_data, biases, x_data, y_data, out, i, n, lanes, off, LANE_CHUNK,
            );
            off += LANE_CHUNK;
        }
        if off < lanes {
            scalar_rows::<E, 2>(
                a_data,
                b_data,
                biases,
                x_data,
                y_data,
                out,
                i,
                n,
                lanes,
                off,
                lanes - off,
            );
        }
        i += 2;
    }
    if i < m {
        let biases = [bias_at(bias, i)];
        let mut off = handled;
        while off + LANE_CHUNK <= lanes {
            scalar_rows::<E, 1>(
                a_data, b_data, biases, x_data, y_data, out, i, n, lanes, off, LANE_CHUNK,
            );
            off += LANE_CHUNK;
        }
        if off < lanes {
            scalar_rows::<E, 1>(
                a_data,
                b_data,
                biases,
                x_data,
                y_data,
                out,
                i,
                n,
                lanes,
                off,
                lanes - off,
            );
        }
    }
}

#[inline(always)]
fn bias_at<E: Elem>(bias: Option<&[E]>, i: usize) -> E {
    bias.map_or(E::ZERO, |b| b[i])
}

/// Width- and precision-generic scalar body of the panel kernels:
/// accumulates `R` output rows starting at `i` over lanes
/// `[off, off + width)` (`width <=` [`LANE_CHUNK`]). The single helper serves
/// the blocked full-chunk pass, the odd-row tail and the remainder lanes, so
/// all of them share one accumulation order by construction — per lane,
/// `bias`, then for each `j` the `a`-term before the `b`-term, through the
/// [`Elem::madd`] / [`Elem::madd2`] primitives (identical to
/// [`crate::simd::madd`] / [`crate::simd::madd2`] and their f32 twins).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn scalar_rows<E: Elem, const R: usize>(
    a_data: &[E],
    b_data: Option<&[E]>,
    biases: [E; R],
    x_data: &[E],
    y_data: Option<&[E]>,
    out: &mut [E],
    i: usize,
    n: usize,
    lanes: usize,
    off: usize,
    width: usize,
) {
    let mut acc = [[E::ZERO; LANE_CHUNK]; R];
    for (r, row) in acc.iter_mut().enumerate() {
        *row = [biases[r]; LANE_CHUNK];
    }
    match (b_data, y_data) {
        (Some(bd), Some(yd)) => {
            for j in 0..n {
                let x_row = &x_data[j * lanes + off..j * lanes + off + width];
                let y_row = &yd[j * lanes + off..j * lanes + off + width];
                for (r, row) in acc.iter_mut().enumerate() {
                    let a0 = a_data[(i + r) * n + j];
                    let b0 = bd[(i + r) * n + j];
                    for q in 0..width {
                        row[q] = E::madd2(a0, x_row[q], b0, y_row[q], row[q]);
                    }
                }
            }
        }
        _ => {
            for j in 0..n {
                let x_row = &x_data[j * lanes + off..j * lanes + off + width];
                for (r, row) in acc.iter_mut().enumerate() {
                    let a0 = a_data[(i + r) * n + j];
                    for q in 0..width {
                        row[q] = E::madd(a0, x_row[q], row[q]);
                    }
                }
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        out[(i + r) * lanes + off..(i + r) * lanes + off + width].copy_from_slice(&row[..width]);
    }
}

/// The [`scalar_rows`] twin for [`affine_panel_bias_apply_elem`]: identical
/// blocking and accumulation order, except the accumulators are seeded from
/// the `m × lanes` bias panel row (one element per lane) instead of a
/// per-row broadcast.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn scalar_rows_bias_panel<E: Elem, const R: usize>(
    a_data: &[E],
    b_data: &[E],
    bias_data: &[E],
    x_data: &[E],
    y_data: &[E],
    out: &mut [E],
    i: usize,
    n: usize,
    lanes: usize,
    off: usize,
    width: usize,
) {
    let mut acc = [[E::ZERO; LANE_CHUNK]; R];
    for (r, row) in acc.iter_mut().enumerate() {
        let start = (i + r) * lanes + off;
        row[..width].copy_from_slice(&bias_data[start..start + width]);
    }
    for j in 0..n {
        let x_row = &x_data[j * lanes + off..j * lanes + off + width];
        let y_row = &y_data[j * lanes + off..j * lanes + off + width];
        for (r, row) in acc.iter_mut().enumerate() {
            let a0 = a_data[(i + r) * n + j];
            let b0 = b_data[(i + r) * n + j];
            for q in 0..width {
                row[q] = E::madd2(a0, x_row[q], b0, y_row[q], row[q]);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        out[(i + r) * lanes + off..(i + r) * lanes + off + width].copy_from_slice(&row[..width]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    fn test_matrix(n: usize, seed: f64) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = ((i * n + j) as f64).sin() * seed + if i == j { 0.9 } else { 0.0 };
            }
        }
        m
    }

    #[test]
    fn panel_accessors_round_trip() {
        let mut p = Panel::zeros(3, 5);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.lanes(), 5);
        p.set(1, 4, 2.5);
        assert_eq!(p.get(1, 4), 2.5);
        p.set_column(2, &[1.0, 2.0, 3.0]);
        assert_eq!(p.column(2), vec![1.0, 2.0, 3.0]);
        assert_eq!(p.row(1)[2], 2.0);
        p.row_mut(0)[0] = 7.0;
        assert_eq!(p.get(0, 0), 7.0);
        let mut col = vec![0.0; 3];
        p.column_into(2, &mut col);
        assert_eq!(col, vec![1.0, 2.0, 3.0]);
        p.fill(0.0);
        assert!(p.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn set_column_rejects_wrong_length() {
        Panel::zeros(3, 2).set_column(0, &[1.0]);
    }

    #[test]
    fn panel_storage_is_aligned() {
        let p = Panel::zeros(6, 9);
        assert_eq!(p.as_slice().as_ptr() as usize % PANEL_ALIGN, 0);
        let twin = p.clone();
        assert_eq!(twin.as_slice().as_ptr() as usize % PANEL_ALIGN, 0);
    }

    #[test]
    fn row_slice_matches_row() {
        let m = test_matrix(4, 0.3);
        for i in 0..4 {
            assert_eq!(m.row_slice(i), m.row(i).as_slice());
        }
    }

    #[test]
    fn mul_panel_matches_per_column_mat_vec() {
        // Cover the blocked path, the remainder path and the odd-row tail.
        for lanes in [1, 3, 7, 8, 9, 16, 19] {
            for n in [3, 4, 8] {
                let a = test_matrix(n, 0.7);
                let mut x = Panel::zeros(n, lanes);
                for lane in 0..lanes {
                    let col: Vec<f64> = (0..n).map(|i| (lane * n + i) as f64 * 0.1 + 1.0).collect();
                    x.set_column(lane, &col);
                }
                let mut out = Panel::zeros(n, lanes);
                a.mul_panel_into(&x, &mut out).unwrap();
                for lane in 0..lanes {
                    let v = Vector::from_slice(&x.column(lane));
                    let expect = a.mul_vector(&v).unwrap();
                    for i in 0..n {
                        assert!(
                            (out.get(i, lane) - expect[i]).abs() < 1e-12,
                            "n={n} lanes={lanes} lane={lane} row={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mul_panel_lane_results_do_not_depend_on_neighbours() {
        // A lane's result must be bit-identical whether it sits in a full
        // chunk of 8 (SIMD arm) or in the scalar remainder.
        let n = 8;
        let a = test_matrix(n, 0.4);
        let col: Vec<f64> = (0..n).map(|i| 40.0 + i as f64 * 1.3).collect();
        let mut wide = Panel::zeros(n, 11);
        for lane in 0..11 {
            wide.set_column(lane, &col);
        }
        let mut out_wide = Panel::zeros(n, 11);
        a.mul_panel_into(&wide, &mut out_wide).unwrap();
        let mut narrow = Panel::zeros(n, 1);
        narrow.set_column(0, &col);
        let mut out_narrow = Panel::zeros(n, 1);
        a.mul_panel_into(&narrow, &mut out_narrow).unwrap();
        for lane in 0..11 {
            for i in 0..n {
                assert_eq!(
                    out_wide.get(i, lane).to_bits(),
                    out_narrow.get(i, 0).to_bits(),
                    "lane {lane} row {i}"
                );
            }
        }
    }

    #[test]
    fn affine_pair_matches_scalar_reference() {
        for lanes in [1, 5, 8, 13] {
            let n = 8;
            let a = test_matrix(n, 0.2);
            let b = test_matrix(n, 0.05);
            let bias: Vec<f64> = (0..n).map(|i| 0.01 * i as f64).collect();
            let mut x = Panel::zeros(n, lanes);
            let mut y = Panel::zeros(n, lanes);
            for lane in 0..lanes {
                for i in 0..n {
                    x.set(i, lane, 50.0 + (lane + i) as f64 * 0.37);
                    y.set(i, lane, 0.5 + (lane * i) as f64 * 0.011);
                }
            }
            let mut out = Panel::zeros(n, lanes);
            affine_pair_apply(&a, &b, &bias, &x, &y, &mut out).unwrap();
            for lane in 0..lanes {
                for i in 0..n {
                    let mut acc = bias[i];
                    for j in 0..n {
                        acc += a[(i, j)] * x.get(j, lane);
                        acc += b[(i, j)] * y.get(j, lane);
                    }
                    assert!(
                        (out.get(i, lane) - acc).abs() < 1e-10,
                        "lanes={lanes} lane={lane} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn explicit_kernel_arms_agree_with_scalar() {
        // The `_with` forms are the oracle hook for the dispatch arms: on the
        // default build every available arm must match forced-scalar to the
        // bit; under `fma` they still must match each other (all arms fuse
        // identically), which this test covers by comparing vs Scalar, whose
        // madd primitives fuse too.
        let n = 8;
        let a = test_matrix(n, 0.2);
        let b = test_matrix(n, 0.05);
        let bias: Vec<f64> = (0..n).map(|i| 0.01 * i as f64).collect();
        for lanes in [8, 11, 24] {
            let mut x = Panel::zeros(n, lanes);
            let mut y = Panel::zeros(n, lanes);
            for lane in 0..lanes {
                for i in 0..n {
                    x.set(i, lane, 50.0 + (lane + i) as f64 * 0.37);
                    y.set(i, lane, 0.5 + (lane * i) as f64 * 0.011);
                }
            }
            let mut scalar_out = Panel::zeros(n, lanes);
            affine_pair_apply_with(PanelKernel::Scalar, &a, &b, &bias, &x, &y, &mut scalar_out)
                .unwrap();
            let mut scalar_mul = Panel::zeros(n, lanes);
            a.mul_panel_into_with(PanelKernel::Scalar, &x, &mut scalar_mul)
                .unwrap();
            for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
                if !kernel.is_available() {
                    continue;
                }
                let mut out = Panel::zeros(n, lanes);
                affine_pair_apply_with(kernel, &a, &b, &bias, &x, &y, &mut out).unwrap();
                assert_eq!(out, scalar_out, "affine {kernel:?} lanes={lanes}");
                let mut mul = Panel::zeros(n, lanes);
                a.mul_panel_into_with(kernel, &x, &mut mul).unwrap();
                assert_eq!(mul, scalar_mul, "mul {kernel:?} lanes={lanes}");
            }
        }
    }

    /// An n×n f32 "matrix" panel mirroring [`test_matrix`]'s values.
    fn test_matrix_f32(n: usize, seed: f64) -> PanelF32 {
        let m = test_matrix(n, seed);
        let mut p = PanelF32::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                p.set(i, j, m[(i, j)] as f32);
            }
        }
        p
    }

    #[test]
    fn f32_panel_accessors_round_trip() {
        let mut p = PanelF32::zeros(3, 5);
        p.set(1, 4, 2.5);
        assert_eq!(p.get(1, 4), 2.5);
        p.set_column(2, &[1.0, 2.0, 3.0]);
        assert_eq!(p.column(2), vec![1.0f32, 2.0, 3.0]);
        assert_eq!(p.as_slice().as_ptr() as usize % PANEL_ALIGN, 0);
        let twin = p.clone();
        assert_eq!(p, twin);
    }

    #[test]
    fn f32_mul_panel_matches_the_f64_kernel_within_precision() {
        for lanes in [1, 3, 7, 8, 9, 16, 19] {
            for n in [3, 4, 8] {
                let a64 = test_matrix(n, 0.7);
                let a32 = test_matrix_f32(n, 0.7);
                let mut x64 = Panel::zeros(n, lanes);
                let mut x32 = PanelF32::zeros(n, lanes);
                for lane in 0..lanes {
                    for i in 0..n {
                        let v = (lane * n + i) as f64 * 0.1 + 1.0;
                        x64.set(i, lane, v);
                        x32.set(i, lane, v as f32);
                    }
                }
                let mut out64 = Panel::zeros(n, lanes);
                a64.mul_panel_into(&x64, &mut out64).unwrap();
                let mut out32 = PanelF32::zeros(n, lanes);
                mul_panel_into_elem(&a32, &x32, &mut out32).unwrap();
                for lane in 0..lanes {
                    for i in 0..n {
                        let want = out64.get(i, lane);
                        let got = f64::from(out32.get(i, lane));
                        assert!(
                            (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                            "n={n} lanes={lanes} lane={lane} row={i}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn f32_explicit_kernel_arms_agree_with_f32_scalar_to_the_bit() {
        let n = 8;
        let a = test_matrix_f32(n, 0.2);
        let b = test_matrix_f32(n, 0.05);
        let bias: Vec<f32> = (0..n).map(|i| 0.01 * i as f32).collect();
        for lanes in [8, 11, 24] {
            let mut x = PanelF32::zeros(n, lanes);
            let mut y = PanelF32::zeros(n, lanes);
            for lane in 0..lanes {
                for i in 0..n {
                    x.set(i, lane, 50.0 + (lane + i) as f32 * 0.37);
                    y.set(i, lane, 0.5 + (lane * i) as f32 * 0.011);
                }
            }
            let mut scalar_out = PanelF32::zeros(n, lanes);
            affine_pair_apply_elem_with(
                PanelKernel::Scalar,
                &a,
                &b,
                &bias,
                &x,
                &y,
                &mut scalar_out,
            )
            .unwrap();
            let mut scalar_mul = PanelF32::zeros(n, lanes);
            mul_panel_into_elem_with(PanelKernel::Scalar, &a, &x, &mut scalar_mul).unwrap();
            for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
                if !kernel.is_available() {
                    continue;
                }
                let mut out = PanelF32::zeros(n, lanes);
                affine_pair_apply_elem_with(kernel, &a, &b, &bias, &x, &y, &mut out).unwrap();
                assert_eq!(out, scalar_out, "affine {kernel:?} lanes={lanes}");
                let mut mul = PanelF32::zeros(n, lanes);
                mul_panel_into_elem_with(kernel, &a, &x, &mut mul).unwrap();
                assert_eq!(mul, scalar_mul, "mul {kernel:?} lanes={lanes}");
            }
        }
    }

    #[test]
    fn f32_lane_results_do_not_depend_on_neighbours() {
        let n = 8;
        let a = test_matrix_f32(n, 0.4);
        let col: Vec<f32> = (0..n).map(|i| 40.0 + i as f32 * 1.3).collect();
        let mut wide = PanelF32::zeros(n, 11);
        for lane in 0..11 {
            wide.set_column(lane, &col);
        }
        let mut out_wide = PanelF32::zeros(n, 11);
        mul_panel_into_elem(&a, &wide, &mut out_wide).unwrap();
        let mut narrow = PanelF32::zeros(n, 1);
        narrow.set_column(0, &col);
        let mut out_narrow = PanelF32::zeros(n, 1);
        mul_panel_into_elem(&a, &narrow, &mut out_narrow).unwrap();
        for lane in 0..11 {
            for i in 0..n {
                assert_eq!(
                    out_wide.get(i, lane).to_bits(),
                    out_narrow.get(i, 0).to_bits(),
                    "lane {lane} row {i}"
                );
            }
        }
    }

    #[test]
    fn f32_kernels_reject_mismatched_shapes() {
        let a = PanelF32::zeros(3, 3);
        let x = PanelF32::zeros(4, 2);
        let mut out = PanelF32::zeros(3, 2);
        assert!(mul_panel_into_elem(&a, &x, &mut out).is_err());
        let x = PanelF32::zeros(3, 2);
        let y = PanelF32::zeros(3, 2);
        assert!(affine_pair_apply_elem(&a, &a, &[0.0; 2], &x, &y, &mut out).is_err());
        let b = PanelF32::zeros(3, 2);
        assert!(affine_pair_apply_elem(&a, &b, &[0.0; 3], &x, &y, &mut out).is_err());
    }

    #[test]
    fn kernels_reject_mismatched_shapes() {
        let a = Matrix::zeros(3, 3);
        let x = Panel::zeros(4, 2);
        let mut out = Panel::zeros(3, 2);
        assert!(a.mul_panel_into(&x, &mut out).is_err());
        let x = Panel::zeros(3, 2);
        let mut bad_out = Panel::zeros(3, 4);
        assert!(a.mul_panel_into(&x, &mut bad_out).is_err());

        let b = Matrix::zeros(3, 2);
        let y = Panel::zeros(3, 2);
        assert!(affine_pair_apply(&a, &b, &[0.0; 3], &x, &y, &mut out).is_err());
        let b = Matrix::zeros(3, 3);
        assert!(affine_pair_apply(&a, &b, &[0.0; 2], &x, &y, &mut out).is_err());
        let y_bad = Panel::zeros(3, 3);
        assert!(affine_pair_apply(&a, &b, &[0.0; 3], &x, &y_bad, &mut out).is_err());
    }
}

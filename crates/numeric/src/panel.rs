//! Structure-of-arrays panels: one scenario per column.
//!
//! A [`Panel`] holds the same state vector for `lanes` independent scenarios
//! side by side: row `i` stores element `i` of every scenario contiguously, so
//! column `l` is scenario `l`'s state scattered at stride `lanes`. Batched
//! kernels walk a row across all lanes with unit stride, which is exactly the
//! layout wide vector loads want and what lets an `n × n` transition matrix be
//! loaded *once* per step for every scenario instead of once per scenario.
//! Panel storage is allocated at [`crate::PANEL_ALIGN`]-byte boundaries (see
//! [`crate::aligned`]) so those wide loads never straddle cache lines.
//!
//! The panel kernels ([`Matrix::mul_panel_into`], [`affine_pair_apply`])
//! process lanes in fixed-width chunks of [`LANE_CHUNK`] through the SIMD arm
//! selected by [`PanelKernel::active`] (see [`crate::simd`] for the dispatch
//! and equivalence contract), falling back to register-blocked scalar code for
//! the remainder lanes and on hosts without a vector unit. Every arm
//! accumulates each lane in the same per-lane order (`j = 0..n`, `A`-term
//! before `B`-term), so a lane's result is bit-identical no matter which arm
//! processed it or how many lanes surround it.
//!
//! # Example
//!
//! ```
//! use numeric::{Matrix, Panel};
//!
//! # fn main() -> Result<(), numeric::NumericError> {
//! // Two scenarios advanced by the same 2×2 map in one pass.
//! let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 2.0]])?;
//! let mut x = Panel::zeros(2, 2);
//! x.set_column(0, &[1.0, 1.0]);
//! x.set_column(1, &[4.0, 4.0]);
//! let mut out = Panel::zeros(2, 2);
//! a.mul_panel_into(&x, &mut out)?;
//! assert_eq!(out.column(0), vec![0.5, 2.0]);
//! assert_eq!(out.column(1), vec![2.0, 8.0]);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::aligned::{AlignedVec, PANEL_ALIGN};
use crate::matrix::Matrix;
use crate::simd::PanelKernel;
use crate::NumericError;

/// Width of the register-blocked fast path of the panel kernels.
pub const LANE_CHUNK: usize = 8;

/// A structure-of-arrays panel: `rows` state elements for `lanes` independent
/// scenarios, stored row-major (`data[i * lanes + l]` is element `i` of
/// scenario `l`) in [`crate::PANEL_ALIGN`]-byte-aligned storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    rows: usize,
    lanes: usize,
    data: AlignedVec,
}

impl Panel {
    /// Creates a `rows × lanes` panel filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `lanes` is zero.
    pub fn zeros(rows: usize, lanes: usize) -> Self {
        assert!(rows > 0 && lanes > 0, "panel dimensions must be non-zero");
        let data = AlignedVec::zeroed(rows * lanes);
        debug_assert_eq!(
            data.as_ptr() as usize % PANEL_ALIGN,
            0,
            "panel storage must be {PANEL_ALIGN}-byte aligned"
        );
        Panel { rows, lanes, data }
    }

    /// Number of state rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of scenario lanes (columns).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Row `i` across all lanes, unit stride.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "panel row index out of bounds");
        &self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Mutable row `i` across all lanes.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "panel row index out of bounds");
        &mut self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Element `i` of scenario `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `lane` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, lane: usize) -> f64 {
        assert!(
            i < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        self.data[i * self.lanes + lane]
    }

    /// Sets element `i` of scenario `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `lane` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, lane: usize, value: f64) {
        assert!(
            i < self.rows && lane < self.lanes,
            "panel index out of bounds"
        );
        self.data[i * self.lanes + lane] = value;
    }

    /// Copies scenario `lane`'s state vector into the panel (one value per
    /// row).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds or `values.len() != self.rows()`.
    pub fn set_column(&mut self, lane: usize, values: &[f64]) {
        assert!(lane < self.lanes, "panel lane index out of bounds");
        assert_eq!(values.len(), self.rows, "column length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self.data[i * self.lanes + lane] = v;
        }
    }

    /// Extracts scenario `lane`'s state vector into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds or `out.len() != self.rows()`.
    pub fn column_into(&self, lane: usize, out: &mut [f64]) {
        assert!(lane < self.lanes, "panel lane index out of bounds");
        assert_eq!(out.len(), self.rows, "column length mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.data[i * self.lanes + lane];
        }
    }

    /// Scenario `lane`'s state vector as a fresh `Vec` (allocating
    /// convenience over [`Panel::column_into`]).
    pub fn column(&self, lane: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.column_into(lane, &mut out);
        out
    }

    /// Fills the whole panel with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major storage, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Matrix {
    /// The `i`-th row as a borrowed slice — the allocation-free form of
    /// [`Matrix::row`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(i < self.rows(), "row index out of bounds");
        &self.as_slice()[i * self.cols()..(i + 1) * self.cols()]
    }

    /// Matrix–panel product `out = self · x`: advances every scenario column
    /// of `x` through the same linear map in one pass, loading each matrix
    /// entry once for all lanes.
    ///
    /// Full chunks of [`LANE_CHUNK`] lanes go through the SIMD arm selected
    /// by [`PanelKernel::active`]; remainder lanes take the blocked scalar
    /// path. Every lane accumulates in the same order regardless of arm, so
    /// results are bit-identical across chunk boundaries, lane counts and
    /// (in the default build) dispatch arms — see [`crate::simd`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `self.cols() != x.rows()`
    /// or `out` is not `self.rows() × x.lanes()`.
    pub fn mul_panel_into(&self, x: &Panel, out: &mut Panel) -> Result<(), NumericError> {
        self.mul_panel_into_with(PanelKernel::active(), x, out)
    }

    /// [`Matrix::mul_panel_into`] through an explicit [`PanelKernel`] arm
    /// (testing/benching form; an unavailable kernel degrades to scalar).
    ///
    /// # Errors
    ///
    /// As for [`Matrix::mul_panel_into`].
    pub fn mul_panel_into_with(
        &self,
        kernel: PanelKernel,
        x: &Panel,
        out: &mut Panel,
    ) -> Result<(), NumericError> {
        if self.cols() != x.rows() {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-panel multiplication",
                left: (self.rows(), self.cols()),
                right: (x.rows(), x.lanes()),
            });
        }
        if out.rows != self.rows() || out.lanes != x.lanes {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-panel output",
                left: (self.rows(), x.lanes),
                right: (out.rows, out.lanes),
            });
        }
        fused_panel_kernel(kernel, self, None, None, x, None, out);
        Ok(())
    }
}

/// Fused affine panel step `out = bias ⊗ 1ᵀ + a·x + b·y`.
///
/// This is the batched form of one affine transition applied to `x.lanes()`
/// scenarios at once: both matrices are streamed through the cache a single
/// time per call, and the inner loops run across lanes at unit stride through
/// the SIMD arm selected by [`PanelKernel::active`]. For each output element
/// the accumulation order is `bias`, then for `j = 0..n` the `a`-term
/// followed by the `b`-term — the same order for every lane and arm, and
/// identical to a scalar column-major (axpy) evaluation, which is what makes
/// batched and scalar transition stepping agree to the last bit (see
/// [`crate::simd`] for the `fma`-build contract).
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if the matrix shapes differ,
/// `bias` does not cover the output rows, the panels disagree in shape, or
/// `out` is not `a.rows() × x.lanes()`.
pub fn affine_pair_apply(
    a: &Matrix,
    b: &Matrix,
    bias: &[f64],
    x: &Panel,
    y: &Panel,
    out: &mut Panel,
) -> Result<(), NumericError> {
    affine_pair_apply_with(PanelKernel::active(), a, b, bias, x, y, out)
}

/// [`affine_pair_apply`] through an explicit [`PanelKernel`] arm
/// (testing/benching form; an unavailable kernel degrades to scalar).
///
/// # Errors
///
/// As for [`affine_pair_apply`].
pub fn affine_pair_apply_with(
    kernel: PanelKernel,
    a: &Matrix,
    b: &Matrix,
    bias: &[f64],
    x: &Panel,
    y: &Panel,
    out: &mut Panel,
) -> Result<(), NumericError> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel pair",
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    if a.cols() != x.rows() || x.rows != y.rows || x.lanes != y.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel inputs",
            left: (a.cols(), x.lanes),
            right: (y.rows, y.lanes),
        });
    }
    if bias.len() != a.rows() || out.rows != a.rows() || out.lanes != x.lanes {
        return Err(NumericError::DimensionMismatch {
            operation: "affine panel output",
            left: (a.rows(), x.lanes),
            right: (out.rows, out.lanes),
        });
    }
    fused_panel_kernel(kernel, a, Some(b), Some(bias), x, Some(y), out);
    Ok(())
}

/// Shared dispatching kernel behind [`Matrix::mul_panel_into`] and
/// [`affine_pair_apply`]. `b`/`y` are `None` for the single-matrix product;
/// a `None` bias means all zeros (no allocation). Dimensions are assumed
/// pre-validated.
///
/// The requested arm (degraded to scalar if unavailable on this host)
/// handles the full [`LANE_CHUNK`]-wide chunks `[0, full)`; the remainder
/// lanes always take [`scalar_rows`]. Both produce bit-identical lanes — see
/// [`crate::simd`].
fn fused_panel_kernel(
    kernel: PanelKernel,
    a: &Matrix,
    b: Option<&Matrix>,
    bias: Option<&[f64]>,
    x: &Panel,
    y: Option<&Panel>,
    out: &mut Panel,
) {
    let m = a.rows();
    let n = a.cols();
    let lanes = x.lanes;
    let a_data = a.as_slice();
    let b_data = b.map(Matrix::as_slice);
    let x_data = x.as_slice();
    let y_data = y.map(Panel::as_slice);
    let full = lanes - lanes % LANE_CHUNK;

    let kernel = if kernel.is_available() {
        kernel
    } else {
        PanelKernel::Scalar
    };
    let mut handled = 0;
    match kernel {
        #[cfg(target_arch = "x86_64")]
        PanelKernel::Avx2Fma if full > 0 => {
            // SAFETY: availability was just checked; slices cover the
            // pre-validated m × n / n × lanes / m × lanes extents.
            unsafe {
                match (b_data, y_data) {
                    (Some(bd), Some(yd)) => crate::simd::avx2::affine_chunks(
                        a_data,
                        bd,
                        bias,
                        x_data,
                        yd,
                        &mut out.data,
                        m,
                        n,
                        lanes,
                        full,
                    ),
                    _ => crate::simd::avx2::mul_chunks(
                        a_data,
                        bias,
                        x_data,
                        &mut out.data,
                        m,
                        n,
                        lanes,
                        full,
                    ),
                }
            }
            handled = full;
        }
        #[cfg(target_arch = "aarch64")]
        PanelKernel::Neon if full > 0 => {
            // SAFETY: as above.
            unsafe {
                match (b_data, y_data) {
                    (Some(bd), Some(yd)) => crate::simd::neon::affine_chunks(
                        a_data,
                        bd,
                        bias,
                        x_data,
                        yd,
                        &mut out.data,
                        m,
                        n,
                        lanes,
                        full,
                    ),
                    _ => crate::simd::neon::mul_chunks(
                        a_data,
                        bias,
                        x_data,
                        &mut out.data,
                        m,
                        n,
                        lanes,
                        full,
                    ),
                }
            }
            handled = full;
        }
        _ => {}
    }
    if handled == lanes {
        return;
    }

    // Scalar arm and remainder: rows outer so each row's bias is read once
    // (not once per lane chunk), two output rows per pass so each loaded
    // input row is applied twice. Full chunks call the width-generic helper
    // with the literal `LANE_CHUNK` so constant propagation recovers the
    // fixed-trip-count inner loops the autovectorizer needs.
    let mut i = 0;
    while i + 2 <= m {
        let biases = [bias_at(bias, i), bias_at(bias, i + 1)];
        let mut off = handled;
        while off + LANE_CHUNK <= lanes {
            scalar_rows::<2>(
                a_data,
                b_data,
                biases,
                x_data,
                y_data,
                &mut out.data,
                i,
                n,
                lanes,
                off,
                LANE_CHUNK,
            );
            off += LANE_CHUNK;
        }
        if off < lanes {
            scalar_rows::<2>(
                a_data,
                b_data,
                biases,
                x_data,
                y_data,
                &mut out.data,
                i,
                n,
                lanes,
                off,
                lanes - off,
            );
        }
        i += 2;
    }
    if i < m {
        let biases = [bias_at(bias, i)];
        let mut off = handled;
        while off + LANE_CHUNK <= lanes {
            scalar_rows::<1>(
                a_data,
                b_data,
                biases,
                x_data,
                y_data,
                &mut out.data,
                i,
                n,
                lanes,
                off,
                LANE_CHUNK,
            );
            off += LANE_CHUNK;
        }
        if off < lanes {
            scalar_rows::<1>(
                a_data,
                b_data,
                biases,
                x_data,
                y_data,
                &mut out.data,
                i,
                n,
                lanes,
                off,
                lanes - off,
            );
        }
    }
}

#[inline(always)]
fn bias_at(bias: Option<&[f64]>, i: usize) -> f64 {
    bias.map_or(0.0, |b| b[i])
}

/// Width-generic scalar body of the panel kernels: accumulates `R` output
/// rows starting at `i` over lanes `[off, off + width)` (`width <=`
/// [`LANE_CHUNK`]). The single helper serves the blocked full-chunk pass, the
/// odd-row tail and the remainder lanes, so all of them share one
/// accumulation order by construction — per lane, `bias`, then for each `j`
/// the `a`-term before the `b`-term, through the [`crate::simd::madd`] /
/// [`crate::simd::madd2`] primitives.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn scalar_rows<const R: usize>(
    a_data: &[f64],
    b_data: Option<&[f64]>,
    biases: [f64; R],
    x_data: &[f64],
    y_data: Option<&[f64]>,
    out: &mut [f64],
    i: usize,
    n: usize,
    lanes: usize,
    off: usize,
    width: usize,
) {
    use crate::simd::{madd, madd2};

    let mut acc = [[0.0; LANE_CHUNK]; R];
    for (r, row) in acc.iter_mut().enumerate() {
        *row = [biases[r]; LANE_CHUNK];
    }
    match (b_data, y_data) {
        (Some(bd), Some(yd)) => {
            for j in 0..n {
                let x_row = &x_data[j * lanes + off..j * lanes + off + width];
                let y_row = &yd[j * lanes + off..j * lanes + off + width];
                for (r, row) in acc.iter_mut().enumerate() {
                    let a0 = a_data[(i + r) * n + j];
                    let b0 = bd[(i + r) * n + j];
                    for q in 0..width {
                        row[q] = madd2(a0, x_row[q], b0, y_row[q], row[q]);
                    }
                }
            }
        }
        _ => {
            for j in 0..n {
                let x_row = &x_data[j * lanes + off..j * lanes + off + width];
                for (r, row) in acc.iter_mut().enumerate() {
                    let a0 = a_data[(i + r) * n + j];
                    for q in 0..width {
                        row[q] = madd(a0, x_row[q], row[q]);
                    }
                }
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        out[(i + r) * lanes + off..(i + r) * lanes + off + width].copy_from_slice(&row[..width]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    fn test_matrix(n: usize, seed: f64) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = ((i * n + j) as f64).sin() * seed + if i == j { 0.9 } else { 0.0 };
            }
        }
        m
    }

    #[test]
    fn panel_accessors_round_trip() {
        let mut p = Panel::zeros(3, 5);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.lanes(), 5);
        p.set(1, 4, 2.5);
        assert_eq!(p.get(1, 4), 2.5);
        p.set_column(2, &[1.0, 2.0, 3.0]);
        assert_eq!(p.column(2), vec![1.0, 2.0, 3.0]);
        assert_eq!(p.row(1)[2], 2.0);
        p.row_mut(0)[0] = 7.0;
        assert_eq!(p.get(0, 0), 7.0);
        let mut col = vec![0.0; 3];
        p.column_into(2, &mut col);
        assert_eq!(col, vec![1.0, 2.0, 3.0]);
        p.fill(0.0);
        assert!(p.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn set_column_rejects_wrong_length() {
        Panel::zeros(3, 2).set_column(0, &[1.0]);
    }

    #[test]
    fn panel_storage_is_aligned() {
        let p = Panel::zeros(6, 9);
        assert_eq!(p.as_slice().as_ptr() as usize % PANEL_ALIGN, 0);
        let twin = p.clone();
        assert_eq!(twin.as_slice().as_ptr() as usize % PANEL_ALIGN, 0);
    }

    #[test]
    fn row_slice_matches_row() {
        let m = test_matrix(4, 0.3);
        for i in 0..4 {
            assert_eq!(m.row_slice(i), m.row(i).as_slice());
        }
    }

    #[test]
    fn mul_panel_matches_per_column_mat_vec() {
        // Cover the blocked path, the remainder path and the odd-row tail.
        for lanes in [1, 3, 7, 8, 9, 16, 19] {
            for n in [3, 4, 8] {
                let a = test_matrix(n, 0.7);
                let mut x = Panel::zeros(n, lanes);
                for lane in 0..lanes {
                    let col: Vec<f64> = (0..n).map(|i| (lane * n + i) as f64 * 0.1 + 1.0).collect();
                    x.set_column(lane, &col);
                }
                let mut out = Panel::zeros(n, lanes);
                a.mul_panel_into(&x, &mut out).unwrap();
                for lane in 0..lanes {
                    let v = Vector::from_slice(&x.column(lane));
                    let expect = a.mul_vector(&v).unwrap();
                    for i in 0..n {
                        assert!(
                            (out.get(i, lane) - expect[i]).abs() < 1e-12,
                            "n={n} lanes={lanes} lane={lane} row={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mul_panel_lane_results_do_not_depend_on_neighbours() {
        // A lane's result must be bit-identical whether it sits in a full
        // chunk of 8 (SIMD arm) or in the scalar remainder.
        let n = 8;
        let a = test_matrix(n, 0.4);
        let col: Vec<f64> = (0..n).map(|i| 40.0 + i as f64 * 1.3).collect();
        let mut wide = Panel::zeros(n, 11);
        for lane in 0..11 {
            wide.set_column(lane, &col);
        }
        let mut out_wide = Panel::zeros(n, 11);
        a.mul_panel_into(&wide, &mut out_wide).unwrap();
        let mut narrow = Panel::zeros(n, 1);
        narrow.set_column(0, &col);
        let mut out_narrow = Panel::zeros(n, 1);
        a.mul_panel_into(&narrow, &mut out_narrow).unwrap();
        for lane in 0..11 {
            for i in 0..n {
                assert_eq!(
                    out_wide.get(i, lane).to_bits(),
                    out_narrow.get(i, 0).to_bits(),
                    "lane {lane} row {i}"
                );
            }
        }
    }

    #[test]
    fn affine_pair_matches_scalar_reference() {
        for lanes in [1, 5, 8, 13] {
            let n = 8;
            let a = test_matrix(n, 0.2);
            let b = test_matrix(n, 0.05);
            let bias: Vec<f64> = (0..n).map(|i| 0.01 * i as f64).collect();
            let mut x = Panel::zeros(n, lanes);
            let mut y = Panel::zeros(n, lanes);
            for lane in 0..lanes {
                for i in 0..n {
                    x.set(i, lane, 50.0 + (lane + i) as f64 * 0.37);
                    y.set(i, lane, 0.5 + (lane * i) as f64 * 0.011);
                }
            }
            let mut out = Panel::zeros(n, lanes);
            affine_pair_apply(&a, &b, &bias, &x, &y, &mut out).unwrap();
            for lane in 0..lanes {
                for i in 0..n {
                    let mut acc = bias[i];
                    for j in 0..n {
                        acc += a[(i, j)] * x.get(j, lane);
                        acc += b[(i, j)] * y.get(j, lane);
                    }
                    assert!(
                        (out.get(i, lane) - acc).abs() < 1e-10,
                        "lanes={lanes} lane={lane} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn explicit_kernel_arms_agree_with_scalar() {
        // The `_with` forms are the oracle hook for the dispatch arms: on the
        // default build every available arm must match forced-scalar to the
        // bit; under `fma` they still must match each other (all arms fuse
        // identically), which this test covers by comparing vs Scalar, whose
        // madd primitives fuse too.
        let n = 8;
        let a = test_matrix(n, 0.2);
        let b = test_matrix(n, 0.05);
        let bias: Vec<f64> = (0..n).map(|i| 0.01 * i as f64).collect();
        for lanes in [8, 11, 24] {
            let mut x = Panel::zeros(n, lanes);
            let mut y = Panel::zeros(n, lanes);
            for lane in 0..lanes {
                for i in 0..n {
                    x.set(i, lane, 50.0 + (lane + i) as f64 * 0.37);
                    y.set(i, lane, 0.5 + (lane * i) as f64 * 0.011);
                }
            }
            let mut scalar_out = Panel::zeros(n, lanes);
            affine_pair_apply_with(PanelKernel::Scalar, &a, &b, &bias, &x, &y, &mut scalar_out)
                .unwrap();
            let mut scalar_mul = Panel::zeros(n, lanes);
            a.mul_panel_into_with(PanelKernel::Scalar, &x, &mut scalar_mul)
                .unwrap();
            for kernel in [PanelKernel::Avx2Fma, PanelKernel::Neon] {
                if !kernel.is_available() {
                    continue;
                }
                let mut out = Panel::zeros(n, lanes);
                affine_pair_apply_with(kernel, &a, &b, &bias, &x, &y, &mut out).unwrap();
                assert_eq!(out, scalar_out, "affine {kernel:?} lanes={lanes}");
                let mut mul = Panel::zeros(n, lanes);
                a.mul_panel_into_with(kernel, &x, &mut mul).unwrap();
                assert_eq!(mul, scalar_mul, "mul {kernel:?} lanes={lanes}");
            }
        }
    }

    #[test]
    fn kernels_reject_mismatched_shapes() {
        let a = Matrix::zeros(3, 3);
        let x = Panel::zeros(4, 2);
        let mut out = Panel::zeros(3, 2);
        assert!(a.mul_panel_into(&x, &mut out).is_err());
        let x = Panel::zeros(3, 2);
        let mut bad_out = Panel::zeros(3, 4);
        assert!(a.mul_panel_into(&x, &mut bad_out).is_err());

        let b = Matrix::zeros(3, 2);
        let y = Panel::zeros(3, 2);
        assert!(affine_pair_apply(&a, &b, &[0.0; 3], &x, &y, &mut out).is_err());
        let b = Matrix::zeros(3, 3);
        assert!(affine_pair_apply(&a, &b, &[0.0; 2], &x, &y, &mut out).is_err());
        let y_bad = Panel::zeros(3, 3);
        assert!(affine_pair_apply(&a, &b, &[0.0; 3], &x, &y_bad, &mut out).is_err());
    }
}

//! 64-byte-aligned backing storage for [`crate::PanelT`].
//!
//! The explicit SIMD panel kernels (see [`crate::simd`]) read panel rows with
//! wide vector loads. `Vec<f64>` only guarantees 8-byte alignment, so a panel
//! backed by one can straddle cache lines on every access; the crate-private
//! `AlignedVec` allocates its storage at [`PANEL_ALIGN`]-byte boundaries so a
//! panel whose lane count is a multiple of the vector width serves every wide
//! load from an aligned address. The buffer is fixed-size by design — every
//! panel construction or clone goes through `AlignedVec::zeroed` /
//! `AlignedVec::clone`, so the alignment invariant survives all growth and
//! reuse paths by construction. Storage is generic over the panel element
//! type ([`crate::Elem`]: `f64` or `f32`), whose sealed contract guarantees
//! that zeroed bytes are a valid all-zeros value.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

use crate::elem::Elem;

/// Alignment (bytes) of panel backing storage: one cache line, and enough for
/// 512-bit vector loads should a wider kernel ever want them.
pub const PANEL_ALIGN: usize = 64;

/// A fixed-length, heap-allocated element buffer aligned to [`PANEL_ALIGN`]
/// bytes. Dereferences to `[E]`; cloning reallocates at the same alignment.
pub(crate) struct AlignedVec<E: Elem> {
    ptr: NonNull<E>,
    len: usize,
}

// SAFETY: the buffer is plain `Copy` element data behind a uniquely owned
// allocation; there is no interior mutability or thread affinity.
unsafe impl<E: Elem> Send for AlignedVec<E> {}
unsafe impl<E: Elem> Sync for AlignedVec<E> {}

impl<E: Elem> AlignedVec<E> {
    /// Allocates a zero-filled buffer of `len` elements at [`PANEL_ALIGN`]
    /// alignment.
    pub(crate) fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: `layout` has non-zero size (len > 0).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<E>()) else {
            handle_alloc_error(layout)
        };
        debug_assert_eq!(
            ptr.as_ptr() as usize % PANEL_ALIGN,
            0,
            "panel storage must be {PANEL_ALIGN}-byte aligned"
        );
        AlignedVec { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<E>(), PANEL_ALIGN)
            .expect("aligned panel buffer layout")
    }
}

impl<E: Elem> Deref for AlignedVec<E> {
    type Target = [E];

    #[inline]
    fn deref(&self) -> &[E] {
        // SAFETY: `ptr` covers `len` initialised elements for the buffer's
        // lifetime (zeroed bytes are valid per the sealed `Elem` contract;
        // dangling with len == 0 is a valid empty slice).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<E: Elem> DerefMut for AlignedVec<E> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [E] {
        // SAFETY: as in `deref`, and `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<E: Elem> Drop for AlignedVec<E> {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in `zeroed` with exactly this layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

impl<E: Elem> Clone for AlignedVec<E> {
    fn clone(&self) -> Self {
        let mut fresh = AlignedVec::zeroed(self.len);
        fresh.copy_from_slice(self);
        fresh
    }
}

impl<E: Elem> std::fmt::Debug for AlignedVec<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<E: Elem> PartialEq for AlignedVec<E> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_aligned_and_zero() {
        for len in [1, 7, 8, 64, 65, 1023] {
            let buf = AlignedVec::<f64>::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % PANEL_ALIGN, 0, "len {len}");
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn f32_storage_is_aligned_and_zero_too() {
        for len in [1, 7, 8, 64, 65, 1023] {
            let buf = AlignedVec::<f32>::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % PANEL_ALIGN, 0, "len {len}");
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn clone_preserves_alignment_and_contents() {
        let mut buf = AlignedVec::<f64>::zeroed(19);
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = i as f64 * 0.5;
        }
        let twin = buf.clone();
        assert_eq!(twin.as_ptr() as usize % PANEL_ALIGN, 0);
        assert_eq!(buf, twin);
    }

    #[test]
    fn empty_buffer_is_a_valid_empty_slice() {
        let buf = AlignedVec::<f64>::zeroed(0);
        assert!(buf.is_empty());
        let twin = buf.clone();
        assert_eq!(buf, twin);
    }
}

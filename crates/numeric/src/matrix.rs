//! Dense row-major matrices and vectors.
//!
//! The thermal state-space model of the paper is tiny (4 states, 4 inputs), so
//! a straightforward heap-allocated dense representation is more than
//! sufficient; clarity and correctness win over raw speed here.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::NumericError;

/// A dense, row-major matrix of `f64` values.
///
/// # Example
///
/// ```
/// use numeric::Matrix;
///
/// # fn main() -> Result<(), numeric::NumericError> {
/// let a = Matrix::identity(3);
/// let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]])?;
/// assert_eq!(a.mul(&b)?, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumericError> {
        if rows == 0 || cols == 0 {
            return Err(NumericError::InvalidArgument(
                "matrix dimensions must be non-zero",
            ));
        }
        if data.len() != rows * cols {
            return Err(NumericError::InvalidArgument(
                "data length does not match rows * cols",
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if the rows have unequal
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericError::InvalidArgument(
                "matrix rows must be non-empty",
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(NumericError::InvalidArgument("rows have unequal lengths"));
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Matrix::from_vec(rows.len(), cols, data)
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the underlying row-major data as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the `i`-th row as a [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> Vector {
        assert!(i < self.rows, "row index out of bounds");
        Vector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns the `j`-th column as a [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of bounds");
        Vector::from_iter((0..self.rows).map(|i| self[(i, j)]))
    }

    /// Replaces the `i`-th row with the given values.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `values.len() != self.cols()`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert!(i < self.rows, "row index out of bounds");
        assert_eq!(values.len(), self.cols, "row length mismatch");
        self.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(values);
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if
    /// `self.cols() != other.rows()`.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, NumericError> {
        if self.cols != other.rows {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix multiplication",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `self.cols() != v.len()`.
    pub fn mul_vector(&self, v: &Vector) -> Result<Vector, NumericError> {
        if self.cols != v.len() {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-vector multiplication",
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        Ok(Vector::from_iter((0..self.rows).map(|i| {
            (0..self.cols).map(|j| self[(i, j)] * v[j]).sum::<f64>()
        })))
    }

    /// Matrix–vector product `self · v` written into `out` without
    /// allocating (`out` is resized to the row count if needed).
    ///
    /// This is the scratch-reuse form of [`Matrix::mul_vector`] used by the
    /// simulation and prediction hot paths.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `self.cols() != v.len()`.
    pub fn mul_vec_into(&self, v: &Vector, out: &mut Vector) -> Result<(), NumericError> {
        if self.cols != v.len() {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-vector multiplication",
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        out.resize(self.rows, 0.0);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(v.iter()).map(|(a, x)| a * x).sum::<f64>();
        }
        Ok(())
    }

    /// Accumulating matrix–vector product: `out += self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `self.cols() != v.len()`
    /// or `out.len() != self.rows()`.
    pub fn mul_vec_acc_into(&self, v: &Vector, out: &mut Vector) -> Result<(), NumericError> {
        if self.cols != v.len() {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-vector multiplication",
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(NumericError::DimensionMismatch {
                operation: "matrix-vector accumulation",
                left: (self.rows, self.cols),
                right: (out.len(), 1),
            });
        }
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] += row.iter().zip(v.iter()).map(|(a, x)| a * x).sum::<f64>();
        }
        Ok(())
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, NumericError> {
        self.zip_with(other, "matrix addition", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, NumericError> {
        self.zip_with(other, "matrix subtraction", |a, b| a - b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        operation: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, NumericError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericError::DimensionMismatch {
                operation,
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every entry by the scalar `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Raises a square matrix to the `n`-th power by repeated multiplication.
    ///
    /// `pow(0)` returns the identity.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] if the matrix is not square.
    pub fn pow(&self, n: usize) -> Result<Matrix, NumericError> {
        if !self.is_square() {
            return Err(NumericError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut result = Matrix::identity(self.rows);
        for _ in 0..n {
            result = result.mul(self)?;
        }
        Ok(result)
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry of the matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Infinity norm (maximum absolute row sum), the induced norm used by the
    /// paper's `L∞` temperature constraint argument.
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Returns `true` if every entry is finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Spectral radius estimate via power iteration on `AᵀA` (singular-value
    /// based bound), used to check stability of identified thermal models.
    ///
    /// Returns the dominant-eigenvalue magnitude estimate of the matrix. For a
    /// stable discrete thermal model the value must be `< 1`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] if the matrix is not square.
    pub fn spectral_radius_estimate(&self, iterations: usize) -> Result<f64, NumericError> {
        if !self.is_square() {
            return Err(NumericError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut v = Vector::from_iter((0..n).map(|i| 1.0 + (i as f64) * 0.01));
        let mut lambda = 0.0;
        for _ in 0..iterations.max(1) {
            let w = self.mul_vector(&v)?;
            let norm = w.norm();
            if norm < 1e-300 {
                return Ok(0.0);
            }
            lambda = norm / v.norm();
            v = w.scale(1.0 / norm);
        }
        Ok(lambda)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.5}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// A dense vector of `f64` values.
///
/// # Example
///
/// ```
/// use numeric::Vector;
///
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector by collecting an iterator.
    // An inherent convenience next to the `FromIterator` impl below; the
    // shared name is intentional.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(values: impl IntoIterator<Item = f64>) -> Self {
        Vector {
            data: values.into_iter().collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the elements as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Resizes the vector in place, filling new slots with `value` (scratch
    /// reuse: resizing to an already-held capacity does not allocate).
    pub fn resize(&mut self, n: usize, value: f64) {
        self.data.resize(n, value);
    }

    /// Consumes the vector and returns the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "vector length mismatch in dot");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute element (L∞ norm); returns 0 for an empty vector.
    pub fn inf_norm(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Maximum element; returns `f64::NEG_INFINITY` for an empty vector.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element; returns `f64::INFINITY` for an empty vector.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index of the maximum element, or `None` for an empty vector.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Multiplies every element by the scalar `s`.
    pub fn scale(&self, s: f64) -> Vector {
        Vector::from_iter(self.data.iter().map(|&x| x * s))
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns an iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for Vector {
    type Output = Vector;

    fn add(self, rhs: Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch in add");
        Vector::from_iter(self.data.iter().zip(&rhs.data).map(|(a, b)| a + b))
    }
}

impl Sub for Vector {
    type Output = Vector;

    fn sub(self, rhs: Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch in sub");
        Vector::from_iter(self.data.iter().zip(&rhs.data).map(|(a, b)| a - b))
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scale(-1.0)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scale(rhs)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.5}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericError::InvalidArgument(_)));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn multiplication_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn matrix_vector_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Vector::from_slice(&[1.0, 1.0]);
        let r = a.mul_vector(&v).unwrap();
        assert_eq!(r.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = sum.sub(&b).unwrap();
        assert_eq!(diff, a);
        assert_eq!(a.scale(2.0)[(1, 1)], 8.0);
    }

    #[test]
    fn pow_of_identity_and_zero_exponent() {
        let a = Matrix::from_rows(&[&[0.5, 0.1], &[0.0, 0.5]]).unwrap();
        assert_eq!(a.pow(0).unwrap(), Matrix::identity(2));
        let a2 = a.pow(2).unwrap();
        assert!((a2[(0, 0)] - 0.25).abs() < 1e-12);
        assert!((a2[(0, 1)] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.inf_norm(), 7.0);
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let a = Matrix::from_diagonal(&[0.9, 0.3]);
        let rho = a.spectral_radius_estimate(200).unwrap();
        assert!((rho - 0.9).abs() < 1e-6, "rho = {rho}");
    }

    #[test]
    fn row_and_column_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1).as_slice(), &[3.0, 4.0]);
        assert_eq!(a.column(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn set_row_overwrites() {
        let mut a = Matrix::zeros(2, 2);
        a.set_row(1, &[5.0, 6.0]);
        assert_eq!(a.row(1).as_slice(), &[5.0, 6.0]);
        assert_eq!(a.row(0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn vector_basic_ops() {
        let v = Vector::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.inf_norm(), 3.0);
        assert_eq!(v.max(), 3.0);
        assert_eq!(v.min(), -2.0);
        assert_eq!(v.argmax(), Some(2));
        let w = v.clone() + Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(w.as_slice(), &[2.0, 0.0, 6.0]);
        let d = w - Vector::from_slice(&[2.0, 0.0, 6.0]);
        assert_eq!(d.norm(), 0.0);
    }

    #[test]
    fn vector_is_finite_detects_nan() {
        let v = Vector::from_slice(&[1.0, f64::NAN]);
        assert!(!v.is_finite());
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
    }

    #[test]
    fn display_formats_without_panicking() {
        let a = Matrix::identity(2);
        let s = format!("{a}");
        assert!(s.contains("1.0"));
        let v = Vector::from_slice(&[1.5]);
        assert_eq!(format!("{v}"), "[1.50000]");
    }
}

//! LU factorisation with partial pivoting, linear solves and inversion.

use crate::{Matrix, NumericError, Vector};

/// LU decomposition with partial pivoting of a square matrix, `P·A = L·U`.
///
/// The factorisation is computed once and can then be reused for several
/// right-hand sides, which is how the ridge-regularised normal equations of
/// the system-identification step are solved.
///
/// # Example
///
/// ```
/// use numeric::{LuDecomposition, Matrix, Vector};
///
/// # fn main() -> Result<(), numeric::NumericError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&Vector::from_slice(&[3.0, 5.0]))?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (below diagonal, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation applied by partial pivoting.
    permutation: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    permutation_sign: f64,
}

/// Pivot entries whose magnitude falls below this threshold are treated as
/// zero, i.e. the matrix is reported singular.
const SINGULARITY_THRESHOLD: f64 = 1e-13;

impl LuDecomposition {
    /// Factorises the square matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] if `a` is not square and
    /// [`NumericError::Singular`] if a pivot smaller than the singularity
    /// threshold is encountered.
    pub fn new(a: &Matrix) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut permutation: Vec<usize> = (0..n).collect();
        let mut permutation_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_value = lu[(k, k)].abs();
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > pivot_value {
                    pivot_value = lu[(i, k)].abs();
                    pivot_row = i;
                }
            }
            if pivot_value < SINGULARITY_THRESHOLD {
                return Err(NumericError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                permutation.swap(k, pivot_row);
                permutation_sign = -permutation_sign;
            }
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / lu[(k, k)];
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    lu[(i, j)] -= factor * lu[(k, j)];
                }
            }
        }

        Ok(LuDecomposition {
            lu,
            permutation,
            permutation_sign,
        })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` does not match
    /// the matrix dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, NumericError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                operation: "LU solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution with permuted b (L has unit diagonal).
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[self.permutation[i]];
            for j in 0..i {
                sum -= self.lu[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorised matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.permutation_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Computes the inverse of the factorised matrix column by column.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve`].
    pub fn inverse(&self) -> Result<Matrix, NumericError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

impl Matrix {
    /// Solves `self · x = b` via LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] if the matrix is not square,
    /// [`NumericError::Singular`] if it is singular, or
    /// [`NumericError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector, NumericError> {
        LuDecomposition::new(self)?.solve(b)
    }

    /// Computes the matrix inverse.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Matrix::solve`].
    pub fn inverse(&self) -> Result<Matrix, NumericError> {
        LuDecomposition::new(self)?.inverse()
    }

    /// Computes the determinant via LU factorisation.
    ///
    /// Returns 0 if the matrix is singular to working precision.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotSquare`] if the matrix is not square.
    pub fn determinant(&self) -> Result<f64, NumericError> {
        if !self.is_square() {
            return Err(NumericError::NotSquare {
                rows: self.rows(),
                cols: self.cols(),
            });
        }
        match LuDecomposition::new(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(NumericError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[3.0, 2.0], &[1.0, 4.0]]).unwrap();
        let b = Vector::from_slice(&[7.0, 9.0]);
        let x = a.solve(&b).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the first diagonal entry forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Vector::from_slice(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(NumericError::Singular)
        ));
        assert_eq!(a.determinant().unwrap(), 0.0);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.determinant(),
            Err(NumericError::NotSquare { .. })
        ));
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]).unwrap();
        assert_close(a.determinant().unwrap(), -3.0, 1e-10);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 9.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        let diff = prod.sub(&Matrix::identity(3)).unwrap();
        assert!(diff.max_abs() < 1e-10);
    }

    #[test]
    fn solve_4x4_thermal_like_system() {
        // Diagonally dominant system resembling a thermal conductance matrix.
        let a = Matrix::from_rows(&[
            &[10.0, -1.0, -0.5, -0.2],
            &[-1.0, 9.0, -1.2, -0.3],
            &[-0.5, -1.2, 11.0, -0.8],
            &[-0.2, -0.3, -0.8, 8.0],
        ])
        .unwrap();
        let x_true = Vector::from_slice(&[1.0, -2.0, 0.5, 3.0]);
        let b = a.mul_vector(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for i in 0..4 {
            assert_close(x[i], x_true[i], 1e-10);
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let b = Vector::from_slice(&[1.0, 2.0]);
        assert!(a.solve(&b).is_err());
    }
}

//! Property-based tests for the numerical substrate.

use numeric::{lstsq, ridge_lstsq, stats, Matrix, Summary, Table1d, Vector};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-1.0e3..1.0e3f64).prop_filter("finite", |v| v.is_finite())
}

fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_f64(), n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("dims match"))
}

fn vector(n: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(small_f64(), n).prop_map(Vector::from)
}

proptest! {
    #[test]
    fn transpose_is_involution(m in square_matrix(4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matrix_addition_commutes(a in square_matrix(3), b in square_matrix(3)) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.sub(&ba).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn identity_is_multiplicative_neutral(m in square_matrix(4)) {
        let i = Matrix::identity(4);
        let left = i.mul(&m).unwrap();
        let right = m.mul(&i).unwrap();
        prop_assert!(left.sub(&m).unwrap().max_abs() < 1e-12);
        prop_assert!(right.sub(&m).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn solve_round_trips_diagonally_dominant(
        offdiag in prop::collection::vec(-0.9..0.9f64, 12),
        x in vector(4),
    ) {
        // Build a diagonally dominant (hence nonsingular) 4x4 matrix.
        let mut a = Matrix::identity(4).scale(5.0);
        let mut k = 0;
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    a[(i, j)] = offdiag[k];
                    k += 1;
                }
            }
        }
        let b = a.mul_vector(&x).unwrap();
        let solved = a.solve(&b).unwrap();
        for i in 0..4 {
            prop_assert!((solved[i] - x[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity(
        offdiag in prop::collection::vec(-0.9..0.9f64, 12),
    ) {
        let mut a = Matrix::identity(4).scale(4.0);
        let mut k = 0;
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    a[(i, j)] = offdiag[k];
                    k += 1;
                }
            }
        }
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        prop_assert!(prod.sub(&Matrix::identity(4)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn lstsq_recovers_exact_linear_model(
        theta in vector(3),
        xs in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 3), 20..60),
    ) {
        let rows: Vec<&[f64]> = xs.iter().map(|r| r.as_slice()).collect();
        let phi = Matrix::from_rows(&rows).unwrap();
        let y = phi.mul_vector(&theta).unwrap();
        match lstsq(&phi, &y) {
            Ok(est) => {
                let reproduced = phi.mul_vector(&est).unwrap();
                for i in 0..y.len() {
                    prop_assert!((reproduced[i] - y[i]).abs() < 1e-5);
                }
            }
            // Random regressors can be (near-)collinear; ridge must then succeed.
            Err(_) => {
                let est = ridge_lstsq(&phi, &y, 1e-6).unwrap();
                prop_assert!(est.is_finite());
            }
        }
    }

    #[test]
    fn summary_bounds_are_consistent(samples in prop::collection::vec(-1e3..1e3f64, 1..200)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
        prop_assert!((s.std_dev * s.std_dev - s.variance).abs() < 1e-6);
        prop_assert!(s.range() >= 0.0);
    }

    #[test]
    fn rmse_is_zero_iff_series_equal(samples in prop::collection::vec(-1e3..1e3f64, 1..50)) {
        prop_assert_eq!(stats::rmse(&samples, &samples), 0.0);
    }

    #[test]
    fn fit_percentage_of_self_is_100(samples in prop::collection::vec(-1e3..1e3f64, 2..50)) {
        prop_assert!((stats::fit_percentage(&samples, &samples) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_stays_within_hull(
        ys in prop::collection::vec(-100.0..100.0f64, 2..10),
        t in 0.0..1.0f64,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let table = Table1d::new(xs.clone(), ys.clone()).unwrap();
        let x = t * (ys.len() - 1) as f64;
        let y = table.lookup(x).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }
}

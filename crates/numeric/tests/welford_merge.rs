//! Property-based tests for the parallel Welford merge (Chan et al.), the
//! primitive behind deterministic shard-merge in campaign aggregation:
//! exact commutativity (via the fp-stable operand ordering rule),
//! associativity up to floating-point rounding, and merge-of-splits
//! agreeing with a sequential feed of the concatenated stream.

use numeric::stats::Welford;
use proptest::prelude::*;

fn samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (-1.0e4..1.0e4f64).prop_filter("finite", |v| v.is_finite()),
        max_len,
    )
}

fn fold(samples: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &x in samples {
        w.push(x);
    }
    w
}

/// Relative-or-absolute closeness at the numerical-noise bar.
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #[test]
    fn merge_is_exactly_commutative(a in samples(40), b in samples(25)) {
        let (wa, wb) = (fold(&a), fold(&b));
        // Bit-identical, not merely close: the ordering rule canonicalises
        // the operand pair before the asymmetric combination formula runs.
        prop_assert_eq!(wa.merge(&wb), wb.merge(&wa));
    }

    #[test]
    fn merge_is_associative_up_to_rounding(
        a in samples(30),
        b in samples(20),
        c in samples(35),
    ) {
        let (wa, wb, wc) = (fold(&a), fold(&b), fold(&c));
        let left = wa.merge(&wb).merge(&wc);
        let right = wa.merge(&wb.merge(&wc));
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min(), "min folds exactly");
        prop_assert_eq!(left.max(), right.max(), "max folds exactly");
        prop_assert!(close(left.mean(), right.mean(), 1e-10),
            "mean {} vs {}", left.mean(), right.mean());
        prop_assert!(close(left.variance(), right.variance(), 1e-7),
            "variance {} vs {}", left.variance(), right.variance());
    }

    #[test]
    fn merge_of_splits_matches_sequential_feed(
        stream in samples(60),
        split_a in 0..61usize,
        split_b in 0..61usize,
    ) {
        // Split the stream at two arbitrary points into three shards; the
        // shard merge must agree with feeding the whole stream to one
        // accumulator.
        let (lo, hi) = (split_a.min(split_b), split_a.max(split_b));
        let whole = fold(&stream);
        let merged = fold(&stream[..lo])
            .merge(&fold(&stream[lo..hi]))
            .merge(&fold(&stream[hi..]));
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min(), "min is exact");
        prop_assert_eq!(merged.max(), whole.max(), "max is exact");
        prop_assert!(close(merged.mean(), whole.mean(), 1e-10),
            "mean {} vs {}", merged.mean(), whole.mean());
        prop_assert!(close(merged.variance(), whole.variance(), 1e-7),
            "variance {} vs {}", merged.variance(), whole.variance());
    }

    #[test]
    fn empty_is_a_two_sided_identity(a in samples(30)) {
        let w = fold(&a);
        prop_assert_eq!(w.merge(&Welford::new()), w);
        prop_assert_eq!(Welford::new().merge(&w), w);
    }
}

//! Equivalence and invariant tests for the SIMD panel-kernel dispatch.
//!
//! The contract (see the `numeric::simd` docs): every dispatch arm produces
//! bit-identical lanes — in the default build because all arms perform the
//! same unfused per-lane operation sequence, and under the `fma` feature
//! because all arms fuse identically. These tests therefore compare arms with
//! `to_bits` equality in *both* builds; only comparisons against external
//! (libm-based) references need feature-dependent bounds, and none of those
//! live here.

use numeric::simd::{fused_mul_add_span_with, PanelKernel};
use numeric::{affine_pair_apply_with, Matrix, Panel, LANE_CHUNK, PANEL_ALIGN};
use proptest::prelude::*;

fn coeff() -> impl Strategy<Value = f64> {
    (-3.0..3.0f64).prop_filter("finite", |v| v.is_finite())
}

fn state() -> impl Strategy<Value = f64> {
    (-100.0..100.0f64).prop_filter("finite", |v| v.is_finite())
}

/// Lane counts straddling the `LANE_CHUNK` boundary: remainder-only panels,
/// exact chunk multiples, and chunk + remainder mixes up to four chunks.
fn lane_counts() -> impl Strategy<Value = usize> {
    1usize..(4 * LANE_CHUNK + 2)
}

fn available_vector_kernels() -> Vec<PanelKernel> {
    [PanelKernel::Avx2Fma, PanelKernel::Neon]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

fn panel_from(rows: usize, lanes: usize, data: &[f64]) -> Panel {
    let mut p = Panel::zeros(rows, lanes);
    p.as_mut_slice().copy_from_slice(&data[..rows * lanes]);
    p
}

fn assert_panels_bit_identical(a: &Panel, b: &Panel, ctx: &str) {
    for (k, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {k}");
    }
}

proptest! {
    #[test]
    fn mul_panel_simd_matches_forced_scalar(
        m in 1usize..13,
        n in 1usize..13,
        lanes in lane_counts(),
        seed in prop::collection::vec(coeff(), 12 * 12),
        xs in prop::collection::vec(state(), 12 * (4 * LANE_CHUNK + 1)),
    ) {
        let a = Matrix::from_vec(m, n, seed[..m * n].to_vec()).unwrap();
        let x = panel_from(n, lanes, &xs);
        let mut scalar = Panel::zeros(m, lanes);
        a.mul_panel_into_with(PanelKernel::Scalar, &x, &mut scalar).unwrap();
        for kernel in available_vector_kernels() {
            let mut wide = Panel::zeros(m, lanes);
            a.mul_panel_into_with(kernel, &x, &mut wide).unwrap();
            assert_panels_bit_identical(
                &wide,
                &scalar,
                &format!("mul {kernel:?} m={m} n={n} lanes={lanes}"),
            );
        }
    }

    #[test]
    fn affine_pair_simd_matches_forced_scalar(
        m in 1usize..13,
        lanes in lane_counts(),
        a_seed in prop::collection::vec(coeff(), 12 * 12),
        b_seed in prop::collection::vec(coeff(), 12 * 12),
        bias in prop::collection::vec(state(), 12),
        xs in prop::collection::vec(state(), 12 * (4 * LANE_CHUNK + 1)),
        ys in prop::collection::vec(state(), 12 * (4 * LANE_CHUNK + 1)),
    ) {
        // The affine-pair kernel requires square-compatible shapes (n == m
        // panels rows); exercise the biased form, which covers the unbiased
        // code path too (bias handling is the only difference).
        let n = m;
        let a = Matrix::from_vec(m, n, a_seed[..m * n].to_vec()).unwrap();
        let b = Matrix::from_vec(m, n, b_seed[..m * n].to_vec()).unwrap();
        let x = panel_from(n, lanes, &xs);
        let y = panel_from(n, lanes, &ys);
        let mut scalar = Panel::zeros(m, lanes);
        affine_pair_apply_with(
            PanelKernel::Scalar, &a, &b, &bias[..m], &x, &y, &mut scalar,
        ).unwrap();
        for kernel in available_vector_kernels() {
            let mut wide = Panel::zeros(m, lanes);
            affine_pair_apply_with(kernel, &a, &b, &bias[..m], &x, &y, &mut wide).unwrap();
            assert_panels_bit_identical(
                &wide,
                &scalar,
                &format!("affine {kernel:?} m={m} lanes={lanes}"),
            );
        }
    }

    #[test]
    fn fused_span_simd_matches_forced_scalar(
        len in 1usize..71,
        base in prop::collection::vec(state(), 70),
        coef_v in prop::collection::vec(coeff(), 70),
        cur in prop::collection::vec(state(), 70),
    ) {
        let mut scalar = vec![0.0; len];
        fused_mul_add_span_with(
            PanelKernel::Scalar, &base[..len], &coef_v[..len], &cur[..len], &mut scalar,
        );
        for kernel in available_vector_kernels() {
            let mut wide = vec![0.0; len];
            fused_mul_add_span_with(
                kernel, &base[..len], &coef_v[..len], &cur[..len], &mut wide,
            );
            for (k, (s, w)) in scalar.iter().zip(&wide).enumerate() {
                assert_eq!(s.to_bits(), w.to_bits(), "{kernel:?} len={len} k={k}");
            }
        }
    }
}

/// Alignment regression: every construction path (fresh zeros at any lane
/// count, clones of written panels) must land on `PANEL_ALIGN`-byte storage.
#[test]
fn panels_are_aligned_at_every_lane_count() {
    for lanes in 1..=33 {
        for rows in [1, 3, 8] {
            let mut p = Panel::zeros(rows, lanes);
            assert_eq!(
                p.as_slice().as_ptr() as usize % PANEL_ALIGN,
                0,
                "zeros rows={rows} lanes={lanes}"
            );
            for i in 0..rows {
                for l in 0..lanes {
                    p.set(i, l, (i * lanes + l) as f64);
                }
            }
            let twin = p.clone();
            assert_eq!(
                twin.as_slice().as_ptr() as usize % PANEL_ALIGN,
                0,
                "clone rows={rows} lanes={lanes}"
            );
            assert_eq!(twin, p);
        }
    }
}

#[test]
fn active_kernel_is_available_and_detect_prefers_vector_units() {
    let active = PanelKernel::active();
    assert!(active.is_available());
    let detected = PanelKernel::detect();
    assert!(detected.is_available());
    // If any vector arm is available, auto-detection must not settle for
    // scalar.
    if !available_vector_kernels().is_empty() {
        assert_ne!(detected, PanelKernel::Scalar);
    }
}

//! Instantaneous resource demand of a running workload.

use serde::{Deserialize, Serialize};

/// What the running workload asks of the platform during one control interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Number of parallel CPU work streams currently runnable (including the
    /// background load). A value of 2.5 means two fully busy cores plus one
    /// half-busy core's worth of work.
    pub cpu_streams: f64,
    /// Switching-activity factor of the executing code, 0..1.
    pub activity_factor: f64,
    /// GPU utilisation, 0..1.
    pub gpu_utilization: f64,
    /// Memory-subsystem intensity, 0..1.
    pub memory_intensity: f64,
    /// How strongly progress scales with CPU frequency, 0..1: 1 means fully
    /// compute bound (halving the clock halves the progress rate), 0 means
    /// fully memory/IO bound (the clock barely matters). Mi-Bench kernels sit
    /// between the two, which is why frequency throttling costs the paper much
    /// less performance than the power it saves.
    pub frequency_scalability: f64,
}

impl Default for Demand {
    fn default() -> Self {
        Demand {
            cpu_streams: 0.0,
            activity_factor: 0.0,
            gpu_utilization: 0.0,
            memory_intensity: 0.0,
            frequency_scalability: 1.0,
        }
    }
}

impl Demand {
    /// A completely idle demand (only meaningful for a finished workload with
    /// no background load).
    pub fn idle() -> Self {
        Demand::default()
    }

    /// Clamps every field to its physical range (streams to `0..=4`,
    /// everything else to `0..=1`).
    pub fn clamped(self) -> Self {
        Demand {
            cpu_streams: self.cpu_streams.clamp(0.0, 4.0),
            activity_factor: self.activity_factor.clamp(0.0, 1.0),
            gpu_utilization: self.gpu_utilization.clamp(0.0, 1.0),
            memory_intensity: self.memory_intensity.clamp(0.0, 1.0),
            frequency_scalability: self.frequency_scalability.clamp(0.0, 1.0),
        }
    }
}

/// The ever-present Android/kernel background load the paper keeps running
/// during all experiments ("all background processes were allowed to run").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundLoad {
    /// Additional CPU work streams contributed by background processes.
    pub cpu_streams: f64,
    /// Activity factor of the background work.
    pub activity_factor: f64,
    /// Memory intensity contributed by background processes.
    pub memory_intensity: f64,
}

impl BackgroundLoad {
    /// The default Android stack background load: a few lightweight services
    /// adding roughly a fifth of a core of low-activity work.
    pub fn android_default() -> Self {
        BackgroundLoad {
            cpu_streams: 0.20,
            activity_factor: 0.25,
            memory_intensity: 0.15,
        }
    }

    /// No background load at all (used by unit tests and the furnace
    /// characterisation, which wants the lightest possible workload).
    pub fn none() -> Self {
        BackgroundLoad {
            cpu_streams: 0.0,
            activity_factor: 0.0,
            memory_intensity: 0.0,
        }
    }

    /// Merges the background load into a foreground demand. Activity factors
    /// combine as a work-weighted average; stream counts add (saturating at
    /// four cores); memory intensities add with clamping.
    pub fn combine(&self, foreground: Demand) -> Demand {
        let total_streams = foreground.cpu_streams + self.cpu_streams;
        let activity = if total_streams > 0.0 {
            (foreground.activity_factor * foreground.cpu_streams
                + self.activity_factor * self.cpu_streams)
                / total_streams
        } else {
            0.0
        };
        Demand {
            cpu_streams: total_streams,
            activity_factor: activity,
            gpu_utilization: foreground.gpu_utilization,
            memory_intensity: foreground.memory_intensity + self.memory_intensity,
            frequency_scalability: foreground.frequency_scalability,
        }
        .clamped()
    }
}

impl Default for BackgroundLoad {
    fn default() -> Self {
        BackgroundLoad::android_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_limits_all_fields() {
        let d = Demand {
            cpu_streams: 9.0,
            activity_factor: 1.5,
            gpu_utilization: -0.2,
            memory_intensity: 2.0,
            frequency_scalability: 1.4,
        }
        .clamped();
        assert_eq!(d.cpu_streams, 4.0);
        assert_eq!(d.activity_factor, 1.0);
        assert_eq!(d.gpu_utilization, 0.0);
        assert_eq!(d.memory_intensity, 1.0);
        assert_eq!(d.frequency_scalability, 1.0);
    }

    #[test]
    fn background_combination_adds_streams() {
        let bg = BackgroundLoad::android_default();
        let fg = Demand {
            cpu_streams: 1.0,
            activity_factor: 0.8,
            gpu_utilization: 0.3,
            memory_intensity: 0.4,
            frequency_scalability: 0.7,
        };
        let combined = bg.combine(fg);
        assert!((combined.cpu_streams - 1.2).abs() < 1e-12);
        // Weighted activity sits between the background's and the foreground's.
        assert!(combined.activity_factor < 0.8 && combined.activity_factor > 0.25);
        assert_eq!(combined.gpu_utilization, 0.3);
        assert!((combined.memory_intensity - 0.55).abs() < 1e-12);
        assert_eq!(combined.frequency_scalability, 0.7);
    }

    #[test]
    fn no_background_is_identity() {
        let fg = Demand {
            cpu_streams: 2.0,
            activity_factor: 0.7,
            gpu_utilization: 0.1,
            memory_intensity: 0.2,
            frequency_scalability: 0.9,
        };
        let combined = BackgroundLoad::none().combine(fg);
        assert_eq!(combined, fg.clamped());
    }

    #[test]
    fn idle_foreground_with_background_keeps_background_activity() {
        let combined = BackgroundLoad::android_default().combine(Demand::idle());
        assert!((combined.cpu_streams - 0.2).abs() < 1e-12);
        assert!((combined.activity_factor - 0.25).abs() < 1e-12);
    }
}

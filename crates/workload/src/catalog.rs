//! The benchmark catalogue (Table 6.4) and per-benchmark work profiles.

use serde::{Deserialize, Serialize};

/// Relative CPU power intensity category used by the paper to group results
/// (low / medium / high activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkCategory {
    /// Light activity; the temperature barely approaches the constraint.
    Low,
    /// Moderate activity; occasional thermal throttling.
    Medium,
    /// Heavy activity; sustained operation near or above the constraint.
    High,
}

impl std::fmt::Display for BenchmarkCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkCategory::Low => write!(f, "low"),
            BenchmarkCategory::Medium => write!(f, "medium"),
            BenchmarkCategory::High => write!(f, "high"),
        }
    }
}

/// Benchmark families used in Table 6.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkType {
    /// Encryption / hashing kernels (Blowfish, SHA).
    Security,
    /// Network kernels (Dijkstra, Patricia).
    Network,
    /// Computational kernels (Basicmath, matrix multiplication, Bitcount, Qsort).
    Computational,
    /// Telecommunication kernels (CRC32, GSM, FFT).
    Telecomm,
    /// Consumer-device codecs (JPEG).
    Consumer,
    /// Android games (Angry Birds, Temple Run).
    Games,
    /// Video playback (YouTube).
    Video,
    /// Explicitly multi-threaded kernels used for Figure 6.10 (FFT, LU).
    MultiThreaded,
}

/// Identifier of every benchmark used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BenchmarkId {
    Blowfish,
    Sha,
    Dijkstra,
    Patricia,
    Basicmath,
    MatrixMult,
    Bitcount,
    Qsort,
    Crc32,
    Gsm,
    Fft,
    Jpeg,
    AngryBirds,
    Templerun,
    Youtube,
    FftMt,
    LuMt,
}

impl BenchmarkId {
    /// The 15 benchmarks of Table 6.4, in the order they appear in the paper.
    pub const PAPER_SET: [BenchmarkId; 15] = [
        BenchmarkId::Blowfish,
        BenchmarkId::Sha,
        BenchmarkId::Dijkstra,
        BenchmarkId::Patricia,
        BenchmarkId::Basicmath,
        BenchmarkId::MatrixMult,
        BenchmarkId::Bitcount,
        BenchmarkId::Qsort,
        BenchmarkId::Crc32,
        BenchmarkId::Gsm,
        BenchmarkId::Fft,
        BenchmarkId::Jpeg,
        BenchmarkId::AngryBirds,
        BenchmarkId::Templerun,
        BenchmarkId::Youtube,
    ];

    /// The multi-threaded benchmarks of Figure 6.10.
    pub const MULTI_THREADED_SET: [BenchmarkId; 2] = [BenchmarkId::FftMt, BenchmarkId::LuMt];

    /// Every modelled benchmark.
    pub const ALL: [BenchmarkId; 17] = [
        BenchmarkId::Blowfish,
        BenchmarkId::Sha,
        BenchmarkId::Dijkstra,
        BenchmarkId::Patricia,
        BenchmarkId::Basicmath,
        BenchmarkId::MatrixMult,
        BenchmarkId::Bitcount,
        BenchmarkId::Qsort,
        BenchmarkId::Crc32,
        BenchmarkId::Gsm,
        BenchmarkId::Fft,
        BenchmarkId::Jpeg,
        BenchmarkId::AngryBirds,
        BenchmarkId::Templerun,
        BenchmarkId::Youtube,
        BenchmarkId::FftMt,
        BenchmarkId::LuMt,
    ];

    /// Iterator over every modelled benchmark (the 15 of Table 6.4 plus the
    /// two explicitly multi-threaded kernels of Figure 6.10), in
    /// [`BenchmarkId::ALL`] order. This is the benchmark axis of evaluation
    /// grids; use [`BenchmarkId::paper_set`] for the paper's 15-benchmark
    /// sweep specifically.
    pub fn all() -> impl Iterator<Item = BenchmarkId> + Clone {
        BenchmarkId::ALL.into_iter()
    }

    /// Iterator over the paper's 15-benchmark evaluation set (Table 6.4), in
    /// paper order.
    pub fn paper_set() -> impl Iterator<Item = BenchmarkId> + Clone {
        BenchmarkId::PAPER_SET.into_iter()
    }

    /// Short lowercase name used in logs and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Blowfish => "blowfish",
            BenchmarkId::Sha => "sha",
            BenchmarkId::Dijkstra => "dijkstra",
            BenchmarkId::Patricia => "patricia",
            BenchmarkId::Basicmath => "basicmath",
            BenchmarkId::MatrixMult => "matrix-mult",
            BenchmarkId::Bitcount => "bitcount",
            BenchmarkId::Qsort => "qsort",
            BenchmarkId::Crc32 => "crc32",
            BenchmarkId::Gsm => "gsm",
            BenchmarkId::Fft => "fft",
            BenchmarkId::Jpeg => "jpeg",
            BenchmarkId::AngryBirds => "angry-birds",
            BenchmarkId::Templerun => "templerun",
            BenchmarkId::Youtube => "youtube",
            BenchmarkId::FftMt => "fft-mt",
            BenchmarkId::LuMt => "lu-mt",
        }
    }

    /// Looks up a benchmark by its [`BenchmarkId::name`],
    /// ASCII-case-insensitively (`"SHA"`, `"Matrix-Mult"` and
    /// `"matrix-mult"` all resolve).
    pub fn from_name(name: &str) -> Option<BenchmarkId> {
        BenchmarkId::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The full description of this benchmark.
    pub fn spec(self) -> Benchmark {
        Benchmark::of(self)
    }

    /// How strongly the benchmark's progress scales with the CPU clock
    /// frequency (1 = fully compute bound, 0 = fully memory/IO bound). The
    /// values follow the usual Mi-Bench characterisation: the computational
    /// kernels are close to compute bound, while the network/consumer kernels
    /// and the game/video applications spend much of their time waiting on
    /// memory, the GPU or the display pipeline.
    pub fn frequency_scalability(self) -> f64 {
        match self {
            BenchmarkId::Blowfish => 0.60,
            BenchmarkId::Sha => 0.75,
            BenchmarkId::Dijkstra => 0.50,
            BenchmarkId::Patricia => 0.50,
            BenchmarkId::Basicmath => 0.85,
            BenchmarkId::MatrixMult => 0.80,
            BenchmarkId::Bitcount => 0.90,
            BenchmarkId::Qsort => 0.60,
            BenchmarkId::Crc32 => 0.55,
            BenchmarkId::Gsm => 0.75,
            BenchmarkId::Fft => 0.80,
            BenchmarkId::Jpeg => 0.65,
            BenchmarkId::AngryBirds => 0.60,
            BenchmarkId::Templerun => 0.60,
            BenchmarkId::Youtube => 0.40,
            BenchmarkId::FftMt => 0.80,
            BenchmarkId::LuMt => 0.80,
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One execution phase of a benchmark's work profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Amount of CPU work in this phase, in work units (one unit = what one
    /// fully-utilised big core completes per second at 1 GHz).
    pub work_units: f64,
    /// Number of parallel CPU work streams (1.0 = single-threaded; fractions
    /// model partially parallel sections).
    pub cpu_streams: f64,
    /// Switching-activity factor of the code, 0..1 relative to the most
    /// power-hungry kernel (matrix multiplication ≈ 1).
    pub activity_factor: f64,
    /// GPU utilisation during the phase, 0..1.
    pub gpu_utilization: f64,
    /// Memory-subsystem intensity during the phase, 0..1.
    pub memory_intensity: f64,
}

impl Phase {
    /// Convenience constructor.
    pub fn new(
        work_units: f64,
        cpu_streams: f64,
        activity_factor: f64,
        gpu_utilization: f64,
        memory_intensity: f64,
    ) -> Self {
        Phase {
            work_units,
            cpu_streams,
            activity_factor,
            gpu_utilization,
            memory_intensity,
        }
    }
}

/// Static description of one benchmark: its Table 6.4 classification plus the
/// synthetic work profile used by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// Identifier.
    pub id: BenchmarkId,
    /// Benchmark family (Table 6.4 "Types" column).
    pub kind: BenchmarkType,
    /// CPU power category (Table 6.4 "Category" column).
    pub category: BenchmarkCategory,
    /// Whether the benchmark makes significant use of the GPU.
    pub uses_gpu: bool,
    /// Number of application threads (excluding background processes).
    pub thread_count: usize,
    /// Work phases executed in order.
    pub phases: Vec<Phase>,
}

impl Benchmark {
    /// The description of the given benchmark.
    pub fn of(id: BenchmarkId) -> Benchmark {
        use BenchmarkCategory as Cat;
        use BenchmarkId as Id;
        use BenchmarkType as Ty;
        // One work unit = one fully-utilised big core for one second at 1 GHz,
        // so a single-threaded phase of W units takes W / 1.6 seconds at
        // 1.6 GHz. Profiles are sized for nominal (unthrottled) executions of
        // roughly 60-300 s, matching the paper's plots.
        match id {
            Id::Blowfish => Benchmark {
                id,
                kind: Ty::Security,
                category: Cat::Low,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(140.0, 1.1, 0.52, 0.0, 0.30),
                    Phase::new(160.0, 1.1, 0.56, 0.0, 0.35),
                    Phase::new(140.0, 1.1, 0.52, 0.0, 0.30),
                ],
            },
            Id::Sha => Benchmark {
                id,
                kind: Ty::Security,
                category: Cat::Medium,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(120.0, 1.6, 0.72, 0.0, 0.30),
                    Phase::new(140.0, 1.6, 0.75, 0.0, 0.35),
                ],
            },
            Id::Dijkstra => Benchmark {
                id,
                kind: Ty::Network,
                category: Cat::Low,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(60.0, 1.2, 0.55, 0.0, 0.45),
                    Phase::new(50.0, 1.2, 0.58, 0.0, 0.50),
                ],
            },
            Id::Patricia => Benchmark {
                id,
                kind: Ty::Network,
                category: Cat::Medium,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(180.0, 1.9, 0.72, 0.0, 0.50),
                    Phase::new(220.0, 2.0, 0.75, 0.0, 0.55),
                    Phase::new(140.0, 1.8, 0.70, 0.0, 0.50),
                ],
            },
            Id::Basicmath => Benchmark {
                id,
                kind: Ty::Computational,
                category: Cat::High,
                uses_gpu: false,
                thread_count: 2,
                phases: vec![
                    Phase::new(220.0, 2.3, 0.88, 0.0, 0.30),
                    Phase::new(260.0, 2.5, 0.92, 0.0, 0.35),
                    Phase::new(180.0, 2.3, 0.88, 0.0, 0.30),
                ],
            },
            Id::MatrixMult => Benchmark {
                id,
                kind: Ty::Computational,
                category: Cat::High,
                uses_gpu: false,
                thread_count: 4,
                phases: vec![
                    Phase::new(120.0, 3.6, 0.95, 0.0, 0.50),
                    Phase::new(160.0, 3.8, 1.00, 0.0, 0.55),
                    Phase::new(100.0, 3.6, 0.95, 0.0, 0.50),
                ],
            },
            Id::Bitcount => Benchmark {
                id,
                kind: Ty::Computational,
                category: Cat::Medium,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(150.0, 1.5, 0.75, 0.0, 0.20),
                    Phase::new(150.0, 1.5, 0.78, 0.0, 0.20),
                ],
            },
            Id::Qsort => Benchmark {
                id,
                kind: Ty::Computational,
                category: Cat::Medium,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(130.0, 1.7, 0.72, 0.0, 0.45),
                    Phase::new(150.0, 1.7, 0.75, 0.0, 0.50),
                ],
            },
            Id::Crc32 => Benchmark {
                id,
                kind: Ty::Telecomm,
                category: Cat::Low,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(90.0, 1.1, 0.52, 0.0, 0.40),
                    Phase::new(90.0, 1.1, 0.54, 0.0, 0.40),
                ],
            },
            Id::Gsm => Benchmark {
                id,
                kind: Ty::Telecomm,
                category: Cat::Medium,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(160.0, 1.6, 0.72, 0.0, 0.35),
                    Phase::new(180.0, 1.7, 0.75, 0.0, 0.35),
                ],
            },
            Id::Fft => Benchmark {
                id,
                kind: Ty::Telecomm,
                category: Cat::High,
                uses_gpu: false,
                thread_count: 2,
                phases: vec![
                    Phase::new(200.0, 1.9, 0.78, 0.0, 0.45),
                    Phase::new(220.0, 2.0, 0.85, 0.0, 0.50),
                ],
            },
            Id::Jpeg => Benchmark {
                id,
                kind: Ty::Consumer,
                category: Cat::Medium,
                uses_gpu: false,
                thread_count: 1,
                phases: vec![
                    Phase::new(140.0, 1.7, 0.72, 0.05, 0.50),
                    Phase::new(160.0, 1.8, 0.76, 0.05, 0.55),
                ],
            },
            Id::AngryBirds => Benchmark {
                id,
                kind: Ty::Games,
                category: Cat::High,
                uses_gpu: true,
                thread_count: 3,
                // The paper runs matrix multiplication in the background while
                // gaming to overload the CPU, hence the high stream counts.
                phases: vec![
                    Phase::new(180.0, 2.8, 0.80, 0.55, 0.50),
                    Phase::new(220.0, 3.0, 0.85, 0.65, 0.55),
                    Phase::new(160.0, 2.8, 0.80, 0.55, 0.50),
                ],
            },
            Id::Templerun => Benchmark {
                id,
                kind: Ty::Games,
                category: Cat::High,
                uses_gpu: true,
                thread_count: 3,
                phases: vec![
                    Phase::new(150.0, 3.0, 0.85, 0.60, 0.55),
                    Phase::new(200.0, 3.2, 0.90, 0.75, 0.60),
                    Phase::new(150.0, 3.0, 0.85, 0.60, 0.55),
                ],
            },
            Id::Youtube => Benchmark {
                id,
                kind: Ty::Video,
                category: Cat::Low,
                uses_gpu: true,
                thread_count: 2,
                phases: vec![
                    Phase::new(120.0, 1.2, 0.48, 0.30, 0.45),
                    Phase::new(140.0, 1.2, 0.52, 0.35, 0.45),
                ],
            },
            Id::FftMt => Benchmark {
                id,
                kind: Ty::MultiThreaded,
                category: Cat::High,
                uses_gpu: false,
                thread_count: 4,
                phases: vec![
                    Phase::new(200.0, 3.6, 0.82, 0.0, 0.50),
                    Phase::new(240.0, 3.8, 0.88, 0.0, 0.55),
                ],
            },
            Id::LuMt => Benchmark {
                id,
                kind: Ty::MultiThreaded,
                category: Cat::High,
                uses_gpu: false,
                thread_count: 4,
                phases: vec![
                    Phase::new(220.0, 3.7, 0.90, 0.0, 0.55),
                    Phase::new(240.0, 3.8, 0.94, 0.0, 0.60),
                ],
            },
        }
    }

    /// Total CPU work across all phases, in work units.
    pub fn total_work_units(&self) -> f64 {
        self.phases.iter().map(|p| p.work_units).sum()
    }

    /// Approximate execution time at the maximum big-cluster performance
    /// (all streams on big cores at 1.6 GHz), in seconds. Used to sanity-check
    /// the profiles against the run lengths shown in the paper's figures.
    pub fn nominal_duration_s(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.work_units / (1.6 * p.cpu_streams.min(4.0)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_fifteen_benchmarks() {
        assert_eq!(BenchmarkId::PAPER_SET.len(), 15);
        assert_eq!(BenchmarkId::ALL.len(), 17);
        assert_eq!(BenchmarkId::MULTI_THREADED_SET.len(), 2);
    }

    #[test]
    fn names_are_unique_and_round_trip() {
        let mut names: Vec<&str> = BenchmarkId::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BenchmarkId::ALL.len());
        for id in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::from_name(id.name()), Some(id));
        }
        assert_eq!(BenchmarkId::from_name("no-such-benchmark"), None);
    }

    #[test]
    fn iterators_cover_the_catalogue_in_order() {
        let all: Vec<BenchmarkId> = BenchmarkId::all().collect();
        assert_eq!(all, BenchmarkId::ALL.to_vec());
        let paper: Vec<BenchmarkId> = BenchmarkId::paper_set().collect();
        assert_eq!(paper, BenchmarkId::PAPER_SET.to_vec());
        assert_eq!(paper.len(), 15);
        // Every paper benchmark is in the full iterator.
        for id in BenchmarkId::paper_set() {
            assert!(BenchmarkId::all().any(|b| b == id), "{id} missing");
        }
    }

    #[test]
    fn from_name_is_case_insensitive() {
        assert_eq!(
            BenchmarkId::from_name("BLOWFISH"),
            Some(BenchmarkId::Blowfish)
        );
        assert_eq!(
            BenchmarkId::from_name("Matrix-Mult"),
            Some(BenchmarkId::MatrixMult)
        );
        assert_eq!(
            BenchmarkId::from_name("TempleRun"),
            Some(BenchmarkId::Templerun)
        );
        for id in BenchmarkId::all() {
            assert_eq!(
                BenchmarkId::from_name(&id.name().to_ascii_uppercase()),
                Some(id)
            );
        }
        assert_eq!(BenchmarkId::from_name("NO-SUCH-BENCHMARK"), None);
    }

    #[test]
    fn table_6_4_categories_match_the_paper() {
        use BenchmarkCategory::*;
        assert_eq!(BenchmarkId::Blowfish.spec().category, Low);
        assert_eq!(BenchmarkId::Dijkstra.spec().category, Low);
        assert_eq!(BenchmarkId::Crc32.spec().category, Low);
        assert_eq!(BenchmarkId::Youtube.spec().category, Low);
        assert_eq!(BenchmarkId::Patricia.spec().category, Medium);
        assert_eq!(BenchmarkId::Jpeg.spec().category, Medium);
        assert_eq!(BenchmarkId::Basicmath.spec().category, High);
        assert_eq!(BenchmarkId::MatrixMult.spec().category, High);
        assert_eq!(BenchmarkId::Templerun.spec().category, High);
        assert_eq!(BenchmarkId::AngryBirds.spec().category, High);
    }

    #[test]
    fn games_and_video_use_the_gpu() {
        for id in [
            BenchmarkId::Templerun,
            BenchmarkId::AngryBirds,
            BenchmarkId::Youtube,
        ] {
            assert!(id.spec().uses_gpu, "{id} should use the GPU");
        }
        for id in [
            BenchmarkId::Blowfish,
            BenchmarkId::MatrixMult,
            BenchmarkId::Fft,
        ] {
            assert!(!id.spec().uses_gpu, "{id} should not use the GPU");
        }
    }

    #[test]
    fn profiles_are_physically_sensible() {
        for id in BenchmarkId::ALL {
            let spec = id.spec();
            assert!(!spec.phases.is_empty(), "{id} has no phases");
            for phase in &spec.phases {
                assert!(phase.work_units > 0.0, "{id} phase with no work");
                assert!(
                    phase.cpu_streams > 0.0 && phase.cpu_streams <= 4.0,
                    "{id} streams"
                );
                assert!(
                    (0.0..=1.0).contains(&phase.activity_factor),
                    "{id} activity factor"
                );
                assert!((0.0..=1.0).contains(&phase.gpu_utilization), "{id} gpu");
                assert!((0.0..=1.0).contains(&phase.memory_intensity), "{id} memory");
            }
            assert!(spec.thread_count >= 1 && spec.thread_count <= 4);
        }
    }

    #[test]
    fn nominal_durations_match_the_papers_run_lengths() {
        // The figures show runs between roughly one and five minutes.
        for id in BenchmarkId::ALL {
            let d = id.spec().nominal_duration_s();
            assert!(
                (40.0..=400.0).contains(&d),
                "{id} nominal duration {d:.0} s out of range"
            );
        }
    }

    #[test]
    fn high_category_benchmarks_have_higher_activity_than_low() {
        let avg_activity = |id: BenchmarkId| {
            let spec = id.spec();
            let total: f64 = spec.phases.iter().map(|p| p.work_units).sum();
            spec.phases
                .iter()
                .map(|p| p.activity_factor * p.work_units / total)
                .sum::<f64>()
        };
        assert!(avg_activity(BenchmarkId::MatrixMult) > avg_activity(BenchmarkId::Patricia));
        assert!(avg_activity(BenchmarkId::Patricia) > avg_activity(BenchmarkId::Dijkstra));
    }

    #[test]
    fn display_and_category_strings() {
        assert_eq!(BenchmarkId::MatrixMult.to_string(), "matrix-mult");
        assert_eq!(BenchmarkCategory::High.to_string(), "high");
        assert_eq!(BenchmarkCategory::Low.to_string(), "low");
    }
}

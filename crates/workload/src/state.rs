//! Run-time state of an executing workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::catalog::{Benchmark, BenchmarkId};
use crate::demand::{BackgroundLoad, Demand};

/// Tracks how far a benchmark has progressed through its work profile.
///
/// The simulator queries [`WorkloadState::demand`] every control interval,
/// computes how much work the platform completed given the current frequency
/// and core configuration, and reports it back via [`WorkloadState::advance`].
/// Execution time is therefore an *output* of the simulation — throttling the
/// platform stretches the run exactly as it would on hardware, which is how
/// the paper measures performance loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadState {
    benchmark: Benchmark,
    background: BackgroundLoad,
    completed_work: f64,
    /// Per-tick multiplicative jitter applied to the demand, emulating the
    /// natural variability of real applications.
    jitter_amplitude: f64,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

// Only referenced from the `#[serde(default = "default_rng")]` attribute.
#[allow(dead_code)]
fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl WorkloadState {
    /// Starts the given benchmark with the default Android background load.
    pub fn new(id: BenchmarkId, seed: u64) -> Self {
        WorkloadState::with_background(id, seed, BackgroundLoad::android_default())
    }

    /// Starts the given benchmark with an explicit background load.
    pub fn with_background(id: BenchmarkId, seed: u64, background: BackgroundLoad) -> Self {
        WorkloadState {
            benchmark: id.spec(),
            background,
            completed_work: 0.0,
            jitter_amplitude: 0.06,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The benchmark being executed.
    pub fn benchmark(&self) -> &Benchmark {
        &self.benchmark
    }

    /// Total work of the benchmark, in work units.
    pub fn total_work_units(&self) -> f64 {
        self.benchmark.total_work_units()
    }

    /// Work completed so far, in work units.
    pub fn completed_work_units(&self) -> f64 {
        self.completed_work
    }

    /// Progress through the benchmark, 0..1.
    pub fn progress(&self) -> f64 {
        (self.completed_work / self.total_work_units()).clamp(0.0, 1.0)
    }

    /// Returns `true` once all work has been completed.
    pub fn is_complete(&self) -> bool {
        self.completed_work >= self.total_work_units()
    }

    /// The phase currently executing (the last phase once complete).
    fn current_phase_index(&self) -> usize {
        let mut boundary = 0.0;
        for (i, phase) in self.benchmark.phases.iter().enumerate() {
            boundary += phase.work_units;
            if self.completed_work < boundary {
                return i;
            }
        }
        self.benchmark.phases.len() - 1
    }

    /// The resource demand for the current control interval, including the
    /// background load and a small amount of seeded random jitter.
    ///
    /// Once the benchmark has completed, only the background load remains.
    pub fn demand(&mut self) -> Demand {
        if self.is_complete() {
            return self.background.combine(Demand::idle());
        }
        let phase = &self.benchmark.phases[self.current_phase_index()];
        let jitter = |rng: &mut StdRng, amplitude: f64| 1.0 + rng.gen_range(-amplitude..amplitude);
        let foreground = Demand {
            cpu_streams: phase.cpu_streams * jitter(&mut self.rng, self.jitter_amplitude),
            activity_factor: phase.activity_factor * jitter(&mut self.rng, self.jitter_amplitude),
            gpu_utilization: if phase.gpu_utilization > 0.0 {
                (phase.gpu_utilization * jitter(&mut self.rng, self.jitter_amplitude)).min(1.0)
            } else {
                0.0
            },
            memory_intensity: phase.memory_intensity * jitter(&mut self.rng, self.jitter_amplitude),
            frequency_scalability: self.benchmark.id.frequency_scalability(),
        };
        self.background.combine(foreground.clamped())
    }

    /// Reports that the platform completed `work_units` of CPU work during the
    /// last control interval. Negative amounts are ignored.
    pub fn advance(&mut self, work_units: f64) {
        if work_units > 0.0 {
            self.completed_work += work_units;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_advances_monotonically_to_completion() {
        let mut wl = WorkloadState::new(BenchmarkId::Dijkstra, 1);
        assert_eq!(wl.progress(), 0.0);
        let mut last = 0.0;
        let mut ticks = 0usize;
        while !wl.is_complete() && ticks < 100_000 {
            // One big core at 1.6 GHz fully busy for 100 ms.
            wl.advance(1.6 * 0.1);
            assert!(wl.progress() >= last);
            last = wl.progress();
            ticks += 1;
        }
        assert!(wl.is_complete());
        assert_eq!(wl.progress(), 1.0);
        // Dijkstra has 110 work units: at 0.16 units per tick that is ~690 ticks.
        assert!((600..800).contains(&ticks), "ticks {ticks}");
    }

    #[test]
    fn throttled_execution_takes_longer() {
        let run = |work_per_tick: f64| {
            let mut wl = WorkloadState::new(BenchmarkId::Bitcount, 2);
            let mut ticks = 0usize;
            while !wl.is_complete() && ticks < 1_000_000 {
                wl.advance(work_per_tick);
                ticks += 1;
            }
            ticks
        };
        let full_speed = run(1.6 * 0.1);
        let throttled = run(1.0 * 0.1);
        assert!(throttled as f64 > full_speed as f64 * 1.5);
    }

    #[test]
    fn demand_reflects_phase_profile_with_bounded_jitter() {
        let mut wl = WorkloadState::new(BenchmarkId::MatrixMult, 3);
        for _ in 0..50 {
            let d = wl.demand();
            assert!(
                d.cpu_streams > 3.0 && d.cpu_streams <= 4.0,
                "streams {}",
                d.cpu_streams
            );
            assert!(d.activity_factor > 0.8 && d.activity_factor <= 1.0);
            assert_eq!(d.gpu_utilization, 0.0);
        }
    }

    #[test]
    fn gpu_benchmarks_request_gpu_time() {
        let mut wl = WorkloadState::new(BenchmarkId::Templerun, 4);
        let d = wl.demand();
        assert!(d.gpu_utilization > 0.4);
    }

    #[test]
    fn completed_workload_leaves_only_background() {
        let mut wl = WorkloadState::new(BenchmarkId::Crc32, 5);
        wl.advance(wl.total_work_units() + 1.0);
        assert!(wl.is_complete());
        let d = wl.demand();
        assert!((d.cpu_streams - 0.2).abs() < 1e-9);
        assert_eq!(d.gpu_utilization, 0.0);
    }

    #[test]
    fn negative_advance_is_ignored() {
        let mut wl = WorkloadState::new(BenchmarkId::Sha, 6);
        wl.advance(-10.0);
        assert_eq!(wl.completed_work_units(), 0.0);
    }

    #[test]
    fn phases_are_visited_in_order() {
        let mut wl = WorkloadState::new(BenchmarkId::Patricia, 7);
        let spec = wl.benchmark().clone();
        // Advance into the second phase and check the demand tracks it.
        wl.advance(spec.phases[0].work_units + 1.0);
        let d = wl.demand();
        // Phase 1 of patricia has higher stream count than phase 0.
        assert!(d.cpu_streams > spec.phases[0].cpu_streams - 0.3);
    }

    #[test]
    fn same_seed_gives_identical_demand_sequence() {
        let mut a = WorkloadState::new(BenchmarkId::Gsm, 99);
        let mut b = WorkloadState::new(BenchmarkId::Gsm, 99);
        for _ in 0..20 {
            assert_eq!(a.demand(), b.demand());
            a.advance(0.1);
            b.advance(0.1);
        }
        let mut c = WorkloadState::new(BenchmarkId::Gsm, 100);
        let first_a = WorkloadState::new(BenchmarkId::Gsm, 99).demand();
        assert_ne!(c.demand(), first_a);
    }

    #[test]
    fn no_background_variant_is_lighter() {
        let mut with_bg = WorkloadState::new(BenchmarkId::Blowfish, 8);
        let mut without_bg =
            WorkloadState::with_background(BenchmarkId::Blowfish, 8, BackgroundLoad::none());
        let d_with = with_bg.demand();
        let d_without = without_bg.demand();
        assert!(d_with.cpu_streams > d_without.cpu_streams);
    }
}

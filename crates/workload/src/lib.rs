//! Benchmarks and synthetic workload generation (Table 6.4 of the paper).
//!
//! The paper evaluates 15 benchmarks — eleven from Mi-Bench, two Android
//! games, YouTube video playback and a hand-written multi-threaded matrix
//! multiplication — plus multi-threaded FFT/LU runs for Figure 6.10. The real
//! binaries obviously cannot run inside a simulator, so each benchmark is
//! modelled as a *phase-based work profile*: a sequence of phases, each with a
//! number of parallel CPU work streams, an activity factor (how
//! switching-intensive the code is), and GPU/memory intensities, plus the
//! Android background load that the paper keeps running during every
//! experiment.
//!
//! What matters for DTPM is preserved by this substitution: the controller
//! only ever observes utilisation, power and temperature, and performance is
//! accounted in *work units*, so throttling the frequency lengthens execution
//! time exactly as it would on hardware.
//!
//! # Example
//!
//! ```
//! use workload::{BenchmarkId, WorkloadState};
//!
//! let mut wl = WorkloadState::new(BenchmarkId::MatrixMult, 42);
//! assert!(!wl.is_complete());
//! // Simulate one 100 ms tick worth of progress on four big cores at 1.6 GHz.
//! let demand = wl.demand();
//! assert!(demand.cpu_streams > 1.0, "matrix multiplication is multi-threaded");
//! wl.advance(4.0 * 1.6 * 0.1);
//! assert!(wl.progress() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod demand;
pub mod state;

pub use catalog::{Benchmark, BenchmarkCategory, BenchmarkId, BenchmarkType, Phase};
pub use demand::{BackgroundLoad, Demand};
pub use state::WorkloadState;

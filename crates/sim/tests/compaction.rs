//! Correctness of the lane-compacting sweep scheduler.
//!
//! A [`ScenarioSweep`] recycles engine lanes: when a scenario finishes, its
//! lane is re-initialised and refilled with the next queued scenario, so a
//! ragged mix of short and long scenarios keeps every lane busy. These tests
//! pin down that recycling is invisible in the results: every scenario's
//! outcome lands in input order and matches the same scenario run alone
//! through the scalar [`Experiment`] — to ≤ 1e-9 °C on the trajectory —
//! regardless of thread count, lane width, scenario lengths, or which
//! (possibly recycled) lane a scenario happened to land on.

use platform_sim::{
    Calibration, CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind, FaultKind,
    FaultPlan, FaultWindow, ScenarioSweep, SensorChannel, SimError, SimulationResult,
};
use proptest::prelude::*;
use workload::BenchmarkId;

fn calibration() -> &'static Calibration {
    static CALIBRATION: std::sync::OnceLock<Calibration> = std::sync::OnceLock::new();
    CALIBRATION.get_or_init(|| {
        CalibrationCampaign {
            prbs_duration_s: 120.0,
            run_furnace: false,
            ..CalibrationCampaign::default()
        }
        .run(29)
        .expect("calibration campaign must succeed")
    })
}

/// A ragged scenario: unique seed per slot (so result order is provable),
/// ideal sensors (so trace temperatures are the true plant temperatures and
/// a ≤ 1e-9 °C trajectory comparison is meaningful), duration in seconds.
fn ragged_config(i: usize, duration_s: f64) -> ExperimentConfig {
    let kinds = [
        ExperimentKind::WithoutFan,
        ExperimentKind::DefaultWithFan,
        ExperimentKind::Reactive,
        ExperimentKind::Dtpm,
    ];
    let benchmarks = [
        BenchmarkId::Crc32,
        BenchmarkId::Qsort,
        BenchmarkId::Dijkstra,
    ];
    let mut config =
        ExperimentConfig::new(kinds[i % kinds.len()], benchmarks[i % benchmarks.len()])
            .with_seed(500 + i as u64);
    config.max_duration_s = duration_s;
    config.ideal_sensors = true;
    config
}

/// Asserts that a sweep result matches the scalar run of the same
/// configuration: identical discrete outcome, trajectory within 1e-9 °C.
fn assert_matches_scalar(result: &SimulationResult, label: &str) {
    let scalar = Experiment::new(&result.config, calibration())
        .expect("scalar experiment builds")
        .run()
        .expect("scalar experiment runs");
    assert_eq!(result.completed, scalar.completed, "{label}: completed");
    assert_eq!(
        result.execution_time_s, scalar.execution_time_s,
        "{label}: execution time"
    );
    assert_eq!(
        result.trace.len(),
        scalar.trace.len(),
        "{label}: trace length"
    );
    for (k, (a, b)) in result
        .trace
        .records()
        .iter()
        .zip(scalar.trace.records())
        .enumerate()
    {
        for (x, y) in a.core_temps_c.iter().zip(b.core_temps_c.iter()) {
            assert!(
                (x - y).abs() < 1e-9,
                "{label}: interval {k} core temp diverged: {x} vs {y}"
            );
        }
        assert_eq!(
            a.frequency_mhz, b.frequency_mhz,
            "{label}: interval {k} frequency"
        );
    }
    assert!(
        (result.energy_j - scalar.energy_j).abs() <= 1e-6 * scalar.energy_j.abs().max(1.0),
        "{label}: energy {} vs {}",
        result.energy_j,
        scalar.energy_j
    );
}

proptest! {
    #[test]
    fn ragged_sweeps_match_scalar_runs_for_any_shape(
        threads in 1usize..4,
        lanes in 1usize..5,
        count in 1usize..11,
        short_s in 1.0f64..2.5,
        long_s in 2.5f64..6.0,
    ) {
        // Arbitrary differing lengths: every third scenario is long, the
        // rest short, so any count > lanes·threads forces lane recycling
        // while long lanes are still in flight.
        let configs: Vec<ExperimentConfig> = (0..count)
            .map(|i| ragged_config(i, if i % 3 == 0 { long_s } else { short_s }))
            .collect();
        let results = ScenarioSweep::new(configs.clone())
            .with_threads(threads)
            .with_lanes(lanes)
            .run(calibration());
        prop_assert_eq!(results.len(), configs.len());
        for (i, (config, result)) in configs.iter().zip(&results).enumerate() {
            let result = result.as_ref().expect("sweep run must succeed");
            // Seeds are unique per input slot, so config equality pins order.
            prop_assert_eq!(&result.config, config);
            assert_matches_scalar(
                result,
                &format!("threads={threads} lanes={lanes} count={count} slot={i}"),
            );
        }
    }
}

proptest! {
    /// A faulted lane never perturbs its siblings: whatever fault scenario
    /// lands on one slot of a multi-lane lockstep sweep — a degraded-and-
    /// recovered channel, a runaway reading that walks the ladder to early
    /// shutdown, or a drained lane erroring mid-flight — every other slot's
    /// trajectory still matches its own solo scalar run to ≤ 1e-9 °C, and
    /// the faulted slot itself replays its scalar outcome bit-for-bit
    /// (including its error, for the drained case).
    #[test]
    fn faulted_lanes_never_perturb_their_siblings(
        threads in 1usize..3,
        lanes in 2usize..5,
        count in 3usize..8,
        fault_slot_seed in 0usize..64,
        scenario in 0usize..3,
    ) {
        let fault_slot = fault_slot_seed % count;
        let mut configs: Vec<ExperimentConfig> = (0..count)
            .map(|i| ragged_config(i, if i % 3 == 0 { 4.0 } else { 2.0 }))
            .collect();
        // The faulted slot is always a DTPM lane (the kind with a policy to
        // demote or drain); its siblings keep their ragged mix of kinds.
        configs[fault_slot].kind = ExperimentKind::Dtpm;
        let (plan, drains) = match scenario {
            // Dropped channel long enough to demote the policy, then recover.
            0 => (
                FaultPlan::new(21).with_window(FaultWindow {
                    channel: SensorChannel::CoreTemp(0),
                    kind: FaultKind::Dropped,
                    start_s: 0.3,
                    end_s: 1.3,
                }),
                false,
            ),
            // Runaway (but plausible) reading: ladder shutdown retires the
            // lane early — the raggedest possible lane.
            1 => (
                FaultPlan::new(22).with_window(FaultWindow {
                    channel: SensorChannel::CoreTemp(1),
                    kind: FaultKind::OffsetDrift { initial: 80.0, drift_per_s: 0.0 },
                    start_s: 0.5,
                    end_s: f64::INFINITY,
                }),
                false,
            ),
            // Dropped channel with the fallback disabled: the lane drains
            // with a structured error mid-flight.
            _ => (
                FaultPlan::new(23).with_window(FaultWindow {
                    channel: SensorChannel::CoreTemp(0),
                    kind: FaultKind::Dropped,
                    start_s: 0.3,
                    end_s: f64::INFINITY,
                }),
                true,
            ),
        };
        configs[fault_slot].faults = Some(plan);
        if drains {
            configs[fault_slot].safety.health.degraded_fallback = false;
        }

        let results = ScenarioSweep::new(configs.clone())
            .with_threads(threads)
            .with_lanes(lanes)
            .run(calibration());
        prop_assert_eq!(results.len(), configs.len());
        let label = format!(
            "threads={threads} lanes={lanes} count={count} \
             fault_slot={fault_slot} scenario={scenario}"
        );
        for (i, (config, result)) in configs.iter().zip(&results).enumerate() {
            if i == fault_slot && drains {
                // The drained lane reports the same structured error its
                // solo scalar run does.
                let swept = result.as_ref().expect_err("drained lane must error");
                prop_assert!(
                    matches!(swept, SimError::Sensor(_)),
                    "{} slot {}: expected SimError::Sensor, got {:?}",
                    &label, i, swept
                );
                let solo = Experiment::new(config, calibration())
                    .expect("scalar experiment builds")
                    .run()
                    .expect_err("scalar run of the drained config must error");
                prop_assert_eq!(swept, &solo);
                continue;
            }
            let result = result.as_ref().expect("non-drained run must succeed");
            prop_assert_eq!(&result.config, config);
            assert_matches_scalar(result, &format!("{label} slot={i}"));
        }
    }
}

#[test]
fn recycled_lanes_reproduce_scalar_trajectories() {
    // The canonical ragged mix: one long scenario pins a lane while seven
    // short ones churn through the remaining lanes of a single worker —
    // every short lane after the first two is a recycled (retired →
    // admitted) lane.
    let mut configs = vec![ragged_config(0, 12.0)];
    configs.extend((1..8).map(|i| ragged_config(i, 2.0)));
    let results = ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_lanes(3)
        .run(calibration());
    assert_eq!(results.len(), configs.len());
    for (i, (config, result)) in configs.iter().zip(&results).enumerate() {
        let result = result.as_ref().expect("sweep run must succeed");
        assert_eq!(&result.config, config);
        assert_matches_scalar(result, &format!("ragged slot {i}"));
    }
}

#[test]
fn sweeps_over_mixed_control_periods_group_and_complete() {
    // Scenarios with different control periods cannot share a lockstep
    // batch; the sweep partitions them into per-period groups and still
    // returns everything in input order.
    let mut configs = Vec::new();
    for i in 0..6 {
        let mut config = ragged_config(i, 2.0);
        config.control_period_s = if i % 2 == 0 { 0.1 } else { 0.2 };
        configs.push(config);
    }
    let results = ScenarioSweep::new(configs.clone())
        .with_threads(2)
        .with_lanes(2)
        .run(calibration());
    assert_eq!(results.len(), configs.len());
    for (i, (config, result)) in configs.iter().zip(&results).enumerate() {
        let result = result.as_ref().expect("sweep run must succeed");
        assert_eq!(&result.config, config, "slot {i} out of order");
        assert_matches_scalar(result, &format!("mixed-period slot {i}"));
    }
}

#[test]
fn failing_scenarios_do_not_disturb_their_lane_mates() {
    // An invalid configuration (non-physical timing) fails at admission;
    // the scenarios sharing its worker and queue must be unaffected.
    let mut configs: Vec<ExperimentConfig> = (0..5).map(|i| ragged_config(i, 2.0)).collect();
    configs[2].max_duration_s = 0.05; // below the control period: rejected
    let results = ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_lanes(2)
        .run(calibration());
    assert_eq!(results.len(), configs.len());
    for (i, result) in results.iter().enumerate() {
        if i == 2 {
            assert!(result.is_err(), "invalid scenario must report its error");
        } else {
            let result = result.as_ref().expect("valid scenario must succeed");
            assert_eq!(&result.config, &configs[i]);
            assert_matches_scalar(result, &format!("fault-isolation slot {i}"));
        }
    }
}

//! Robustness of the fault-injection / safety-ladder / degraded-mode stack.
//!
//! Three contracts are pinned here:
//!
//! * **Armed safety is invisible when nothing is wrong.** A fault-free run
//!   with the default (armed) [`SafetyConfig`] is bit-identical to the same
//!   run with safety disabled — the watchdog layers must not perturb healthy
//!   trajectories.
//! * **Fault scenarios are deterministic.** The same seed and [`FaultPlan`]
//!   replay a bit-identical [`IncidentLog`] regardless of whether the run
//!   executes alone on the scalar engine or batched into any lane of any
//!   sweep shape.
//! * **Faults degrade, never corrupt.** An unreliable sensor chain demotes
//!   the predictive policy to the reactive fallback (and promotes back after
//!   recovery), drains the run with a structured error when the fallback is
//!   disabled, and walks the thermal ladder to simulated shutdown when
//!   temperatures run away — all without panics.

use platform_sim::{
    Calibration, CalibrationCampaign, CollectSink, Experiment, ExperimentConfig, ExperimentKind,
    FaultKind, FaultPlan, FaultWindow, IncidentKind, ScenarioSweep, SensorChannel, SimError,
    SweepSpec, TracePolicy,
};
use workload::BenchmarkId;

fn calibration() -> &'static Calibration {
    static CALIBRATION: std::sync::OnceLock<Calibration> = std::sync::OnceLock::new();
    CALIBRATION.get_or_init(|| {
        CalibrationCampaign {
            prbs_duration_s: 120.0,
            run_furnace: false,
            ..CalibrationCampaign::default()
        }
        .run(53)
        .expect("calibration campaign must succeed")
    })
}

fn base_config(kind: ExperimentKind, seed: u64, duration_s: f64) -> ExperimentConfig {
    let mut config = ExperimentConfig::new(kind, BenchmarkId::Qsort).with_seed(seed);
    config.max_duration_s = duration_s;
    config.ideal_sensors = true;
    config
}

/// A plan that drops one core-temperature channel (NaN readings) over
/// `[start_s, end_s)`.
fn dropped_temp_plan(core: usize, start_s: f64, end_s: f64) -> FaultPlan {
    FaultPlan::new(11).with_window(FaultWindow {
        channel: SensorChannel::CoreTemp(core),
        kind: FaultKind::Dropped,
        start_s,
        end_s,
    })
}

/// The default safety configuration must be a bit-exact no-op on healthy
/// runs: same trajectory, same energy, no incidents — for every experiment
/// kind, with both ideal and noisy sensor chains (the noisy case also pins
/// that screening consumes no RNG draws).
#[test]
fn armed_safety_is_invisible_on_fault_free_runs() {
    for kind in [
        ExperimentKind::WithoutFan,
        ExperimentKind::DefaultWithFan,
        ExperimentKind::Reactive,
        ExperimentKind::Dtpm,
    ] {
        for ideal in [true, false] {
            let mut armed = base_config(kind, 404, 2.5);
            armed.ideal_sensors = ideal;
            let disabled = armed
                .clone()
                .with_safety(platform_sim::SafetyConfig::disabled());

            let armed_report = Experiment::new(&armed, calibration())
                .expect("armed experiment builds")
                .run_report()
                .expect("armed experiment runs");
            let disabled_report = Experiment::new(&disabled, calibration())
                .expect("disabled experiment builds")
                .run_report()
                .expect("disabled experiment runs");

            let label = format!("{kind:?} ideal={ideal}");
            assert!(
                armed_report.summary.incidents.is_empty(),
                "{label}: healthy run must log no incidents"
            );
            assert_eq!(
                armed_report.trace, disabled_report.trace,
                "{label}: trajectories must be bit-identical"
            );
            assert_eq!(
                armed_report.summary.energy_j, disabled_report.summary.energy_j,
                "{label}: energy"
            );
            assert_eq!(
                armed_report.summary.execution_time_s, disabled_report.summary.execution_time_s,
                "{label}: execution time"
            );
            assert_eq!(
                armed_report.summary.intervals, disabled_report.summary.intervals,
                "{label}: interval count"
            );
        }
    }
}

/// Identical seed + plan ⇒ identical incidents, independent of engine and
/// lane placement: the scalar run, a re-run, and the same cell batched into
/// two different sweep shapes all report the same [`IncidentLog`].
#[test]
fn identical_seed_and_plan_replay_bit_identical_incident_logs() {
    // A plan with two flavours of trouble: a dropped temperature channel and
    // a platform-meter spike train large enough to leave the plausibility
    // envelope (seed-deterministic spike times).
    let plan = FaultPlan::new(7777)
        .with_window(FaultWindow {
            channel: SensorChannel::CoreTemp(1),
            kind: FaultKind::Dropped,
            start_s: 0.5,
            end_s: 1.2,
        })
        .with_window(FaultWindow {
            channel: SensorChannel::PlatformPower,
            kind: FaultKind::Spike {
                magnitude: 100.0,
                period_intervals: 10,
            },
            start_s: 0.0,
            end_s: f64::INFINITY,
        });
    let faulted = base_config(ExperimentKind::Dtpm, 808, 4.0).with_faults(plan);

    let scalar = Experiment::new(&faulted, calibration())
        .expect("experiment builds")
        .run_report()
        .expect("experiment runs");
    assert!(
        !scalar.summary.incidents.is_empty(),
        "the plan must actually produce incidents"
    );
    assert!(scalar.summary.incidents.sensor_faults() >= 2);

    // Exact re-run: the whole summary is bit-identical.
    let again = Experiment::new(&faulted, calibration())
        .expect("experiment builds")
        .run_report()
        .expect("experiment runs");
    assert_eq!(scalar.summary, again.summary, "scalar replay");

    // The same cell embedded in two different sweep shapes (different
    // thread/lane counts, different slot, different lane mates) reports the
    // same incident log.
    for (threads, lanes, slot, total) in [(1usize, 3usize, 1usize, 3usize), (2, 2, 0, 5)] {
        let mut configs: Vec<ExperimentConfig> = (0..total)
            .map(|i| base_config(ExperimentKind::Reactive, 9_000 + i as u64, 2.0))
            .collect();
        configs[slot] = faulted.clone();
        let mut sink = CollectSink::new(configs.len());
        ScenarioSweep::new(configs)
            .with_threads(threads)
            .with_lanes(lanes)
            .with_recording(TracePolicy::SummaryOnly)
            .run_into(calibration(), &mut sink);
        let reports = sink.into_reports();
        let report = reports[slot]
            .as_ref()
            .expect("faulted cell completes in the sweep");
        assert_eq!(
            report.summary.incidents, scalar.summary.incidents,
            "threads={threads} lanes={lanes}: incident log must not depend \
             on lane placement"
        );
    }
}

/// A dropped sensor demotes DTPM to the reactive fallback once the staleness
/// budget is exhausted, and the run promotes back after the chain has been
/// healthy long enough — the full incident sequence in order, no errors.
#[test]
fn dropped_sensor_degrades_the_policy_and_recovery_promotes_it() {
    // 15 dropped intervals (budget is 5) then 3.5 s of healthy readings
    // (recovery needs 20 intervals).
    let config =
        base_config(ExperimentKind::Dtpm, 42, 6.0).with_faults(dropped_temp_plan(0, 1.0, 2.5));
    let report = Experiment::new(&config, calibration())
        .expect("experiment builds")
        .run_report()
        .expect("a degraded run still completes");
    let incidents = &report.summary.incidents;

    let position = |predicate: fn(&IncidentKind) -> bool| {
        incidents
            .iter()
            .position(|incident| predicate(&incident.kind))
    };
    let faulted = position(|k| matches!(k, IncidentKind::SensorFault { .. }))
        .expect("the dropped channel is reported");
    let degraded = position(|k| matches!(k, IncidentKind::PolicyDegraded { .. }))
        .expect("exhausting the staleness budget demotes the policy");
    let recovered = position(|k| matches!(k, IncidentKind::SensorRecovered { .. }))
        .expect("the channel recovers after the window closes");
    let restored = position(|k| matches!(k, IncidentKind::PolicyRestored))
        .expect("a healthy streak promotes the policy back");
    assert!(
        faulted < degraded && degraded < recovered && recovered < restored,
        "incidents out of order: {incidents:?}"
    );
    assert_eq!(
        incidents.escalations(),
        0,
        "substituted readings must keep the ladder on its Normal rung"
    );
    assert!(!incidents.shut_down());
    assert_eq!(report.summary.intervals, 60, "the run reaches its cap");
}

/// With the degraded fallback disabled, exhausting the staleness budget
/// drains the run with a structured sensor error instead of limping on.
#[test]
fn unreliable_sensors_drain_the_run_when_fallback_is_disabled() {
    let mut config =
        base_config(ExperimentKind::Dtpm, 42, 6.0).with_faults(dropped_temp_plan(0, 1.0, 2.5));
    config.safety.health.degraded_fallback = false;
    let error = Experiment::new(&config, calibration())
        .expect("experiment builds")
        .run_report()
        .expect_err("an unreliable chain without fallback must drain");
    assert!(
        matches!(error, SimError::Sensor(_)),
        "expected SimError::Sensor, got {error:?}"
    );
}

/// A sensor stuck at a plausible-but-lethal temperature walks the ladder
/// straight to simulated shutdown and retires the run early.
#[test]
fn stuck_high_sensor_walks_the_ladder_to_simulated_shutdown() {
    // An +80 °C offset puts the channel well above the 100 °C shutdown rung
    // yet inside the plausibility envelope — the health monitor must believe
    // the reading so the ladder, not substitution, handles it.
    let plan = FaultPlan::new(3).with_window(FaultWindow {
        channel: SensorChannel::CoreTemp(2),
        kind: FaultKind::OffsetDrift {
            initial: 80.0,
            drift_per_s: 0.0,
        },
        start_s: 0.8,
        end_s: f64::INFINITY,
    });
    let config = base_config(ExperimentKind::DefaultWithFan, 13, 10.0).with_faults(plan);
    let report = Experiment::new(&config, calibration())
        .expect("experiment builds")
        .run_report()
        .expect("a simulated shutdown is a reported outcome, not an error");
    let incidents = &report.summary.incidents;
    assert!(incidents.shut_down(), "the ladder must reach shutdown");
    assert_eq!(
        incidents.escalations(),
        1,
        "a runaway reading escalates once, straight to the top rung"
    );
    assert!(
        !report.summary.completed,
        "a shut-down run did not complete its benchmark"
    );
    assert!(
        report.summary.intervals < 15,
        "shutdown retires the run early, not at the 100-interval cap \
         (got {} intervals)",
        report.summary.intervals
    );
}

/// A campaign with a fault axis completes every cell — faulted cells report
/// their incidents, fault-free cells stay silent, nothing panics or drains.
#[test]
fn fault_campaigns_complete_every_cell() {
    // 12 dropped intervals: enough to demote the DTPM cells (budget 5) while
    // the reactive cells just log the fault episode.
    let plan = dropped_temp_plan(0, 0.4, 1.6);
    let spec = SweepSpec::new(
        vec![ExperimentKind::Dtpm, ExperimentKind::Reactive],
        vec![BenchmarkId::Crc32, BenchmarkId::Qsort],
    )
    .with_fault_plans(vec![None, Some(plan)])
    .with_max_duration_s(2.0)
    .with_ideal_sensors(true)
    .with_campaign_seed(0xFA017);
    assert_eq!(spec.cells(), 8, "2 kinds x 2 benchmarks x 2 fault plans");

    let mut sink = CollectSink::new(spec.cells());
    spec.runner()
        .with_threads(2)
        .with_lanes(2)
        .run_into(calibration(), &mut sink);

    let configs: Vec<ExperimentConfig> = spec.expand().collect();
    for (index, report) in sink.into_reports().into_iter().enumerate() {
        let report = report.unwrap_or_else(|error| {
            panic!("cell {index} must complete, got {error}");
        });
        assert_eq!(report.summary.config, configs[index], "cell {index}: order");
        let incidents = &report.summary.incidents;
        if configs[index].faults.is_some() {
            assert!(
                incidents.sensor_faults() >= 1,
                "cell {index}: faulted cell must report its sensor fault"
            );
            assert!(!incidents.shut_down(), "cell {index}: no thermal runaway");
        } else {
            assert!(
                incidents.is_empty(),
                "cell {index}: fault-free cell must log nothing, \
                 got {incidents:?}"
            );
        }
    }
}

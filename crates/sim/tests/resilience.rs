//! End-to-end campaign resilience: checkpoint/resume bit-identity, shard
//! split/merge arrival-order independence, and cell-level fault containment.
//!
//! The contracts under test:
//!
//! * A campaign killed after any number of completed cells and resumed from
//!   its on-disk checkpoint folds to the **bit-identical** aggregate of the
//!   uninterrupted run (scalar lanes, where the engine is exactly
//!   deterministic).
//! * A grid split into shards and merged in any shard arrival order yields
//!   one canonical aggregate.
//! * A cell that panics or blows its deadline is quarantined as a structured
//!   failure; sibling lanes of the same panel report summaries within the
//!   batched-engine equivalence bar (≤ 1e-9) of solo runs.
//! * A panicking result sink cannot poison the sweep: every other slot is
//!   still delivered.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use platform_sim::{
    Calibration, CalibrationCampaign, CampaignCheckpoint, ChaosPlan, CheckpointSink, CollectSink,
    Experiment, ExperimentConfig, ExperimentKind, FaultKind, FaultPlan, FaultWindow, MergeSink,
    ResiliencePolicy, ResultSink, RunReport, RunSummary, ScenarioSweep, SensorChannel, ShardSpec,
    SimError, SweepSpec, TracePolicy,
};
use proptest::prelude::*;
use workload::BenchmarkId;

fn calibration() -> &'static Calibration {
    static CALIBRATION: std::sync::OnceLock<Calibration> = std::sync::OnceLock::new();
    CALIBRATION.get_or_init(|| {
        CalibrationCampaign {
            prbs_duration_s: 120.0,
            run_furnace: false,
            ..CalibrationCampaign::default()
        }
        .run(37)
        .expect("calibration campaign must succeed")
    })
}

/// A short six-cell campaign (2 kinds × 3 benchmarks, 1 s per cell) used by
/// every checkpoint/shard test here.
fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        vec![ExperimentKind::Dtpm, ExperimentKind::Reactive],
        vec![
            BenchmarkId::Crc32,
            BenchmarkId::Qsort,
            BenchmarkId::Basicmath,
        ],
    );
    spec.campaign_seed = 0xC0FF_EE01;
    spec.max_duration_s = 1.0;
    spec.ideal_sensors = true;
    spec
}

/// A unique scratch path per call so parallel tests never collide on disk.
fn scratch_path(label: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dtpm-resilience-{}-{label}-{unique}.ckpt",
        std::process::id()
    ))
}

/// Records every delivery in arrival order (for later replay).
#[derive(Default)]
struct RecordingSink {
    events: Vec<(usize, Result<RunReport, SimError>)>,
}

impl ResultSink for RecordingSink {
    fn accept(&mut self, index: usize, outcome: Result<RunReport, SimError>) {
        self.events.push((index, outcome));
    }
}

/// Swallows everything (the resumed runs fold through their checkpoint).
struct NullSink;

impl ResultSink for NullSink {
    fn accept(&mut self, _index: usize, _outcome: Result<RunReport, SimError>) {}
}

/// Panics on the first delivery, accepts everything afterwards — the sink
/// half of the poisoning regression test.
#[derive(Default)]
struct PanickySink {
    panicked: bool,
    delivered: Vec<usize>,
}

impl ResultSink for PanickySink {
    fn accept(&mut self, index: usize, _outcome: Result<RunReport, SimError>) {
        if !self.panicked {
            self.panicked = true;
            panic!("sink rejects its first delivery");
        }
        self.delivered.push(index);
    }
}

/// Runs the small campaign once (single worker, scalar lanes — exactly
/// deterministic) and returns its deliveries in arrival order.
fn recorded_small_campaign() -> &'static [(usize, Result<RunReport, SimError>)] {
    static EVENTS: std::sync::OnceLock<Vec<(usize, Result<RunReport, SimError>)>> =
        std::sync::OnceLock::new();
    EVENTS.get_or_init(|| {
        let spec = small_spec();
        let mut sink = RecordingSink::default();
        spec.runner()
            .with_threads(1)
            .with_lanes(1)
            .with_recording(TracePolicy::SummaryOnly)
            .run_into(calibration(), &mut sink);
        assert_eq!(sink.events.len(), spec.cells(), "every cell delivers once");
        sink.events
    })
}

proptest! {
    /// Kill-and-resume bit-identity: replay the first `k` deliveries of the
    /// uninterrupted run into a checkpoint, round-trip it through disk,
    /// resume the campaign from it, and compare the final fold against the
    /// uninterrupted fold **by wire encoding** — bit-exact, not just close.
    #[test]
    fn killed_campaign_resumes_to_the_bit_identical_aggregate(k in 0usize..7) {
        let spec = small_spec();
        let events = recorded_small_campaign();
        prop_assert!(k <= events.len());

        // The uninterrupted reference fold.
        let mut reference = MergeSink::new(0..spec.cells());
        for (index, outcome) in events {
            reference.accept(*index, outcome.clone());
        }
        prop_assert!(reference.is_complete());

        // Kill after k completed cells: only the first k deliveries made it
        // into the checkpoint before the process died.
        let mut checkpoint = CampaignCheckpoint::new(spec.fingerprint(), spec.cells());
        for (index, outcome) in &events[..k] {
            checkpoint.record(*index, outcome.clone());
        }
        let path = scratch_path("resume");
        checkpoint.write_atomic(&path).expect("checkpoint write");

        // Resume from what is on disk.
        let loaded = CampaignCheckpoint::load(&path).expect("checkpoint load");
        prop_assert_eq!(loaded.completed(), k);
        let mut sink = CheckpointSink::resume(loaded.clone(), &path, 2, NullSink);
        spec.runner()
            .with_threads(1)
            .with_lanes(1)
            .with_recording(TracePolicy::SummaryOnly)
            .resume_from(&loaded, calibration(), &mut sink)
            .expect("resume must accept its own checkpoint");
        let (resumed, _, write) = sink.finish();
        write.expect("final checkpoint write");

        prop_assert!(resumed.is_complete());
        // Wire-encoding equality is bit-exactness: every float is rendered
        // by bit pattern.
        prop_assert_eq!(resumed.fold().encode(), reference.encode());
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn shard_merge_is_independent_of_shard_arrival_order() {
    let spec = small_spec();
    let shards = ShardSpec::split(&spec, 3);
    assert_eq!(shards.len(), 3);
    let sinks: Vec<MergeSink> = shards
        .iter()
        .map(|shard| {
            shard
                .runner()
                .with_threads(1)
                .with_lanes(1)
                .with_recording(TracePolicy::SummaryOnly)
                .run(calibration())
        })
        .collect();

    let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 0, 1], [1, 2, 0]];
    let merged: Vec<_> = orders
        .iter()
        .map(|order| {
            MergeSink::merge_all(order.iter().map(|&i| sinks[i].clone()))
                .expect("complete shards merge")
        })
        .collect();
    assert_eq!(merged[0], merged[1], "arrival order must not matter");
    assert_eq!(merged[0], merged[2], "arrival order must not matter");

    // The sharded aggregate matches the whole-campaign fold: counts and
    // extrema exactly, merged moments within the numerical bar.
    let mut whole = MergeSink::new(0..spec.cells());
    spec.runner()
        .with_threads(1)
        .with_lanes(1)
        .with_recording(TracePolicy::SummaryOnly)
        .run_into(calibration(), &mut whole);
    let sequential = whole.aggregate();
    let sharded = &merged[0];
    assert_eq!(sharded.cells, sequential.cells);
    assert_eq!(sharded.completed_runs, sequential.completed_runs);
    assert_eq!(sharded.failed_cells, sequential.failed_cells);
    assert_eq!(sharded.total_intervals, sequential.total_intervals);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
    assert!(close(sharded.total_energy_j, sequential.total_energy_j));
    assert_eq!(sharded.peak_temp_c.max(), sequential.peak_temp_c.max());
    assert_eq!(sharded.mean_temp_c.min(), sequential.mean_temp_c.min());
    assert!(close(
        sharded.mean_temp_c.mean(),
        sequential.mean_temp_c.mean()
    ));
    assert!(close(
        sharded.mean_temp_c.variance(),
        sequential.mean_temp_c.variance()
    ));
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_grid() {
    let spec = small_spec();
    let mut other = small_spec();
    other.campaign_seed ^= 1;
    let foreign = CampaignCheckpoint::new(other.fingerprint(), other.cells());
    let mut sink = NullSink;
    let err = spec
        .runner()
        .resume_from(&foreign, calibration(), &mut sink)
        .expect_err("foreign checkpoints must be rejected");
    assert!(
        matches!(err, SimError::InvalidConfig(msg) if msg.contains("fingerprint")),
        "got {err:?}"
    );
}

/// Field-by-field comparison at the batched-engine equivalence bar
/// (≤ 1e-9 absolute on temperatures and rates, relative on power/energy).
fn assert_summaries_close(observed: &RunSummary, reference: &RunSummary, label: &str) {
    assert_eq!(
        observed.completed, reference.completed,
        "{label}: completed"
    );
    assert_eq!(
        observed.intervals, reference.intervals,
        "{label}: intervals"
    );
    let close_rel = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
    assert!(
        close_rel(observed.energy_j, reference.energy_j),
        "{label}: energy {} vs {}",
        observed.energy_j,
        reference.energy_j
    );
    for (name, a, b) in [
        (
            "mean temp",
            observed.stability.mean_temp_c,
            reference.stability.mean_temp_c,
        ),
        (
            "peak temp",
            observed.stability.peak_temp_c,
            reference.stability.peak_temp_c,
        ),
        (
            "intervention rate",
            observed.intervention_rate,
            reference.intervention_rate,
        ),
    ] {
        assert!(
            (a - b).abs() <= 1e-9,
            "{label}: {name} diverged: {a} vs {b}"
        );
    }
}

/// The four sibling configurations used by the containment tests: cell 1
/// carries the injected failure, the rest must be unaffected.
fn sibling_configs() -> Vec<ExperimentConfig> {
    let benchmarks = [
        BenchmarkId::Crc32,
        BenchmarkId::Qsort,
        BenchmarkId::Basicmath,
        BenchmarkId::Templerun,
    ];
    benchmarks
        .iter()
        .enumerate()
        .map(|(i, &benchmark)| {
            let mut config =
                ExperimentConfig::new(ExperimentKind::Dtpm, benchmark).with_seed(90 + i as u64);
            config.max_duration_s = 1.5;
            config.ideal_sensors = true;
            config
        })
        .collect()
}

#[test]
fn a_panicking_cell_is_quarantined_and_its_panel_siblings_are_unaffected() {
    let mut configs = sibling_configs();
    configs[1] = configs[1].clone().with_chaos(ChaosPlan::panic_at(3));

    let mut sink = CollectSink::new(configs.len());
    ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_lanes(2)
        .with_recording(TracePolicy::SummaryOnly)
        .run_into(calibration(), &mut sink);
    let reports = sink.into_reports();

    match &reports[1] {
        Err(SimError::Panicked(message)) => {
            assert!(
                message.contains("chaos plan"),
                "panic payload is preserved: {message}"
            );
        }
        other => panic!("chaos cell must be quarantined as Panicked, got {other:?}"),
    }

    // Every sibling matches its solo (scalar, chaos-free) run.
    let solo = sibling_configs();
    for index in [0, 2, 3] {
        let report = reports[index].as_ref().expect("sibling cells succeed");
        let reference = Experiment::new(&solo[index], calibration())
            .expect("solo experiment")
            .run()
            .expect("solo run");
        assert_summaries_close(
            &report.summary,
            &RunSummary::of(&reference),
            &format!("sibling {index}"),
        );
    }
}

#[test]
fn a_deadline_blown_cell_reports_a_structured_deadline_error() {
    let mut configs = sibling_configs();
    configs[1].max_duration_s = 30.0; // would run 300 intervals unchecked

    let mut sink = CollectSink::new(configs.len());
    ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_lanes(2)
        .with_recording(TracePolicy::SummaryOnly)
        .with_resilience(ResiliencePolicy::default().with_deadline_intervals(20))
        .run_into(calibration(), &mut sink);
    let reports = sink.into_reports();

    match &reports[1] {
        Err(SimError::Deadline { intervals }) => {
            assert_eq!(*intervals, 20, "retired at the configured deadline");
        }
        other => panic!("runaway cell must be retired as Deadline, got {other:?}"),
    }
    // The short siblings (capped at 15 intervals) sit inside the deadline
    // and are delivered untouched.
    for index in [0, 2, 3] {
        let report = reports[index].as_ref().expect("short cells finish");
        assert!(report.summary.intervals <= 15);
    }
}

#[test]
fn a_transient_panic_is_retried_deterministically_and_heals() {
    let mut configs = sibling_configs();
    configs.truncate(2);
    configs[1] = configs[1]
        .clone()
        .with_chaos(ChaosPlan::panic_at(4).healing_after(1));

    // Without retries the transient fault is a quarantined failure.
    let mut sink = CollectSink::new(configs.len());
    ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_recording(TracePolicy::SummaryOnly)
        .run_into(calibration(), &mut sink);
    let reports = sink.into_reports();
    assert!(
        matches!(&reports[1], Err(SimError::Panicked(_))),
        "no retry budget: the fault surfaces"
    );

    // With a retry budget the second, healed attempt completes — and its
    // numbers match a run that never faulted at all.
    let mut sink = CollectSink::new(configs.len());
    ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_recording(TracePolicy::SummaryOnly)
        .with_resilience(ResiliencePolicy::default().with_max_retries(2))
        .run_into(calibration(), &mut sink);
    let reports = sink.into_reports();
    let healed = reports[1].as_ref().expect("healed retry completes");

    let clean = sibling_configs()[1].clone();
    let reference = Experiment::new(&clean, calibration())
        .expect("clean experiment")
        .run()
        .expect("clean run");
    assert_summaries_close(&healed.summary, &RunSummary::of(&reference), "healed retry");
}

#[test]
fn a_panicking_sink_does_not_poison_the_sweep() {
    let configs = sibling_configs();
    let expected = configs.len() - 1;
    let mut sink = PanickySink::default();
    ScenarioSweep::new(configs)
        .with_threads(2)
        .with_recording(TracePolicy::SummaryOnly)
        .run_into(calibration(), &mut sink);
    // The first delivery was discarded by the panicking accept; every other
    // slot still arrived, and no worker deadlocked on a poisoned mutex.
    assert_eq!(sink.delivered.len(), expected);
    let mut delivered = sink.delivered.clone();
    delivered.sort_unstable();
    delivered.dedup();
    assert_eq!(
        delivered.len(),
        expected,
        "each surviving slot exactly once"
    );
}

#[test]
fn malformed_fault_plans_are_rejected_at_the_experiment_gate() {
    let plan = FaultPlan::new(7).with_window(FaultWindow {
        channel: SensorChannel::PlatformPower,
        kind: FaultKind::OffsetDrift {
            initial: f64::NAN,
            drift_per_s: 0.0,
        },
        start_s: 0.0,
        end_s: 10.0,
    });
    let config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Crc32).with_faults(plan);
    let err = Experiment::new(&config, calibration()).expect_err("NaN offset must be rejected");
    assert!(matches!(err, SimError::FaultPlan(_)), "got {err:?}");
}

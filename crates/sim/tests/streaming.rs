//! Correctness of the streaming observer/sink/campaign pipeline.
//!
//! The result path's contract is that *streaming is invisible in the
//! numbers*: a run that retains nothing per interval must report the same
//! summary the post-hoc analysis computes from a fully retained trace, and a
//! grid campaign streamed through a summaries-only sink must agree with the
//! trace-retaining sweep of the same cells — while provably not retaining
//! any per-interval traces.

use platform_sim::{
    Calibration, CalibrationCampaign, CollectSink, Experiment, ExperimentConfig, ExperimentKind,
    OnlineRunStats, RunObserver, RunSummary, ScenarioSweep, StabilityReport, SweepSpec,
    TracePolicy,
};
use proptest::prelude::*;
use workload::BenchmarkId;

fn calibration() -> &'static Calibration {
    static CALIBRATION: std::sync::OnceLock<Calibration> = std::sync::OnceLock::new();
    CALIBRATION.get_or_init(|| {
        CalibrationCampaign {
            prbs_duration_s: 120.0,
            run_furnace: false,
            ..CalibrationCampaign::default()
        }
        .run(37)
        .expect("calibration campaign must succeed")
    })
}

fn config_for(
    kind_index: usize,
    bench_index: usize,
    seed: u64,
    duration_s: f64,
) -> ExperimentConfig {
    let kinds = [
        ExperimentKind::DefaultWithFan,
        ExperimentKind::WithoutFan,
        ExperimentKind::Reactive,
        ExperimentKind::Dtpm,
    ];
    let benchmarks = [
        BenchmarkId::Crc32,
        BenchmarkId::Qsort,
        BenchmarkId::Basicmath,
        BenchmarkId::Templerun,
    ];
    let mut config = ExperimentConfig::new(
        kinds[kind_index % kinds.len()],
        benchmarks[bench_index % benchmarks.len()],
    )
    .with_seed(seed);
    config.max_duration_s = duration_s;
    config
}

/// Field-by-field comparison of two summaries at the acceptance bar
/// (≤ 1e-9, absolute on temperatures and rates, relative on power/energy).
fn assert_summaries_close(streamed: &RunSummary, reference: &RunSummary, label: &str) {
    assert_eq!(streamed.config, reference.config, "{label}: config");
    assert_eq!(
        streamed.completed, reference.completed,
        "{label}: completed"
    );
    assert_eq!(
        streamed.intervals, reference.intervals,
        "{label}: intervals"
    );
    assert_eq!(
        streamed.execution_time_s, reference.execution_time_s,
        "{label}: execution time"
    );
    let close_rel = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
    assert!(
        close_rel(streamed.energy_j, reference.energy_j),
        "{label}: energy {} vs {}",
        streamed.energy_j,
        reference.energy_j
    );
    assert!(
        close_rel(
            streamed.mean_platform_power_w,
            reference.mean_platform_power_w
        ),
        "{label}: mean power {} vs {}",
        streamed.mean_platform_power_w,
        reference.mean_platform_power_w
    );
    for (name, a, b) in [
        (
            "mean temp",
            streamed.stability.mean_temp_c,
            reference.stability.mean_temp_c,
        ),
        (
            "temp range",
            streamed.stability.temp_range_c,
            reference.stability.temp_range_c,
        ),
        (
            "temp variance",
            streamed.stability.temp_variance,
            reference.stability.temp_variance,
        ),
        (
            "peak temp",
            streamed.stability.peak_temp_c,
            reference.stability.peak_temp_c,
        ),
        (
            "intervention rate",
            streamed.intervention_rate,
            reference.intervention_rate,
        ),
        (
            "residency",
            streamed.little_cluster_residency,
            reference.little_cluster_residency,
        ),
    ] {
        assert!(
            (a - b).abs() <= 1e-9,
            "{label}: {name} diverged: {a} vs {b}"
        );
    }
}

proptest! {
    /// The online-metrics observer, replaying the records a trace-retaining
    /// run kept, reproduces every post-hoc metric: the steady-portion
    /// stability report, the mean platform power, and the rates — to ≤ 1e-9
    /// (mean power, peak and range bit-equal).
    #[test]
    fn online_metrics_match_post_hoc_analysis(
        kind_index in 0usize..4,
        bench_index in 0usize..4,
        seed in 0i64..1_000_000,
        duration_s in 1.5f64..4.0,
        skip_fraction in 0.0f64..0.9,
    ) {
        let config = config_for(kind_index, bench_index, seed as u64, duration_s);
        let result = Experiment::new(&config, calibration())
            .expect("experiment builds")
            .run()
            .expect("experiment runs");
        let records = result.trace.records();
        prop_assert!(!records.is_empty());

        // Whole-run statistics.
        let mut stats = OnlineRunStats::new();
        for record in records {
            stats.on_interval(record);
        }
        prop_assert_eq!(stats.intervals(), records.len());
        // The running power sum is the same left fold `Iterator::sum` does.
        prop_assert_eq!(stats.mean_platform_power_w(), result.trace.mean_platform_power_w());
        prop_assert_eq!(stats.intervention_rate(), result.trace.intervention_rate());
        prop_assert_eq!(
            stats.little_cluster_residency(),
            result.trace.little_cluster_residency()
        );
        let online = stats.stability();
        let reference = StabilityReport::of_steady_portion(&result, 0.0);
        prop_assert_eq!(online.peak_temp_c, reference.peak_temp_c);
        prop_assert_eq!(online.temp_range_c, reference.temp_range_c);
        prop_assert!((online.mean_temp_c - reference.mean_temp_c).abs() <= 1e-9);
        prop_assert!((online.temp_variance - reference.temp_variance).abs() <= 1e-9);

        // Steady-portion statistics: the online skip is the same prefix
        // `of_steady_portion` drops (`floor(len · fraction)` records).
        let skip = ((records.len() as f64) * skip_fraction).floor() as usize;
        let mut steady = OnlineRunStats::with_skipped_intervals(skip);
        for record in records {
            steady.on_interval(record);
        }
        let online = steady.stability();
        let reference = StabilityReport::of_steady_portion(&result, skip_fraction);
        prop_assert_eq!(online.peak_temp_c, reference.peak_temp_c);
        prop_assert_eq!(online.temp_range_c, reference.temp_range_c);
        prop_assert!((online.mean_temp_c - reference.mean_temp_c).abs() <= 1e-9);
        prop_assert!((online.temp_variance - reference.temp_variance).abs() <= 1e-9);

        // A live summary-only run of the same configuration streams the
        // bit-identical summary (same record sequence, same accumulators).
        let report = Experiment::new(&config, calibration())
            .expect("experiment builds")
            .with_recording(TracePolicy::SummaryOnly)
            .run_report()
            .expect("experiment runs");
        prop_assert!(report.trace.is_none(), "summary-only retains no trace");
        prop_assert_eq!(&report.summary, &RunSummary::of(&result));
    }

    /// Grid expansion derives a distinct, deterministic seed for every cell,
    /// stable across expansions and independent of iteration order.
    #[test]
    fn grid_cells_have_distinct_order_independent_seeds(
        kind_count in 1usize..4,
        bench_count in 1usize..4,
        ambient_count in 1usize..3,
        variant_count in 1usize..3,
        replicates in 1usize..4,
        campaign_seed in 0i64..1_000_000_000,
    ) {
        let kinds = [
            ExperimentKind::DefaultWithFan,
            ExperimentKind::Reactive,
            ExperimentKind::Dtpm,
        ];
        let benchmarks = [BenchmarkId::Crc32, BenchmarkId::Sha, BenchmarkId::Fft];
        let spec = SweepSpec::new(
            kinds[..kind_count].to_vec(),
            benchmarks[..bench_count].to_vec(),
        )
        .with_ambients_c((0..ambient_count).map(|i| 24.0 + 4.0 * i as f64).collect())
        .with_dtpm_variants(
            (0..variant_count)
                .map(|i| platform_sim::DtpmVariant {
                    horizon_steps: 10 + 10 * i,
                    constraint_c: 63.0 - 3.0 * i as f64,
                })
                .collect(),
        )
        .with_replicates(replicates)
        .with_campaign_seed(campaign_seed as u64);

        let cells = spec.cells();
        prop_assert_eq!(
            cells,
            kind_count * bench_count * ambient_count * variant_count * replicates
        );

        // Forward expansion: every seed distinct.
        let forward: Vec<u64> = spec.expand().map(|config| config.seed).collect();
        let unique: std::collections::HashSet<u64> = forward.iter().copied().collect();
        prop_assert_eq!(unique.len(), cells, "cell seeds must be distinct");

        // Reverse-order and strided random access derive identical cells:
        // seeding is a pure function of (campaign seed, cell index).
        for index in (0..cells).rev() {
            prop_assert_eq!(spec.cell(index).seed, forward[index]);
        }
        for index in (0..cells).step_by(3) {
            prop_assert_eq!(spec.cell_seed(index), forward[index]);
        }

        // Stable across runs: an identical spec derives identical seeds.
        let again: Vec<u64> = spec.clone().expand().map(|config| config.seed).collect();
        prop_assert_eq!(again, forward);
    }
}

/// The acceptance-criteria path: a ≥ 3-axis grid declared as a [`SweepSpec`]
/// runs end-to-end through the compacting sweep into a streaming
/// summaries-only sink, and every per-run summary is bit-equal to the
/// trace-retaining path's, while no full per-interval traces are retained.
#[test]
fn streamed_campaign_matches_trace_retaining_sweep() {
    let spec = SweepSpec::new(
        vec![
            ExperimentKind::DefaultWithFan,
            ExperimentKind::Reactive,
            ExperimentKind::Dtpm,
        ],
        vec![BenchmarkId::Crc32, BenchmarkId::Dijkstra],
    )
    .with_ambients_c(vec![26.0, 30.0])
    .with_max_duration_s(2.5)
    .with_ideal_sensors(true)
    .with_campaign_seed(0xCA11B0A7);
    assert_eq!(spec.cells(), 12, "3 kinds x 2 benchmarks x 2 ambients");

    // Trace-retaining arm: the classic Vec-collecting sweep over the same
    // cells. A single worker makes lane placement deterministic, so the two
    // arms see bit-identical trajectories and the summary comparison is
    // exact rather than merely within the batched-engine equivalence bar.
    let configs: Vec<ExperimentConfig> = spec.expand().collect();
    let retained = ScenarioSweep::new(configs.clone())
        .with_threads(1)
        .with_lanes(3)
        .run(calibration());

    // Streaming arm: same grid, same scheduler shape, summaries only.
    let mut sink = CollectSink::new(spec.cells());
    spec.runner()
        .with_threads(1)
        .with_lanes(3)
        .run_into(calibration(), &mut sink);
    let streamed = sink.into_reports();

    assert_eq!(streamed.len(), retained.len());
    for (index, (report, result)) in streamed.iter().zip(&retained).enumerate() {
        let report = report.as_ref().expect("streamed cell succeeds");
        let result = result.as_ref().expect("retained cell succeeds");
        assert!(
            report.trace.is_none(),
            "cell {index}: streaming configuration must retain no trace"
        );
        assert_eq!(report.summary.config, configs[index], "cell {index}: order");
        assert_eq!(
            &report.summary,
            &RunSummary::of(result),
            "cell {index}: streamed summary must be bit-equal to the \
             trace-retaining path"
        );
    }
}

/// Decimated recording keeps a coarse trajectory whose summary still matches
/// the full path, and multi-worker streaming covers every cell exactly once.
#[test]
fn decimated_and_parallel_streaming_cover_every_cell() {
    let spec = SweepSpec::new(
        vec![ExperimentKind::WithoutFan, ExperimentKind::Dtpm],
        vec![BenchmarkId::Qsort],
    )
    .with_ambients_c(vec![25.0, 29.0])
    .with_replicates(2)
    .with_max_duration_s(2.0)
    .with_ideal_sensors(true);
    assert_eq!(spec.cells(), 8);
    let configs: Vec<ExperimentConfig> = spec.expand().collect();

    // Parallel sweep through a decimating policy: every cell's report
    // arrives exactly once (CollectSink asserts single writes), carries a
    // coarse trace, and its summary matches the scalar reference run.
    let mut sink = CollectSink::new(spec.cells());
    ScenarioSweep::new(configs.clone())
        .with_threads(2)
        .with_lanes(2)
        .with_recording(TracePolicy::Decimated(5))
        .run_into(calibration(), &mut sink);
    for (index, report) in sink.into_reports().into_iter().enumerate() {
        let report = report.expect("cell succeeds");
        assert_eq!(report.summary.config, configs[index]);
        let coarse = report.trace.as_ref().expect("decimated trace retained");
        assert!(
            coarse.len() < report.summary.intervals,
            "cell {index}: decimation must retain fewer records \
             ({} of {})",
            coarse.len(),
            report.summary.intervals
        );
        // ceil(n / 5) grid records plus at most one appended final record.
        let expected = report.summary.intervals.div_ceil(5);
        assert!(
            coarse.len() == expected || coarse.len() == expected + 1,
            "cell {index}: unexpected coarse length {} for {} intervals",
            coarse.len(),
            report.summary.intervals
        );
        let reference = Experiment::new(&configs[index], calibration())
            .expect("reference builds")
            .run()
            .expect("reference runs");
        assert_summaries_close(
            &report.summary,
            &RunSummary::of(&reference),
            &format!("cell {index}"),
        );
    }
}

/// A summaries-only sweep cannot produce `SimulationResult`s: `run()`
/// rejects the combination loudly instead of silently overriding the
/// configured policy.
#[test]
#[should_panic(expected = "run_into")]
fn summary_only_sweeps_reject_the_vec_api() {
    let configs = vec![config_for(0, 0, 1, 2.0)];
    ScenarioSweep::new(configs)
        .with_recording(TracePolicy::SummaryOnly)
        .run(calibration());
}

/// `run()` honours a decimating policy: the results carry coarse traces.
#[test]
fn decimated_sweeps_return_coarse_results() {
    let configs = vec![config_for(1, 1, 5, 2.0)];
    let results = ScenarioSweep::new(configs)
        .with_recording(TracePolicy::Decimated(5))
        .run(calibration());
    let result = results[0].as_ref().expect("run succeeds");
    let full = Experiment::new(&result.config, calibration())
        .expect("reference builds")
        .run()
        .expect("reference runs");
    assert!(result.trace.len() < full.trace.len());
    assert_eq!(result.execution_time_s, full.execution_time_s);
    assert_eq!(result.mean_platform_power_w, full.mean_platform_power_w);
}

/// `RunObserver` is usable as a plain streaming tee outside the executor —
/// the seam future sinks (live plots, remote shipping) build on.
#[test]
fn observers_compose_over_one_record_stream() {
    let config = config_for(3, 0, 11, 2.0);
    let result = Experiment::new(&config, calibration())
        .expect("experiment builds")
        .run()
        .expect("experiment runs");
    let mut full = platform_sim::Trace::new();
    let mut coarse = platform_sim::DecimatedTrace::new(7);
    let mut stats = OnlineRunStats::new();
    {
        let observers: [&mut dyn RunObserver; 3] = [&mut full, &mut coarse, &mut stats];
        for observer in observers {
            for record in result.trace.records() {
                observer.on_interval(record);
            }
        }
    }
    assert_eq!(full.finish().expect("full trace").len(), result.trace.len());
    let coarse = coarse.into_trace();
    assert!(!coarse.is_empty() && coarse.len() <= result.trace.len().div_ceil(7) + 1);
    assert_eq!(stats.intervals(), result.trace.len());
    assert_eq!(
        stats.mean_platform_power_w(),
        result.trace.mean_platform_power_w()
    );
}

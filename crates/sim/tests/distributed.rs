//! Distributed campaign execution: the transport/leasing layer cannot
//! change the answer.
//!
//! The contracts under test:
//!
//! * A campaign run through the coordinator over worker transports folds to
//!   the **bit-identical** aggregate of the plain in-process
//!   [`CampaignRunner`] run — same grid, same calibration recipe.
//! * That identity survives chaos: workers killed or stalled at arbitrary
//!   lease points force re-leases and duplicate completions, and the
//!   cell-level dedup still folds every cell exactly once (proptest over
//!   injection points).
//! * The binary codec round-trips arbitrary [`ShardSpec`] and [`MergeSink`]
//!   states bit-exactly, including non-finite float bit patterns.
//! * Per-worker sink batching (the sweep-stream contention fix) does not
//!   change delivered bits: multi-threaded and single-threaded folds agree.

use std::thread;
use std::time::Duration;

use platform_sim::distributed::{
    serve_with, MemoryTransport, Transport, WorkerChaos, WorkerOptions,
};
use platform_sim::{
    Calibration, CalibrationCampaign, CellOutcome, CellStats, Coordinator, DistributedReport,
    ExperimentKind, MergeSink, ShardSpec, SweepSpec,
};
use proptest::prelude::*;
use workload::BenchmarkId;

/// The calibration recipe shared by the in-process reference and (via the
/// wire) every worker: cheap but real, like the resilience tests use.
fn calibration_campaign() -> CalibrationCampaign {
    CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    }
}

const CALIBRATION_SEED: u64 = 37;

fn calibration() -> &'static Calibration {
    static CALIBRATION: std::sync::OnceLock<Calibration> = std::sync::OnceLock::new();
    CALIBRATION.get_or_init(|| {
        calibration_campaign()
            .run(CALIBRATION_SEED)
            .expect("calibration campaign must succeed")
    })
}

/// A short six-cell campaign (2 kinds × 3 benchmarks, 1 s per cell).
fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        vec![ExperimentKind::Dtpm, ExperimentKind::Reactive],
        vec![
            BenchmarkId::Crc32,
            BenchmarkId::Qsort,
            BenchmarkId::Basicmath,
        ],
    );
    spec.campaign_seed = 0xD157_0001;
    spec.max_duration_s = 1.0;
    spec.ideal_sensors = true;
    spec
}

/// The uninterrupted in-process fold every distributed run must reproduce.
fn reference_fold() -> &'static MergeSink {
    static REFERENCE: std::sync::OnceLock<MergeSink> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(|| {
        let spec = small_spec();
        let mut sink = MergeSink::new(0..spec.cells());
        spec.runner().run_into(calibration(), &mut sink);
        assert!(sink.is_complete());
        sink
    })
}

/// Runs `small_spec` through the coordinator with one in-process worker
/// thread per options entry, over memory transports.
fn run_distributed(
    worker_options: Vec<WorkerOptions>,
    lease_cells: usize,
    lease_timeout: Duration,
) -> DistributedReport {
    let mut transports: Vec<Box<dyn Transport>> = Vec::new();
    let mut workers = Vec::new();
    for options in worker_options {
        let (coordinator_end, worker_end) = MemoryTransport::pair();
        transports.push(Box::new(coordinator_end));
        workers.push(thread::spawn(move || {
            serve_with(Box::new(worker_end), options)
        }));
    }
    let report = Coordinator::new(small_spec())
        .with_calibration(calibration_campaign(), CALIBRATION_SEED)
        .with_lease_cells(lease_cells)
        .with_lease_timeout(lease_timeout)
        .connect(transports)
        .expect("handshake must succeed")
        .run()
        .expect("campaign must complete");
    for worker in workers {
        // A chaos-killed worker returns Ok too (it just vanishes); only
        // genuine transport/protocol bugs error here.
        worker
            .join()
            .expect("worker thread must not panic")
            .expect("worker must exit cleanly");
    }
    report
}

#[test]
fn distributed_run_matches_in_process_bit_for_bit() {
    let report = run_distributed(
        vec![WorkerOptions::default(), WorkerOptions::default()],
        2,
        Duration::from_secs(20),
    );
    let reference = reference_fold();
    assert!(report.fold().is_complete());
    assert_eq!(report.fold(), reference);
    assert_eq!(report.fold().encode(), reference.encode());
    let stats = report.stats();
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.lost_workers, 0);
    assert_eq!(stats.duplicate_cells, 0);
    assert!(stats.leases >= 3, "6 cells / 2-cell leases");
}

#[test]
fn single_worker_pool_matches_too() {
    let report = run_distributed(vec![WorkerOptions::default()], 32, Duration::from_secs(20));
    assert_eq!(report.fold().encode(), reference_fold().encode());
    assert_eq!(report.stats().leases, 1);
}

proptest! {
    #[test]
    /// Chaos: worker A dies or stalls at an arbitrary lease point while
    /// worker B stays healthy. Whatever gets re-leased, re-run, or folded
    /// twice, the merged aggregate is bit-identical to the uninterrupted
    /// in-process fold.
    fn chaos_workers_cannot_change_the_aggregate(
        die_after in 0usize..7,
        stall in 0usize..2,
        lease_cells in 1usize..4,
    ) {
        let chaos = if stall == 1 {
            // Stall straight through the lease deadline, then finish late:
            // exercises release, re-lease, and duplicate-completion dedup.
            WorkerChaos {
                stall_after_cells: Some(die_after.min(5)),
                stall_for: Duration::from_millis(1500),
                ..WorkerChaos::default()
            }
        } else {
            // Silent death mid-campaign: exercises EOF recovery.
            WorkerChaos {
                die_after_cells: Some(die_after),
                ..WorkerChaos::default()
            }
        };
        let lease_timeout = if stall == 1 {
            Duration::from_millis(400)
        } else {
            Duration::from_secs(20)
        };
        let report = run_distributed(
            vec![WorkerOptions { chaos }, WorkerOptions::default()],
            lease_cells,
            lease_timeout,
        );
        prop_assert!(report.fold().is_complete());
        prop_assert_eq!(report.fold(), reference_fold());
        prop_assert_eq!(report.fold().encode(), reference_fold().encode());
    }
}

proptest! {
    #[test]
    /// The shard codec round-trips arbitrary grids and ranges bit-exactly.
    fn shard_codec_round_trips(
        seed in 0i64..i64::MAX,
        ambients in prop::collection::vec(-40.0f64..120.0, 1..4),
        replicates in 1usize..4,
        cut in 0usize..1000,
    ) {
        let spec = SweepSpec::new(
            vec![ExperimentKind::Dtpm, ExperimentKind::WithoutFan],
            vec![BenchmarkId::Fft, BenchmarkId::Gsm],
        )
        .with_ambients_c(ambients)
        .with_replicates(replicates)
        .with_campaign_seed(seed as u64);
        let cells = spec.cells();
        let start = cut % (cells + 1);
        let end = start + (seed as usize % (cells - start + 1));
        let shard = ShardSpec { spec, start, end };
        let blob = platform_sim::distributed::encode_shard(&shard);
        let decoded = platform_sim::distributed::decode_shard(&blob).expect("decode");
        prop_assert_eq!(&decoded, &shard);
        // Re-encoding the decoded value reproduces the exact blob.
        prop_assert_eq!(platform_sim::distributed::encode_shard(&decoded), blob);
    }
}

proptest! {
    #[test]
    /// The merge-sink codec round-trips arbitrary fold states — including
    /// out-of-order pending cells, failures, and non-finite float bit
    /// patterns — bit-exactly.
    fn sink_codec_round_trips(
        bits in prop::collection::vec(0i64..i64::MAX, 2..12),
        rot in 0usize..12,
        tail in 0usize..3,
    ) {
        let n = bits.len();
        let mut sink = MergeSink::new(0..n + tail);
        for k in 0..n {
            // Rotated arrival order populates the pending (out-of-order)
            // buffer without double-offering any index.
            let index = (k + rot) % n;
            // Mix to full 64-bit coverage: NaN payloads, infinities and
            // negative zero all show up as bit patterns.
            let raw = f64::from_bits(platform_sim::splitmix64(bits[index] as u64));
            let outcome = if bits[index].rem_euclid(5) == 0 {
                CellOutcome::Failed(platform_sim::CellFailure {
                    index,
                    error: format!("injected failure {index}"),
                })
            } else {
                CellOutcome::Completed(CellStats {
                    completed: bits[index].rem_euclid(2) == 0,
                    execution_time_s: raw,
                    intervals: bits[index].rem_euclid(1000) as usize,
                    energy_j: raw * 2.0,
                    mean_platform_power_w: raw * 0.5,
                    mean_temp_c: 50.0,
                    peak_temp_c: raw.abs(),
                    intervention_rate: 0.125,
                    escalations: 1,
                    sensor_faults: 0,
                    shut_down: false,
                })
            };
            sink.offer(index, outcome);
        }
        let blob = platform_sim::distributed::encode_sink(&sink);
        let decoded = platform_sim::distributed::decode_sink(&blob).expect("decode");
        // Bit-exactness via re-encode: robust to NaN != NaN in PartialEq.
        prop_assert_eq!(platform_sim::distributed::encode_sink(&decoded), blob);
        if bits
            .iter()
            .all(|&b| f64::from_bits(platform_sim::splitmix64(b as u64)).is_finite())
        {
            prop_assert_eq!(&decoded, &sink);
        }
    }
}

#[test]
fn sink_batching_does_not_change_delivered_bits() {
    // The sweep-stream sink batching (per-worker outboxes flushed under one
    // lock take) must be invisible in the fold: a multi-threaded, batched
    // run delivers exactly the bits of the sequential one.
    let spec = small_spec();
    let mut sequential = MergeSink::new(0..spec.cells());
    spec.runner()
        .with_threads(1)
        .run_into(calibration(), &mut sequential);
    let mut threaded = MergeSink::new(0..spec.cells());
    spec.runner()
        .with_threads(4)
        .run_into(calibration(), &mut threaded);
    assert_eq!(sequential.encode(), threaded.encode());
}

//! Precision-budget property tests for the mixed-precision (f32 panel)
//! engine.
//!
//! The f32 engine's correctness contract is *budgeted, not assumed*: against
//! the f64 panel oracle, over randomised scenarios (demand mixes, ambients,
//! control periods — which also vary the micro-step/re-anchor interplay —
//! initial temperatures, leakage mismatch and actuation schedules) and over
//! a paper-scale deterministic run, the trajectories must agree to the
//! documented ≤ 1e-3 °C budget, integrated energy to ≤ 0.01 %, and every
//! thermal *decision* built on the trajectories — here the [`SafetyLadder`]
//! rung sequence — must agree exactly. The `EnginePrecision::F64` default
//! must leave existing runs bit-identical.

use platform_sim::{
    CalibrationCampaign, EnginePrecision, Experiment, ExperimentConfig, ExperimentKind,
    IncidentLog, LadderConfig, LaneInput, MixedPanelEngine, PanelEngine, PlantEngine,
    PlantPowerParams, SafetyLadder,
};
use proptest::prelude::*;
use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, SocSpec};
use workload::{BenchmarkId, Demand};

/// Per-lane actuation schedule: frequency steps, hotplug, cluster migration
/// and fan phases, offset per lane and by a per-case seed so the lanes (and
/// cases) genuinely diverge — diverging fan levels also force the per-lane
/// strided transition fallback.
fn lane_state(spec: &SocSpec, seed: usize, lane: usize, i: usize) -> (PlatformState, FanLevel) {
    let mut state = PlatformState::default_for(spec);
    let phase = (i + lane * 37 + seed * 13) % 400;
    if (100..180).contains(&phase) {
        state.set_core_online(ClusterKind::Big, 2, false);
    }
    if (180..260).contains(&phase) {
        state.set_cluster_frequency(ClusterKind::Big, Frequency::from_mhz(1000));
    }
    if (260..330).contains(&phase) {
        state.migrate_to_cluster(ClusterKind::Little, Frequency::from_mhz(1200));
    }
    let fan = match (i / 60 + lane + seed) % 4 {
        0 => FanLevel::Off,
        1 => FanLevel::Base,
        2 => FanLevel::Half,
        _ => FanLevel::Full,
    };
    (state, fan)
}

/// Outcome of stepping the f64 panel oracle and the f32 engine in lockstep.
struct PairRun {
    /// Worst per-node absolute trajectory divergence, °C.
    worst_temp_c: f64,
    /// Worst per-lane relative energy divergence.
    worst_energy_rel: f64,
    /// Per-interval maximum core temperature per lane, per engine
    /// (`[lane][interval]`), for decision-agreement checks.
    max_core_f64: Vec<Vec<f64>>,
    max_core_f32: Vec<Vec<f64>>,
}

/// Drives a [`PanelEngine`] (f64 oracle) and a [`MixedPanelEngine`] through
/// the same scripted scenario and measures their divergence.
fn run_pair(
    lanes: usize,
    intervals: usize,
    period_s: f64,
    ambient_c: f64,
    base_demand: Demand,
    seed: usize,
) -> PairRun {
    let spec = SocSpec::odroid_xu_e();
    let params: Vec<PlantPowerParams> = (0..lanes)
        .map(|lane| PlantPowerParams {
            leakage_mismatch: 0.95 + 0.03 * lane as f64,
            initial_temp_c: 40.0 + 2.0 * lane as f64 + (seed % 7) as f64,
            ..PlantPowerParams::default()
        })
        .collect();
    let mut oracle = PanelEngine::new(spec.clone(), &params);
    let mut mixed = MixedPanelEngine::new(spec.clone(), &params);

    let mut worst_temp_c = 0.0f64;
    let mut max_core_f64 = vec![Vec::with_capacity(intervals); lanes];
    let mut max_core_f32 = vec![Vec::with_capacity(intervals); lanes];
    let mut oracle_steps = Vec::new();
    let mut mixed_steps = Vec::new();
    let mut nodes_a = vec![0.0; oracle.node_count()];
    let mut nodes_b = vec![0.0; mixed.node_count()];
    for i in 0..intervals {
        let lane_inputs: Vec<(PlatformState, FanLevel, Demand)> = (0..lanes)
            .map(|lane| {
                let (state, fan) = lane_state(&spec, seed, lane, i);
                let demand = Demand {
                    cpu_streams: (base_demand.cpu_streams + 0.3 * lane as f64).min(4.0),
                    ..base_demand
                };
                (state, fan, demand)
            })
            .collect();
        let inputs: Vec<LaneInput<'_>> = lane_inputs
            .iter()
            .map(|(state, fan, demand)| LaneInput {
                state,
                demand,
                fan_level: *fan,
                ambient_c,
            })
            .collect();
        oracle
            .step_interval(&inputs, period_s, &mut oracle_steps)
            .unwrap();
        mixed
            .step_interval(&inputs, period_s, &mut mixed_steps)
            .unwrap();
        for lane in 0..lanes {
            let a = oracle_steps[lane].as_ref().expect("oracle lane steps");
            let b = mixed_steps[lane].as_ref().expect("mixed lane steps");
            assert_eq!(a.work_done, b.work_done, "work model must agree exactly");
            oracle.node_temps_into(lane, &mut nodes_a);
            mixed.node_temps_into(lane, &mut nodes_b);
            for (x, y) in nodes_a.iter().zip(&nodes_b) {
                worst_temp_c = worst_temp_c.max((x - y).abs());
            }
            let fold = |t: [f64; 4]| t.into_iter().fold(f64::NEG_INFINITY, f64::max);
            max_core_f64[lane].push(fold(a.core_temps_c));
            max_core_f32[lane].push(fold(b.core_temps_c));
        }
    }

    let mut worst_energy_rel = 0.0f64;
    for lane in 0..lanes {
        let a = oracle.energy_j(lane);
        let b = mixed.energy_j(lane);
        worst_energy_rel = worst_energy_rel.max((a - b).abs() / a.abs().max(1.0));
    }
    PairRun {
        worst_temp_c,
        worst_energy_rel,
        max_core_f64,
        max_core_f32,
    }
}

/// Nudges a candidate ladder threshold until no sample grazes it (within
/// 5e-3 °C — five precision budgets), so threshold-crossing decisions are
/// insensitive to sub-budget trajectory divergence. Thermal decisions in the
/// simulator sit on 0.1 °C-quantised sensor readings, far coarser than this.
fn clear_of_samples(samples: &[f64], mut candidate: f64) -> f64 {
    while samples.iter().any(|&s| (s - candidate).abs() < 5e-3) {
        candidate += 7.1e-3;
    }
    candidate
}

/// Runs one ladder over a max-core-temperature sequence and returns the rung
/// after every observation.
fn rung_sequence(config: LadderConfig, samples: &[f64]) -> Vec<platform_sim::SafetyState> {
    let mut ladder = SafetyLadder::new(config);
    let mut incidents = IncidentLog::default();
    samples
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            ladder.observe(i, i as f64 * 0.1, t, &mut incidents);
            ladder.state()
        })
        .collect()
}

proptest! {
    #[test]
    fn f32_engine_stays_inside_the_documented_budgets(
        lanes in 1usize..5,
        intervals in 40usize..240,
        period_index in 0usize..3,
        ambient_c in 20.0..36.0f64,
        cpu_streams in 0.5..4.0f64,
        activity in 0.4..1.0f64,
        gpu in 0.0..0.8f64,
        mem in 0.1..0.9f64,
        seed in 0usize..1000,
    ) {
        let period_s = [0.05, 0.1, 0.2][period_index];
        let demand = Demand {
            cpu_streams,
            activity_factor: activity,
            gpu_utilization: gpu,
            memory_intensity: mem,
            frequency_scalability: 0.9,
        };
        let run = run_pair(lanes, intervals, period_s, ambient_c, demand, seed);
        prop_assert!(
            run.worst_temp_c <= 1e-3,
            "trajectory divergence {:.3e} °C exceeds the budget \
             (lanes={lanes} intervals={intervals} period={period_s})",
            run.worst_temp_c
        );
        prop_assert!(
            run.worst_energy_rel <= 1e-4,
            "energy divergence {:.3e} exceeds the 0.01% budget",
            run.worst_energy_rel
        );

        // Constraint decisions built on the trajectories must agree exactly:
        // run a safety ladder over each engine's max core temperature with
        // trip points inside the observed range (placed clear of any sample
        // by 5e-3 °C, five budgets — real decisions quantise at 0.1 °C).
        for lane in 0..lanes {
            let samples = &run.max_core_f64[lane];
            let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let throttle_c = clear_of_samples(samples, lo + 0.45 * (hi - lo));
            let critical_c = clear_of_samples(samples, lo + 0.75 * (hi - lo)).max(throttle_c + 0.1);
            // The de-escalation release points (threshold − hysteresis) are
            // decision boundaries too: nudge the hysteresis until both sit
            // clear of every sample.
            let mut hysteresis_c = 0.3;
            while samples.iter().any(|&s| {
                (s - (throttle_c - hysteresis_c)).abs() < 5e-3
                    || (s - (critical_c - hysteresis_c)).abs() < 5e-3
            }) {
                hysteresis_c += 7.1e-3;
            }
            let config = LadderConfig {
                throttle_c,
                critical_c,
                shutdown_c: clear_of_samples(samples, hi + 5.0),
                hysteresis_c,
                min_dwell_intervals: 3,
                ..LadderConfig::default()
            };
            prop_assert_eq!(
                rung_sequence(config, samples),
                rung_sequence(config, &run.max_core_f32[lane]),
                "safety-ladder rung sequences diverged on lane {}",
                lane
            );
        }
    }
}

#[test]
fn f32_engine_holds_the_budget_over_a_paper_scale_run() {
    // 600 simulated seconds at the paper's 100 ms control period — the
    // full length of a Section 6.2 run — across a chunk-plus-remainder lane
    // count.
    let demand = Demand {
        cpu_streams: 3.5,
        activity_factor: 0.9,
        gpu_utilization: 0.4,
        memory_intensity: 0.5,
        frequency_scalability: 0.9,
    };
    let run = run_pair(9, 6000, 0.1, 28.0, demand, 1);
    assert!(
        run.worst_temp_c <= 1e-3,
        "paper-scale trajectory divergence {:.3e} °C exceeds the budget",
        run.worst_temp_c
    );
    assert!(
        run.worst_energy_rel <= 1e-4,
        "paper-scale energy divergence {:.3e} exceeds the 0.01% budget",
        run.worst_energy_rel
    );
}

fn calibration() -> &'static platform_sim::Calibration {
    static CALIBRATION: std::sync::OnceLock<platform_sim::Calibration> = std::sync::OnceLock::new();
    CALIBRATION.get_or_init(|| {
        CalibrationCampaign {
            prbs_duration_s: 120.0,
            run_furnace: false,
            ..CalibrationCampaign::default()
        }
        .run(29)
        .expect("calibration campaign must succeed")
    })
}

#[test]
fn f64_default_precision_is_bit_identical() {
    // The serde default and the explicit F64 knob must run the very same
    // engine: results agree bit for bit.
    let mut config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Dijkstra);
    config.max_duration_s = 20.0;
    assert_eq!(config.precision, EnginePrecision::F64);
    let default_run = Experiment::new(&config, calibration())
        .unwrap()
        .run()
        .unwrap();
    let explicit = config.clone().with_precision(EnginePrecision::F64);
    let explicit_run = Experiment::new(&explicit, calibration())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(default_run.energy_j, explicit_run.energy_j);
    assert_eq!(default_run.execution_time_s, explicit_run.execution_time_s);
    assert_eq!(
        default_run.mean_platform_power_w,
        explicit_run.mean_platform_power_w
    );
    assert_eq!(default_run.trace.len(), explicit_run.trace.len());
}

#[test]
fn f32_closed_loop_runs_track_f64_across_experiment_kinds() {
    // Full closed-loop runs (sensors, governors, policy feedback) under
    // every thermal-management kind: the f32 plant must complete the same
    // scenarios with near-identical outcomes. Decisions quantise sensor
    // readings at 0.1 °C, three orders above the trajectory budget, so the
    // discrete outcomes agree and energy stays within a loose closed-loop
    // bound.
    for kind in ExperimentKind::ALL {
        let mut config = ExperimentConfig::new(kind, BenchmarkId::Qsort).with_seed(17);
        config.max_duration_s = 30.0;
        let f64_run = Experiment::new(&config, calibration())
            .unwrap()
            .run()
            .unwrap();
        let f32_config = config.clone().with_precision(EnginePrecision::F32);
        let f32_run = Experiment::new(&f32_config, calibration())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(f64_run.completed, f32_run.completed, "kind {kind}");
        assert_eq!(
            f64_run.execution_time_s, f32_run.execution_time_s,
            "kind {kind}"
        );
        let rel = (f64_run.energy_j - f32_run.energy_j).abs() / f64_run.energy_j.abs().max(1.0);
        assert!(
            rel < 1e-3,
            "kind {kind}: closed-loop energy diverged by {rel:.3e}"
        );
    }
}

#[test]
fn shadow_precision_completes_and_matches_f32() {
    // F32Shadow steps the f64 twin alongside for validation: the published
    // run must be the f32 engine's (identical to plain F32), with the shadow
    // only observing.
    let mut config = ExperimentConfig::new(ExperimentKind::Reactive, BenchmarkId::Crc32);
    config.max_duration_s = 20.0;
    let f32_run = Experiment::new(
        &config.clone().with_precision(EnginePrecision::F32),
        calibration(),
    )
    .unwrap()
    .run()
    .unwrap();
    let shadow_run = Experiment::new(
        &config.with_precision(EnginePrecision::F32Shadow),
        calibration(),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(f32_run.energy_j, shadow_run.energy_j);
    assert_eq!(f32_run.execution_time_s, shadow_run.execution_time_s);
    assert_eq!(
        f32_run.mean_platform_power_w,
        shadow_run.mean_platform_power_w
    );
}

//! Equivalence proofs for the optimized simulation hot path.
//!
//! The zero-allocation engine ([`PhysicalPlant`]) must reproduce the
//! trajectories of the checked-in naive baseline ([`NaivePhysicalPlant`],
//! the original allocation-heavy loop) and the parallel scenario sweep must
//! reproduce sequential execution exactly.
//!
//! The plant comparison allows for floating-point *reassociation* only: the
//! optimized engine advances the linear thermal ODE with the precomputed
//! affine form of the RK4 step and hoists interval-constant arithmetic, which
//! reorders mathematically-identical operations. Over tens of thousands of
//! micro-steps the divergence stays below a micro-kelvin — physically the
//! same trajectory (sensor quantisation alone is 0.1 °C).

use platform_sim::{
    CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind, NaivePhysicalPlant,
    PhysicalPlant, PlantPowerParams, ScenarioSweep,
};
use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, SocSpec};
use workload::{BenchmarkId, Demand};

fn demand_phase(i: usize) -> Demand {
    match i % 3 {
        0 => Demand {
            cpu_streams: 4.0,
            activity_factor: 0.95,
            gpu_utilization: 0.0,
            memory_intensity: 0.5,
            frequency_scalability: 1.0,
        },
        1 => Demand {
            cpu_streams: 1.5,
            activity_factor: 0.5,
            gpu_utilization: 0.7,
            memory_intensity: 0.3,
            frequency_scalability: 0.8,
        },
        _ => Demand {
            cpu_streams: 2.5,
            activity_factor: 0.75,
            gpu_utilization: 0.2,
            memory_intensity: 0.8,
            frequency_scalability: 0.9,
        },
    }
}

fn fan_phase(i: usize) -> FanLevel {
    match (i / 50) % 4 {
        0 => FanLevel::Off,
        1 => FanLevel::Base,
        2 => FanLevel::Half,
        _ => FanLevel::Full,
    }
}

#[test]
fn optimized_plant_tracks_naive_baseline_trajectories() {
    let spec = SocSpec::odroid_xu_e();
    let mut optimized = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut naive = NaivePhysicalPlant::new(spec.clone(), PlantPowerParams::default());

    let mut state = PlatformState::default_for(&spec);
    let mut worst_temp = 0.0f64;
    let mut worst_power = 0.0f64;
    for i in 0..3000 {
        // Exercise every actuation path: fan steps, frequency changes, core
        // shutdown phases and a little-cluster migration phase.
        if i == 800 {
            state.set_core_online(ClusterKind::Big, 2, false);
        }
        if i == 1200 {
            state.set_core_online(ClusterKind::Big, 2, true);
            state.set_cluster_frequency(ClusterKind::Big, Frequency::from_mhz(1000));
        }
        if i == 1800 {
            state.migrate_to_cluster(ClusterKind::Little, Frequency::from_mhz(1200));
        }
        if i == 2300 {
            state.migrate_to_cluster(ClusterKind::Big, Frequency::from_mhz(1600));
        }
        let demand = demand_phase(i);
        let fan = fan_phase(i);

        let fast = optimized
            .step_interval(&state, &demand, fan, 28.0, 0.1)
            .unwrap();
        let slow = naive
            .step_interval(&state, &demand, fan, 28.0, 0.1)
            .unwrap();

        for (a, b) in optimized
            .node_temps_c()
            .iter()
            .zip(naive.node_temps_c().iter())
        {
            worst_temp = worst_temp.max((a - b).abs());
        }
        worst_power = worst_power.max((fast.platform_power_w - slow.platform_power_w).abs());
        assert_eq!(
            fast.work_done, slow.work_done,
            "work model must agree exactly"
        );
    }

    // 30 000 micro-steps of reassociated-but-identical arithmetic: the
    // engines must agree far below any physically meaningful scale.
    assert!(
        worst_temp < 1e-6,
        "trajectories diverged: max |dT| = {worst_temp} degC"
    );
    assert!(
        worst_power < 1e-6,
        "power outputs diverged: max |dP| = {worst_power} W"
    );
}

#[test]
fn scenario_sweep_matches_sequential_runs() {
    let campaign = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    };
    let calibration = campaign.run(11).unwrap();

    let configs: Vec<ExperimentConfig> = [
        (ExperimentKind::Dtpm, BenchmarkId::Dijkstra, 1),
        (ExperimentKind::DefaultWithFan, BenchmarkId::Blowfish, 2),
        (ExperimentKind::Reactive, BenchmarkId::MatrixMult, 3),
        (ExperimentKind::WithoutFan, BenchmarkId::Qsort, 4),
        (ExperimentKind::Dtpm, BenchmarkId::Templerun, 5),
    ]
    .into_iter()
    .map(|(kind, benchmark, seed)| {
        let mut config = ExperimentConfig::new(kind, benchmark).with_seed(seed);
        config.max_duration_s = 20.0;
        config
    })
    .collect();

    let sweep = ScenarioSweep::new(configs.clone()).with_threads(4);
    assert!(sweep.threads() >= 1);
    assert_eq!(sweep.configs().len(), configs.len());
    let parallel = sweep.run(&calibration);

    for (config, result) in configs.iter().zip(parallel) {
        let sequential = Experiment::new(config.clone(), &calibration)
            .unwrap()
            .run()
            .unwrap();
        let result = result.expect("sweep run must succeed");
        // Bit-exact determinism: the sweep runs the very same simulation.
        assert_eq!(result.config, sequential.config);
        assert_eq!(result.execution_time_s, sequential.execution_time_s);
        assert_eq!(result.energy_j, sequential.energy_j);
        assert_eq!(
            result.mean_platform_power_w,
            sequential.mean_platform_power_w
        );
        assert_eq!(result.trace.len(), sequential.trace.len());
    }
}

#[test]
fn sweep_handles_empty_and_single_configuration() {
    let campaign = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    };
    let calibration = campaign.run(3).unwrap();

    assert!(ScenarioSweep::new(Vec::new()).run(&calibration).is_empty());

    let mut config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Crc32);
    config.max_duration_s = 10.0;
    let results = ScenarioSweep::new(vec![config]).run(&calibration);
    assert_eq!(results.len(), 1);
    assert!(results[0].is_ok());
}

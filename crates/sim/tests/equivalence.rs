//! Equivalence proofs for the optimized simulation hot paths.
//!
//! The zero-allocation engine ([`PhysicalPlant`]) must reproduce the
//! trajectories of the checked-in naive baseline ([`NaivePhysicalPlant`],
//! the original allocation-heavy loop), the structure-of-arrays batch engine
//! ([`BatchPlant`]) must reproduce the scalar plant lane by lane, and the
//! parallel scenario sweep must reproduce sequential execution exactly.
//!
//! The plant comparisons allow for floating-point *reassociation* only: the
//! optimized engines advance the linear thermal ODE with the precomputed
//! affine form of the RK4 step and hoist interval-constant arithmetic, which
//! reorders mathematically-identical operations (the batch engine
//! additionally evaluates leakage with an anchored exponential accurate to a
//! few ulps). Over tens of thousands of micro-steps the divergence stays far
//! below a nano-kelvin per the batched bars here — physically the same
//! trajectory (sensor quantisation alone is 0.1 °C).

use platform_sim::{
    run_lockstep, BatchPlant, CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind,
    LaneInput, NaivePhysicalPlant, PhysicalPlant, PlantPowerParams, ScenarioSweep,
};
use proptest::prelude::*;
use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, SocSpec};
use workload::{BenchmarkId, Demand};

fn demand_phase(i: usize) -> Demand {
    match i % 3 {
        0 => Demand {
            cpu_streams: 4.0,
            activity_factor: 0.95,
            gpu_utilization: 0.0,
            memory_intensity: 0.5,
            frequency_scalability: 1.0,
        },
        1 => Demand {
            cpu_streams: 1.5,
            activity_factor: 0.5,
            gpu_utilization: 0.7,
            memory_intensity: 0.3,
            frequency_scalability: 0.8,
        },
        _ => Demand {
            cpu_streams: 2.5,
            activity_factor: 0.75,
            gpu_utilization: 0.2,
            memory_intensity: 0.8,
            frequency_scalability: 0.9,
        },
    }
}

fn fan_phase(i: usize) -> FanLevel {
    match (i / 50) % 4 {
        0 => FanLevel::Off,
        1 => FanLevel::Base,
        2 => FanLevel::Half,
        _ => FanLevel::Full,
    }
}

#[test]
fn optimized_plant_tracks_naive_baseline_trajectories() {
    let spec = SocSpec::odroid_xu_e();
    let mut optimized = PhysicalPlant::new(spec.clone(), PlantPowerParams::default());
    let mut naive = NaivePhysicalPlant::new(spec.clone(), PlantPowerParams::default());

    let mut state = PlatformState::default_for(&spec);
    let mut worst_temp = 0.0f64;
    let mut worst_power = 0.0f64;
    for i in 0..3000 {
        // Exercise every actuation path: fan steps, frequency changes, core
        // shutdown phases and a little-cluster migration phase.
        if i == 800 {
            state.set_core_online(ClusterKind::Big, 2, false);
        }
        if i == 1200 {
            state.set_core_online(ClusterKind::Big, 2, true);
            state.set_cluster_frequency(ClusterKind::Big, Frequency::from_mhz(1000));
        }
        if i == 1800 {
            state.migrate_to_cluster(ClusterKind::Little, Frequency::from_mhz(1200));
        }
        if i == 2300 {
            state.migrate_to_cluster(ClusterKind::Big, Frequency::from_mhz(1600));
        }
        let demand = demand_phase(i);
        let fan = fan_phase(i);

        let fast = optimized
            .step_interval(&state, &demand, fan, 28.0, 0.1)
            .unwrap();
        let slow = naive
            .step_interval(&state, &demand, fan, 28.0, 0.1)
            .unwrap();

        for (a, b) in optimized
            .node_temps_c()
            .iter()
            .zip(naive.node_temps_c().iter())
        {
            worst_temp = worst_temp.max((a - b).abs());
        }
        worst_power = worst_power.max((fast.platform_power_w - slow.platform_power_w).abs());
        assert_eq!(
            fast.work_done, slow.work_done,
            "work model must agree exactly"
        );
    }

    // 30 000 micro-steps of reassociated-but-identical arithmetic: the
    // engines must agree far below any physically meaningful scale.
    assert!(
        worst_temp < 1e-6,
        "trajectories diverged: max |dT| = {worst_temp} degC"
    );
    assert!(
        worst_power < 1e-6,
        "power outputs diverged: max |dP| = {worst_power} W"
    );
}

#[test]
fn scenario_sweep_matches_sequential_runs() {
    let campaign = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    };
    let calibration = campaign.run(11).unwrap();

    let configs: Vec<ExperimentConfig> = [
        (ExperimentKind::Dtpm, BenchmarkId::Dijkstra, 1),
        (ExperimentKind::DefaultWithFan, BenchmarkId::Blowfish, 2),
        (ExperimentKind::Reactive, BenchmarkId::MatrixMult, 3),
        (ExperimentKind::WithoutFan, BenchmarkId::Qsort, 4),
        (ExperimentKind::Dtpm, BenchmarkId::Templerun, 5),
    ]
    .into_iter()
    .map(|(kind, benchmark, seed)| {
        let mut config = ExperimentConfig::new(kind, benchmark).with_seed(seed);
        config.max_duration_s = 20.0;
        config
    })
    .collect();

    let sweep = ScenarioSweep::new(configs.clone()).with_threads(4);
    assert!(sweep.threads() >= 1);
    assert_eq!(sweep.configs().len(), configs.len());
    let parallel = sweep.run(&calibration);

    for (config, result) in configs.iter().zip(parallel) {
        let sequential = Experiment::new(config, &calibration)
            .unwrap()
            .run()
            .unwrap();
        let result = result.expect("sweep run must succeed");
        // Bit-exact determinism: the sweep runs the very same simulation.
        assert_eq!(result.config, sequential.config);
        assert_eq!(result.execution_time_s, sequential.execution_time_s);
        assert_eq!(result.energy_j, sequential.energy_j);
        assert_eq!(
            result.mean_platform_power_w,
            sequential.mean_platform_power_w
        );
        assert_eq!(result.trace.len(), sequential.trace.len());
    }
}

/// Per-lane platform state driven through frequency, hotplug, migration and
/// fan phases, offset per lane so the lanes genuinely diverge.
fn lane_state(spec: &SocSpec, lane: usize, i: usize) -> (PlatformState, FanLevel) {
    let mut state = PlatformState::default_for(spec);
    let phase = (i + lane * 37) % 400;
    if (100..180).contains(&phase) {
        state.set_core_online(ClusterKind::Big, 2, false);
    }
    if (180..260).contains(&phase) {
        state.set_cluster_frequency(ClusterKind::Big, Frequency::from_mhz(1000));
    }
    if (260..330).contains(&phase) {
        state.migrate_to_cluster(ClusterKind::Little, Frequency::from_mhz(1200));
    }
    let fan = match (i / 60 + lane) % 4 {
        0 => FanLevel::Off,
        1 => FanLevel::Base,
        2 => FanLevel::Half,
        _ => FanLevel::Full,
    };
    (state, fan)
}

#[test]
fn batch_plant_matches_scalar_trajectories_for_mixed_lane_counts() {
    // Lane counts covering the scalar case, a partial chunk, a full 8-lane
    // chunk and a chunk-plus-remainder; every lane follows its own actuation
    // schedule (including diverging fan levels, which force the per-lane
    // strided transition fallback).
    let spec = SocSpec::odroid_xu_e();
    for lanes in [1usize, 3, 8, 11] {
        let params: Vec<PlantPowerParams> = (0..lanes)
            .map(|lane| PlantPowerParams {
                leakage_mismatch: 1.0 + 0.02 * lane as f64,
                initial_temp_c: 45.0 + lane as f64,
                ..PlantPowerParams::default()
            })
            .collect();
        let mut batch = BatchPlant::new(spec.clone(), &params);
        let mut scalars: Vec<PhysicalPlant> = params
            .iter()
            .map(|p| PhysicalPlant::new(spec.clone(), *p))
            .collect();

        for i in 0..800 {
            let lane_inputs: Vec<(PlatformState, FanLevel, Demand)> = (0..lanes)
                .map(|lane| {
                    let (state, fan) = lane_state(&spec, lane, i);
                    (state, fan, demand_phase(i + lane))
                })
                .collect();
            let inputs: Vec<LaneInput<'_>> = lane_inputs
                .iter()
                .map(|(state, fan, demand)| LaneInput {
                    state,
                    demand,
                    fan_level: *fan,
                    ambient_c: 28.0,
                })
                .collect();
            let batch_steps = batch.step_interval(&inputs, 0.1).unwrap();
            for (lane, ((state, fan, demand), batch_step)) in
                lane_inputs.iter().zip(batch_steps).enumerate()
            {
                let scalar_step = scalars[lane]
                    .step_interval(state, demand, *fan, 28.0, 0.1)
                    .unwrap();
                let batch_step = batch_step.expect("lane step succeeds");
                assert_eq!(
                    batch_step.work_done, scalar_step.work_done,
                    "work model must agree exactly (lanes={lanes} lane={lane})"
                );
                assert!(
                    (batch_step.platform_power_w - scalar_step.platform_power_w).abs() < 1e-9,
                    "power diverged at lanes={lanes} lane={lane} interval {i}"
                );
            }
        }

        let mut batch_temps = vec![0.0; batch.node_count()];
        for (lane, scalar) in scalars.iter().enumerate() {
            batch.node_temps_into(lane, &mut batch_temps);
            for (node, (a, b)) in batch_temps
                .iter()
                .zip(scalar.node_temps_c().iter())
                .enumerate()
            {
                assert!(
                    (a - b).abs() < 1e-9,
                    "lanes={lanes} lane={lane} node={node}: batched {a} vs scalar {b}"
                );
            }
        }
    }
}

#[test]
fn lockstep_runner_matches_scalar_experiments() {
    let campaign = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    };
    let calibration = campaign.run(19).unwrap();

    let configs: Vec<ExperimentConfig> = [
        (ExperimentKind::Dtpm, BenchmarkId::Dijkstra, 21),
        (ExperimentKind::DefaultWithFan, BenchmarkId::Blowfish, 22),
        (ExperimentKind::WithoutFan, BenchmarkId::Qsort, 23),
        (ExperimentKind::Reactive, BenchmarkId::Templerun, 24),
    ]
    .into_iter()
    .map(|(kind, benchmark, seed)| {
        let mut config = ExperimentConfig::new(kind, benchmark).with_seed(seed);
        config.max_duration_s = 15.0;
        config
    })
    .collect();

    let lockstep = run_lockstep(&configs, &calibration);
    assert_eq!(lockstep.len(), configs.len());
    for (config, result) in configs.iter().zip(lockstep) {
        let result = result.expect("lockstep run must succeed");
        let sequential = Experiment::new(config, &calibration)
            .unwrap()
            .run()
            .unwrap();
        // The control loops are identical state machines; only the plant
        // integration is batched (reassociated leakage at ~1e-13 °C), so the
        // discrete outcomes must agree exactly and the continuous ones to
        // far below sensor resolution.
        assert_eq!(result.config, sequential.config);
        assert_eq!(result.execution_time_s, sequential.execution_time_s);
        assert_eq!(result.completed, sequential.completed);
        assert_eq!(result.trace.len(), sequential.trace.len());
        assert!(
            (result.energy_j - sequential.energy_j).abs()
                <= 1e-6 * sequential.energy_j.abs().max(1.0),
            "energy diverged: {} vs {}",
            result.energy_j,
            sequential.energy_j
        );
        assert!(
            (result.mean_platform_power_w - sequential.mean_platform_power_w).abs() < 1e-6,
            "mean power diverged: {} vs {}",
            result.mean_platform_power_w,
            sequential.mean_platform_power_w
        );
    }
}

#[test]
fn lockstep_runner_falls_back_for_mixed_control_periods() {
    let campaign = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    };
    let calibration = campaign.run(5).unwrap();

    let mut fast = ExperimentConfig::new(ExperimentKind::WithoutFan, BenchmarkId::Crc32);
    fast.max_duration_s = 5.0;
    let mut slow = fast.clone();
    slow.control_period_s = 0.2;
    let results = run_lockstep(&[fast.clone(), slow.clone()], &calibration);
    assert_eq!(results.len(), 2);
    let a = results[0].as_ref().expect("fast config runs");
    let b = results[1].as_ref().expect("slow config runs");
    assert_eq!(a.config, fast);
    assert_eq!(b.config, slow);
}

fn sweep_calibration() -> &'static platform_sim::Calibration {
    static CALIBRATION: std::sync::OnceLock<platform_sim::Calibration> = std::sync::OnceLock::new();
    CALIBRATION.get_or_init(|| {
        CalibrationCampaign {
            prbs_duration_s: 120.0,
            run_furnace: false,
            ..CalibrationCampaign::default()
        }
        .run(13)
        .expect("calibration campaign must succeed")
    })
}

proptest! {
    #[test]
    fn sweep_returns_results_in_input_order_for_any_thread_and_lane_count(
        threads in 1usize..5,
        lanes in 1usize..6,
        count in 1usize..9,
    ) {
        let calibration = sweep_calibration();
        let kinds = [
            ExperimentKind::WithoutFan,
            ExperimentKind::DefaultWithFan,
            ExperimentKind::Reactive,
            ExperimentKind::Dtpm,
        ];
        let benchmarks = [BenchmarkId::Crc32, BenchmarkId::Qsort, BenchmarkId::Dijkstra];
        let configs: Vec<ExperimentConfig> = (0..count)
            .map(|i| {
                let mut config = ExperimentConfig::new(
                    kinds[i % kinds.len()],
                    benchmarks[i % benchmarks.len()],
                )
                .with_seed(100 + i as u64);
                config.max_duration_s = 2.0;
                config
            })
            .collect();
        let results = ScenarioSweep::new(configs.clone())
            .with_threads(threads)
            .with_lanes(lanes)
            .run(calibration);
        prop_assert_eq!(results.len(), configs.len());
        for (config, result) in configs.iter().zip(&results) {
            let result = result.as_ref().expect("sweep run must succeed");
            // Seeds are unique per input slot, so config equality pins order.
            prop_assert_eq!(&result.config, config);
        }
    }
}

#[test]
fn sweep_handles_empty_and_single_configuration() {
    let campaign = CalibrationCampaign {
        prbs_duration_s: 120.0,
        run_furnace: false,
        ..CalibrationCampaign::default()
    };
    let calibration = campaign.run(3).unwrap();

    assert!(ScenarioSweep::new(Vec::new()).run(&calibration).is_empty());

    let mut config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Crc32);
    config.max_duration_s = 10.0;
    let results = ScenarioSweep::new(vec![config]).run(&calibration);
    assert_eq!(results.len(), 1);
    assert!(results[0].is_ok());
}

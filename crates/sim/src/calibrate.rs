//! The characterisation campaign: furnace sweep + PRBS system identification.
//!
//! Before the DTPM algorithm can run, the paper characterises the platform
//! once (Chapter 4): the leakage model is fitted to furnace measurements and
//! the thermal state-space model is identified from PRBS excitation of each
//! power source. [`CalibrationCampaign::run`] performs both campaigns against
//! the simulated plant and returns the [`Calibration`] every experiment uses.

use dtpm::ThermalPredictor;
use governors::{CpufreqGovernor, UserspaceGovernor};
use numeric::Vector;
use power_model::{ActivityEstimator, DomainPowerModel, LeakageModel, PowerModel};
use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, Frequency, PlatformState, PowerDomain, SocSpec};
use sysid::{
    identify, n_step_prediction, IdentificationDataset, IdentificationOptions, PrbsConfig,
    PrbsSignal, PredictionErrorReport,
};
use workload::Demand;

use crate::plant::{PhysicalPlant, PlantPowerParams};
use crate::sensors::SensorSuite;
use crate::SimError;

/// The characterised models used by the experiments.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Run-time power model (leakage from the furnace fit + fresh activity
    /// estimators).
    pub power_model: PowerModel,
    /// Identified thermal predictor.
    pub predictor: ThermalPredictor,
    /// Validation report of the identified model at the 1 s prediction horizon
    /// on held-out data.
    pub validation: PredictionErrorReport,
}

/// Configuration of the characterisation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCampaign {
    /// Ambient temperature during the identification experiments, °C.
    pub ambient_c: f64,
    /// Control interval (sampling period of the logged data), seconds.
    pub control_period_s: f64,
    /// Duration of each per-domain PRBS experiment, seconds (the paper's
    /// big-cluster experiment in Figure 4.8 runs for ~1050 s).
    pub prbs_duration_s: f64,
    /// PRBS bit hold time in control intervals.
    pub prbs_hold_intervals: usize,
    /// Whether to run the furnace characterisation (otherwise the nominal
    /// leakage parameters are kept).
    pub run_furnace: bool,
    /// Fraction of the identification data used for fitting (the rest
    /// validates the model).
    pub train_fraction: f64,
    /// Plant parameters (the "true" silicon being characterised).
    pub plant: PlantPowerParams,
    /// Use ideal sensors for the campaign instead of the noisy chain.
    pub ideal_sensors: bool,
}

impl Default for CalibrationCampaign {
    fn default() -> Self {
        CalibrationCampaign {
            ambient_c: 28.0,
            control_period_s: 0.1,
            prbs_duration_s: 700.0,
            prbs_hold_intervals: 20,
            run_furnace: true,
            train_fraction: 0.7,
            plant: PlantPowerParams::default(),
            ideal_sensors: false,
        }
    }
}

impl CalibrationCampaign {
    /// Runs the furnace sweep and the PRBS identification experiments.
    ///
    /// # Errors
    ///
    /// Returns an error if the campaign parameters are invalid, the furnace
    /// fit fails, or no stable thermal model can be identified.
    pub fn run(&self, seed: u64) -> Result<Calibration, SimError> {
        if !(self.control_period_s > 0.0) || !(self.prbs_duration_s > self.control_period_s) {
            return Err(SimError::InvalidConfig(
                "calibration timing parameters must be positive",
            ));
        }
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return Err(SimError::InvalidConfig(
                "train fraction must be strictly between 0 and 1",
            ));
        }

        let spec = SocSpec::odroid_xu_e().with_ambient_c(self.ambient_c);
        let power_model = self.build_power_model(&spec, seed)?;
        let dataset = self.run_identification_experiments(&spec, seed)?;

        let (train, test) = dataset.split(self.train_fraction)?;
        let model = identify_with_retries(&train)?;
        let horizon = (1.0 / self.control_period_s).round() as usize;
        let validation = n_step_prediction(&model, &test, horizon)?;
        let predictor = ThermalPredictor::new(model, self.ambient_c)?;

        Ok(Calibration {
            power_model,
            predictor,
            validation,
        })
    }

    /// Builds the run-time power model, running the furnace characterisation
    /// of the big cluster's leakage when enabled.
    fn build_power_model(&self, spec: &SocSpec, seed: u64) -> Result<PowerModel, SimError> {
        let mut model = PowerModel::exynos5410_defaults();
        if !self.run_furnace {
            return Ok(model);
        }

        // Light characterisation workload pinned to a fixed frequency/voltage:
        // one barely-active stream, everything else quiet (Section 4.1.1).
        let freq = Frequency::from_mhz(1600);
        let volts = spec.big_opps().voltage_for(freq)?;
        let mut state = PlatformState::default_for(spec);
        state.big_frequency = freq;
        let demand = Demand {
            cpu_streams: 0.5,
            activity_factor: 0.10,
            gpu_utilization: 0.0,
            memory_intensity: 0.1,
            frequency_scalability: 1.0,
        };

        let mut samples = Vec::new();
        let mut dynamic_w = 0.0;
        for (i, &setpoint) in power_model::FurnaceDataset::PAPER_SWEEP_C
            .iter()
            .enumerate()
        {
            let furnace_spec = spec.clone().with_ambient_c(setpoint);
            let mut plant = PhysicalPlant::new(furnace_spec, self.plant);
            // Soak the board at the furnace setpoint.
            plant.reset_temps(setpoint);
            let mut sensors = if self.ideal_sensors {
                SensorSuite::ideal(seed.wrapping_add(i as u64))
            } else {
                SensorSuite::odroid_defaults(seed.wrapping_add(i as u64))
            };
            // Let the die settle above the furnace ambient, then log samples.
            let mut temp_sum = 0.0;
            let mut power_sum = 0.0;
            let mut count = 0usize;
            let settle_steps = (120.0 / self.control_period_s) as usize;
            let sample_steps = (200.0 / self.control_period_s) as usize;
            for step_idx in 0..(settle_steps + sample_steps) {
                let step = plant.step_interval(
                    &state,
                    &demand,
                    soc_model::FanLevel::Off,
                    setpoint,
                    self.control_period_s,
                )?;
                if step_idx >= settle_steps {
                    let reading = sensors.sample(
                        step.core_temps_c,
                        &step.domain_power,
                        step.platform_power_w,
                    );
                    temp_sum += reading.max_core_temp_c();
                    power_sum += reading.domain_power.big_w;
                    count += 1;
                }
            }
            samples.push((temp_sum / count as f64, power_sum / count as f64));
            // The constant dynamic power of the pinned characterisation
            // workload is known from αCV²f (the paper's assumption); it is the
            // same at every setpoint, so compute it once.
            if i == 0 {
                dynamic_w = plant.true_dynamic_power_w(&state, &demand)?;
            }
        }

        let fitted = LeakageModel::fit_from_furnace(&samples, volts, dynamic_w)?;
        *model.domain_mut(PowerDomain::BigCpu) = DomainPowerModel::new(
            PowerDomain::BigCpu,
            fitted,
            ActivityEstimator::for_cpu_cluster(),
        );
        Ok(model)
    }

    /// Runs one PRBS excitation experiment per power source and concatenates
    /// the logs into a single identification dataset (Section 4.2.1).
    fn run_identification_experiments(
        &self,
        spec: &SocSpec,
        seed: u64,
    ) -> Result<IdentificationDataset, SimError> {
        let mut dataset = IdentificationDataset::new(
            4,
            PowerDomain::COUNT,
            self.control_period_s,
            self.ambient_c,
        )?;
        let steps = (self.prbs_duration_s / self.control_period_s).round() as usize;

        for (experiment_index, target) in PowerDomain::ALL.into_iter().enumerate() {
            let prbs = PrbsSignal::generate(
                PrbsConfig {
                    register_bits: 11,
                    hold_intervals: self.prbs_hold_intervals,
                    low: 0.0,
                    high: 1.0,
                    seed: 0x23 + experiment_index as u32 * 97,
                },
                steps,
            )?;
            let mut plant = PhysicalPlant::new(spec.clone(), self.plant);
            let mut sensors = if self.ideal_sensors {
                SensorSuite::ideal(seed.wrapping_add(1000 + experiment_index as u64))
            } else {
                SensorSuite::odroid_defaults(seed.wrapping_add(1000 + experiment_index as u64))
            };
            let mut governor = UserspaceGovernor::new(spec.big_opps().lowest().frequency);

            for &bit in prbs.values() {
                let (state, demand) = self.excitation_point(spec, target, bit, &mut governor);
                let step = plant.step_interval(
                    &state,
                    &demand,
                    soc_model::FanLevel::Off,
                    self.ambient_c,
                    self.control_period_s,
                )?;
                let reading =
                    sensors.sample(step.core_temps_c, &step.domain_power, step.platform_power_w);
                dataset.push(
                    Vector::from_slice(&reading.core_temps_c),
                    Vector::from_slice(&reading.domain_power.to_vec()),
                )?;
            }
        }
        Ok(dataset)
    }

    /// The platform state and workload demand used to excite one power source
    /// with a PRBS bit (all other sources held low/constant).
    fn excitation_point(
        &self,
        spec: &SocSpec,
        target: PowerDomain,
        bit: f64,
        governor: &mut UserspaceGovernor,
    ) -> (PlatformState, Demand) {
        let mut state = PlatformState::default_for(spec);
        let high = bit > 0.5;
        let mut demand = Demand {
            cpu_streams: 0.3,
            activity_factor: 0.2,
            gpu_utilization: 0.0,
            memory_intensity: 0.1,
            frequency_scalability: 1.0,
        };
        match target {
            PowerDomain::BigCpu => {
                // Oscillate the big-cluster frequency between min and max with a
                // busy workload (Figure 4.8).
                let freq = if high {
                    spec.big_opps().highest().frequency
                } else {
                    spec.big_opps().lowest().frequency
                };
                governor.set_frequency(freq);
                state.big_frequency = governor.select_frequency(
                    &governors::GovernorInput {
                        load: 1.0,
                        current: state.big_frequency,
                    },
                    spec.big_opps(),
                );
                demand.cpu_streams = 4.0;
                demand.activity_factor = if high { 0.75 } else { 0.55 };
            }
            PowerDomain::LittleCpu => {
                state.migrate_to_cluster(
                    ClusterKind::Little,
                    if high {
                        spec.little_opps().highest().frequency
                    } else {
                        spec.little_opps().lowest().frequency
                    },
                );
                demand.cpu_streams = 4.0;
                demand.activity_factor = if high { 0.8 } else { 0.4 };
            }
            PowerDomain::Gpu => {
                state.big_frequency = spec.big_opps().lowest().frequency;
                state.gpu_frequency = if high {
                    spec.gpu_opps().highest().frequency
                } else {
                    spec.gpu_opps().lowest().frequency
                };
                demand.gpu_utilization = if high { 0.9 } else { 0.1 };
            }
            PowerDomain::Memory => {
                state.big_frequency = spec.big_opps().lowest().frequency;
                demand.memory_intensity = if high { 0.95 } else { 0.05 };
            }
        }
        (state, demand)
    }
}

/// Identifies the thermal model, retrying with progressively stronger ridge
/// regularisation if the unregularised fit is unstable (which can happen when
/// sensor noise makes the nearly-collinear core temperatures look independent).
fn identify_with_retries(
    train: &IdentificationDataset,
) -> Result<thermal_model::DiscreteThermalModel, SimError> {
    let mut last_err = None;
    for lambda in [1e-9, 1e-4, 1e-2, 1.0, 100.0] {
        let options = IdentificationOptions {
            ridge_lambda: lambda,
            require_stable: true,
        };
        match identify(train, &options) {
            Ok(model) => return Ok(model),
            Err(err) => last_err = Some(err),
        }
    }
    Err(SimError::Identification(format!(
        "no stable model found: {}",
        last_err.expect("at least one attempt was made")
    )))
}

impl PhysicalPlant {
    /// True dynamic power of the big cluster for a pinned state and demand —
    /// the `αCV²f` value of the characterisation workload, which the paper
    /// treats as known during the furnace experiment.
    pub fn true_dynamic_power_w(
        &self,
        state: &PlatformState,
        demand: &Demand,
    ) -> Result<f64, SimError> {
        let spec = SocSpec::odroid_xu_e();
        let volts = spec.big_opps().voltage_for(state.big_frequency)?.volts();
        let v2f = volts * volts * state.big_frequency.hz();
        let mut dynamic = self.params().big_uncore_ceff_f * v2f;
        let online = state.online_core_count(ClusterKind::Big) as f64;
        let busy = demand.cpu_streams.min(online);
        dynamic += self.params().big_core_ceff_f * demand.activity_factor * busy * v2f;
        Ok(dynamic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quick campaign used by the tests (shorter PRBS, ideal sensors).
    fn quick_campaign() -> CalibrationCampaign {
        CalibrationCampaign {
            prbs_duration_s: 240.0,
            run_furnace: false,
            ideal_sensors: true,
            ..CalibrationCampaign::default()
        }
    }

    #[test]
    fn quick_campaign_identifies_a_stable_accurate_model() {
        let calibration = quick_campaign().run(11).unwrap();
        assert!(calibration.predictor.model().is_stable());
        // The paper reports < 3% average error at the 1 s horizon; the quick
        // campaign with ideal sensors should do well under that.
        assert!(
            calibration.validation.mean_percent_error < 3.0,
            "mean 1 s prediction error {:.2}%",
            calibration.validation.mean_percent_error
        );
        assert_eq!(calibration.validation.horizon_steps, 10);
    }

    #[test]
    fn furnace_campaign_fits_a_temperature_sensitive_leakage_model() {
        let campaign = CalibrationCampaign {
            prbs_duration_s: 180.0,
            run_furnace: true,
            ideal_sensors: true,
            ..CalibrationCampaign::default()
        };
        let calibration = campaign.run(3).unwrap();
        let leak = calibration
            .power_model
            .domain(PowerDomain::BigCpu)
            .leakage();
        let v = soc_model::Voltage::from_volts(1.2);
        let cool = leak.power_w(v, 42.0);
        let hot = leak.power_w(v, 82.0);
        assert!(
            hot > 1.8 * cool,
            "fitted leakage not temperature sensitive: {cool} -> {hot}"
        );
    }

    #[test]
    fn invalid_campaign_parameters_are_rejected() {
        let mut campaign = quick_campaign();
        campaign.train_fraction = 1.5;
        assert!(campaign.run(1).is_err());
        let mut campaign = quick_campaign();
        campaign.prbs_duration_s = 0.0;
        assert!(campaign.run(1).is_err());
    }
}

//! Closed-loop co-simulation of the Odroid-XU+E platform.
//!
//! This crate stands in for the physical test bench of the paper (Figure 6.1):
//! the Odroid-XU+E board, its power/temperature sensors, the external power
//! meter, the temperature furnace and the Android software stack. It wires the
//! substrate crates into a closed loop running at the kernel's 100 ms control
//! interval:
//!
//! ```text
//!  workload ──► governors (ondemand + hotplug) ──► proposed configuration
//!                                                        │
//!            DTPM / fan / reactive baseline  ◄── sensors ─┤
//!                     │                                   │
//!                     ▼                                   │
//!  platform state ──► physical plant (power + RC thermal network) ──► sensors
//! ```
//!
//! * [`plant`] — the "silicon": converts the platform state and workload
//!   demand into true per-domain powers (with parameters deliberately
//!   different from the characterised power model) and integrates the
//!   eight-node RC thermal network.
//! * [`sensors`] — sampling, quantisation and noise for the on-board sensors
//!   and the external power meter.
//! * [`experiment`] — the four experimental configurations of Section 6.2
//!   (default with fan, without fan, reactive heuristic, proposed DTPM) and
//!   the simulation engine that runs a benchmark under one of them.
//! * [`calibrate`] — the characterisation campaign: the furnace sweep for the
//!   leakage model and the per-domain PRBS experiments for system
//!   identification, producing the [`dtpm::ThermalPredictor`] the DTPM
//!   configuration uses.
//! * [`trace`], [`metrics`] — per-interval logging, CSV export and the
//!   power/performance/stability summaries the figures are built from.
//! * [`observer`] — the streaming result seam: every absorbed interval flows
//!   through a [`observer::RunObserver`] (full-trace, decimated, or
//!   summary-only retention) and every run produces an O(1)
//!   [`metrics::RunSummary`] from online accumulators.
//! * [`campaign`] — declarative sweep campaigns: a serde-able
//!   [`campaign::SweepSpec`] grid (kinds × benchmarks × ambients ×
//!   replicates × DTPM variants) expanded lazily with deterministic per-cell
//!   seeds and streamed through the compacting sweep into a
//!   [`experiment::ResultSink`].
//! * [`faults`] — seed-deterministic sensor fault injection: a serde-able
//!   [`faults::FaultPlan`] of per-channel fault windows (stuck-at, dropped,
//!   offset drift, spikes, delayed readings) applied to the *measured*
//!   chain by a [`faults::FaultInjector`], and exposed as a
//!   [`campaign::SweepSpec`] grid axis.
//! * [`safety`] — the robustness layer above any policy: the thermal
//!   [`safety::SafetyLadder`] (Normal → Throttle → Critical →
//!   SimulatedShutdown with hysteresis de-escalation), the
//!   [`safety::SensorHealth`] monitor (plausibility screening, last-known-
//!   good substitution, policy demotion/promotion), and the structured
//!   [`safety::IncidentLog`] both record into.
//! * [`engine`] — the pluggable [`engine::PlantEngine`] backend seam: the
//!   per-interval plant contract (admit a lane, step all lanes, read per-lane
//!   temperatures and accumulated energy) with the scalar
//!   ([`engine::ScalarEngine`]) and structure-of-arrays
//!   ([`engine::PanelEngine`]) implementations.
//! * [`experiment::ScenarioSweep`] — runs many independent experiment
//!   configurations across `std::thread::scope` workers (deterministic,
//!   input-order results); with [`experiment::ScenarioSweep::with_lanes`]
//!   each worker drives a batched engine whose lanes are *recycled* from a
//!   shared scenario queue (the lane-compacting scheduler), for
//!   `threads × lanes` total parallelism.
//! * [`batch`] — the structure-of-arrays [`batch::BatchPlant`]: K plants
//!   advanced in lockstep, one scenario per panel column.
//! * [`naive`] — the checked-in naive baseline of the plant integrator, kept
//!   for benchmarking and trajectory-equivalence tests.
//! * [`resilience`] — the robustness layer for long campaigns: atomic
//!   checkpoint/resume ([`resilience::CampaignCheckpoint`] /
//!   [`resilience::CheckpointSink`]), deterministic shard merge
//!   ([`resilience::ShardSpec`] / [`resilience::MergeSink`]) and the
//!   cell-level fault-containment policy ([`resilience::ResiliencePolicy`]:
//!   contained panics, bounded deterministic retry, cooperative per-cell
//!   deadlines) the sweep executor enforces.
//!
//! # Hot-path architecture
//!
//! [`plant::PhysicalPlant::step_interval`] performs zero heap allocations per
//! micro-step in steady state:
//!
//! * the node-power vector and integrator scratch live inside the plant and
//!   are reused across micro-steps,
//! * the fan enters the integrator as a [`thermal_model::FanBoost`] step
//!   parameter instead of a cloned network, and the RK4 transition
//!   ([`thermal_model::StepTransition`]) for the current (fan, ambient) pair
//!   is cached across intervals,
//! * the online-core list is a fixed-size array computed once per control
//!   interval, and everything state/demand-dependent in the power computation
//!   is hoisted out of the micro-step loop (only the temperature-dependent
//!   leakage terms, evaluated with `power_model::currents_batch`, remain),
//! * memory leakage is folded into the memory power floor
//!   (`PlantPowerParams::memory_base_w`); no leakage model is evaluated for
//!   the memory domain.
//!
//! The `plant_step` Criterion bench in the `bench` crate measures this engine
//! against [`naive::NaivePhysicalPlant`] (acceptance bar: ≥ 5× micro-steps
//! per second) and cross-checks that both produce the same trajectory.
//!
//! # Batched scenario execution
//!
//! On top of the scalar engine, [`batch::BatchPlant`] advances K scenarios
//! per instruction stream with a structure-of-arrays state: node temperatures
//! and power injections live in `8 × K` panels, **one scenario per column**,
//! so each per-node row is contiguous across scenarios. Per micro-step the
//! batch engine
//!
//! * evaluates every lane's leakage in one unit-stride pass through a
//!   [`power_model::LeakagePanel`] (anchored exponential: an exact `exp`
//!   anchor refreshed every few micro-steps plus a short drift polynomial,
//!   accurate to a few ulps),
//! * assembles node powers from a per-interval linearisation
//!   `P = base + coef · I_leak`, and
//! * advances the thermal panel through one blocked mat-mat
//!   ([`thermal_model::BatchStepTransition`]), loading the 8×8 transition
//!   matrices once for all lanes.
//!
//! Control decisions stay per-lane ([`experiment::run_lockstep`] drives one
//! control loop per scenario against the shared batch plant), so batched and
//! scalar runs agree: the integrator is bit-identical, and full trajectories
//! match within 1e-9 °C (proven by `tests/equivalence.rs`). Batched stepping
//! applies when scenarios share the control period and (mostly) the
//! fan/ambient transition key; diverging lanes fall back to an equivalent
//! strided apply. The `sweep_step` Criterion bench pins the batched engine at
//! ≥ 2× the scalar per-scenario micro-step throughput at eight lanes.
//!
//! The *decision* side is batched too: each interval the executor stages
//! every lane's decision up to the thermal classification, then one fused
//! panel application of the precomputed horizon map
//! ([`dtpm::BatchPredictor`]) classifies all DTPM proposals at once —
//! bit-identical per lane to the scalar predictor, so only lanes actually
//! predicted to violate pay the scalar actuation walk. The `sweep_decide`
//! bench pins the batched two-phase decide at ≥ 1.5× decisions/s over the
//! per-lane iterated path on a control-heavy sweep (measured 13.4×, see
//! `BENCH_sweep_decide.json`).
//!
//! # The `PlantEngine` seam and the one executor
//!
//! Both execution paths above are instantiations of a single generic
//! control-loop executor over the [`engine::PlantEngine`] trait: per control
//! interval it retires finished scenarios, admits queued ones into the freed
//! lanes, lets every live lane decide, steps the engine once with per-lane
//! inputs, and absorbs the per-lane results. [`Experiment::run`] is the
//! executor over a one-lane [`engine::ScalarEngine`];
//! [`experiment::run_lockstep`] is the executor over an
//! [`engine::PanelEngine`] as wide as the configuration list. There is no
//! scalar-vs-batched fork in the stepping logic, and a future device backend
//! (GPU panels for calibration-scale sweeps) only has to implement the trait
//! — the per-step math it needs is already exposed by
//! [`thermal_model::BatchStepTransition`] (`r`/`s_power`/`ambient_drive`).
//!
//! # Lane-compacting sweeps
//!
//! [`experiment::ScenarioSweep`] feeds the same executor from a shared
//! atomic scenario queue: each worker owns an engine of
//! [`experiment::ScenarioSweep::with_lanes`] lanes and refills every freed
//! lane from the queue (retire → compact → admit via
//! [`engine::PlantEngine::admit`], which resets lane state and re-anchors
//! the lane's leakage models at the new scenario's initial temperature). A
//! ragged mix of short and long scenarios therefore no longer serialises on
//! the slowest member of a static lane-group; the `sweep_ragged` bench pins
//! compaction at ≥ 1.3× over static tiling on a 1-long + 3-short tile mix
//! (measured 2.15×, see `BENCH_sweep_ragged.json`), and `tests/compaction.rs` proves recycled lanes
//! reproduce scalar trajectories to ≤ 1e-9 °C.
//!
//! # Streaming results: observers, sinks, campaigns
//!
//! The result path is stream-then-aggregate, not accumulate-then-analyse.
//! Per absorbed control interval the control loop builds one [`TraceRecord`]
//! and hands it to two observers: an always-on [`observer::OnlineRunStats`]
//! (Welford mean/variance and running min/max via [`numeric::Welford`],
//! running power sum, intervention/residency counters — O(1) state) and the
//! [`observer::TracePolicy`]-selected trace-retention observer. When the run
//! retires it reports a [`RunReport`]: the streamed [`RunSummary`] — every
//! input of the paper's figures ([`StabilityReport`], mean power, energy,
//! execution time) — plus whatever trajectory the policy retained. Summaries
//! from a streaming run are bit-equal to those computed post-hoc from a
//! fully retained trace of the same run (`tests/streaming.rs`).
//!
//! Sweeps push reports into a [`ResultSink`] as lanes retire, tagged with
//! the scenario's input-order index; [`ScenarioSweep::run`] is the trivial
//! [`CollectSink`] instantiation with full traces. On top,
//! [`campaign::SweepSpec`] declares a whole evaluation grid as a value —
//! axes, campaign seed, shared timing — expands cells *lazily* as workers
//! claim them (per-cell seeds are [`campaign::splitmix64`] of the campaign
//! seed plus the cell index: distinct, stable, order-independent), and
//! streams through the same compacting scheduler.
//!
//! **Retain traces** ([`observer::TracePolicy::Full`]) when you need
//! trajectories: plots, CSV export, steady-portion analyses with a skip
//! fraction chosen after the fact. **Stream summaries**
//! ([`observer::TracePolicy::SummaryOnly`], the campaign default) for large
//! grids: retained memory is O(cells) instead of O(cells × intervals) — the
//! `sweep_campaign` bench measures ~19× less retention on a 200-cell grid
//! at just 40 intervals per cell, and the gap grows linearly with run
//! length ([`observer::TracePolicy::Decimated`] sits in between with coarse
//! trajectories). Scenario count is bounded by compute, not memory.
//!
//! # Robustness: faults, the safety ladder, graceful degradation
//!
//! Between sampling and the control decision sits a robustness stack,
//! armed by default in every run:
//!
//! * **Fault injection** ([`faults`]): a [`faults::FaultPlan`] corrupts the
//!   measured chain — never the plant — inside declared time windows.
//!   Injection is a pure function of the plan seed and the interval index
//!   (no RNG state), so the same seed + plan replay bit-identically
//!   regardless of which sweep lane, thread, or shard the run lands on.
//! * **Sensor health** ([`safety::SensorHealth`]): each channel is screened
//!   against a plausibility envelope (finite, in range, not flatlined);
//!   invalid readings are replaced with the last-known-good value under a
//!   staleness budget. A chain stale beyond its budget demotes the DTPM
//!   policy to the [`governors::ReactiveThrottler`] fallback (same
//!   constraint, no model in the loop) and promotes it back after a
//!   sustained healthy streak — or, with the fallback disabled, drains the
//!   lane with a structured [`error::SimError::Sensor`] that never disturbs
//!   lockstep siblings.
//! * **Safety ladder** ([`safety::SafetyLadder`]): a watchdog above the
//!   policy escalates Normal → Throttle → Critical → SimulatedShutdown on
//!   the screened hot-spot temperature (with dwell + hysteresis
//!   de-escalation) and enforces each rung after the policy commits;
//!   shutdown retires the run.
//!
//! Every transition lands in the run's [`safety::IncidentLog`], streamed
//! through [`observer::RunObserver::on_incident`] and carried by the
//! [`RunSummary`]. The ladder thresholds sit above every fault-free
//! trajectory, screening passes valid readings through bit-unchanged, and
//! none of it draws from the RNG — so healthy runs are **bit-identical**
//! with the stack armed or disabled (`tests/faults.rs`), at wall-clock
//! overhead under 2 % (`safety_overhead` bench).
//!
//! # Example
//!
//! ```no_run
//! use platform_sim::{CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind};
//! use workload::BenchmarkId;
//!
//! # fn main() -> Result<(), platform_sim::SimError> {
//! // Characterise the platform once (furnace + PRBS identification)...
//! let calibration = CalibrationCampaign::default().run(7)?;
//! // ...then run Temple Run under the proposed DTPM policy.
//! let config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Templerun);
//! let result = Experiment::new(&config, &calibration)?.run()?;
//! println!("execution time: {:.1} s", result.execution_time_s);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod calibrate;
pub mod campaign;
pub mod distributed;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod faults;
pub mod metrics;
pub mod mixed;
pub mod naive;
pub mod observer;
pub mod plant;
pub mod resilience;
pub mod safety;
pub mod sensors;
pub mod trace;

pub use batch::BatchPlant;
pub use calibrate::{Calibration, CalibrationCampaign};
pub use campaign::{splitmix64, CampaignRunner, DtpmVariant, SweepSpec};
pub use distributed::{
    Coordinator, DistributedReport, LeaseStats, MemoryTransport, Transport, WorkerPool,
};
pub use engine::{
    EnginePrecision, LaneInput, MixedPanelEngine, PanelEngine, PlantEngine, ScalarEngine,
};
pub use error::SimError;
pub use experiment::{
    run_lockstep, CollectSink, Experiment, ExperimentConfig, ExperimentKind, ResultSink, RunReport,
    ScenarioSweep, SimulationResult,
};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultWindow, SensorChannel};
pub use metrics::{BenchmarkComparison, RunSummary, StabilityReport};
pub use mixed::MixedBatchPlant;
pub use naive::NaivePhysicalPlant;
pub use observer::{DecimatedTrace, OnlineRunStats, RunObserver, TracePolicy};
pub use plant::{PhysicalPlant, PlantPowerParams};
pub use resilience::{
    CampaignAggregate, CampaignCheckpoint, CellBitmap, CellFailure, CellOutcome, CellStats,
    ChaosPlan, CheckpointSink, MergeSink, ResiliencePolicy, ShardRunner, ShardSpec,
};
pub use safety::{
    FaultObservation, HealthConfig, Incident, IncidentKind, IncidentLog, LadderConfig,
    SafetyConfig, SafetyLadder, SafetyState, SensorHealth,
};
pub use sensors::{SensorReadings, SensorSuite};
pub use trace::{Trace, TraceRecord};

//! Closed-loop co-simulation of the Odroid-XU+E platform.
//!
//! This crate stands in for the physical test bench of the paper (Figure 6.1):
//! the Odroid-XU+E board, its power/temperature sensors, the external power
//! meter, the temperature furnace and the Android software stack. It wires the
//! substrate crates into a closed loop running at the kernel's 100 ms control
//! interval:
//!
//! ```text
//!  workload ──► governors (ondemand + hotplug) ──► proposed configuration
//!                                                        │
//!            DTPM / fan / reactive baseline  ◄── sensors ─┤
//!                     │                                   │
//!                     ▼                                   │
//!  platform state ──► physical plant (power + RC thermal network) ──► sensors
//! ```
//!
//! * [`plant`] — the "silicon": converts the platform state and workload
//!   demand into true per-domain powers (with parameters deliberately
//!   different from the characterised power model) and integrates the
//!   eight-node RC thermal network.
//! * [`sensors`] — sampling, quantisation and noise for the on-board sensors
//!   and the external power meter.
//! * [`experiment`] — the four experimental configurations of Section 6.2
//!   (default with fan, without fan, reactive heuristic, proposed DTPM) and
//!   the simulation engine that runs a benchmark under one of them.
//! * [`calibrate`] — the characterisation campaign: the furnace sweep for the
//!   leakage model and the per-domain PRBS experiments for system
//!   identification, producing the [`dtpm::ThermalPredictor`] the DTPM
//!   configuration uses.
//! * [`trace`], [`metrics`] — per-interval logging, CSV export and the
//!   power/performance/stability summaries the figures are built from.
//!
//! # Example
//!
//! ```no_run
//! use platform_sim::{CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind};
//! use workload::BenchmarkId;
//!
//! # fn main() -> Result<(), platform_sim::SimError> {
//! // Characterise the platform once (furnace + PRBS identification)...
//! let calibration = CalibrationCampaign::default().run(7)?;
//! // ...then run Temple Run under the proposed DTPM policy.
//! let config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Templerun);
//! let result = Experiment::new(config, &calibration)?.run()?;
//! println!("execution time: {:.1} s", result.execution_time_s);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod error;
pub mod experiment;
pub mod metrics;
pub mod plant;
pub mod sensors;
pub mod trace;

pub use calibrate::{Calibration, CalibrationCampaign};
pub use error::SimError;
pub use experiment::{Experiment, ExperimentConfig, ExperimentKind, SimulationResult};
pub use metrics::{BenchmarkComparison, StabilityReport};
pub use plant::{PhysicalPlant, PlantPowerParams};
pub use sensors::{SensorReadings, SensorSuite};
pub use trace::{Trace, TraceRecord};

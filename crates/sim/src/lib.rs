//! Closed-loop co-simulation of the Odroid-XU+E platform.
//!
//! This crate stands in for the physical test bench of the paper (Figure 6.1):
//! the Odroid-XU+E board, its power/temperature sensors, the external power
//! meter, the temperature furnace and the Android software stack. It wires the
//! substrate crates into a closed loop running at the kernel's 100 ms control
//! interval:
//!
//! ```text
//!  workload ──► governors (ondemand + hotplug) ──► proposed configuration
//!                                                        │
//!            DTPM / fan / reactive baseline  ◄── sensors ─┤
//!                     │                                   │
//!                     ▼                                   │
//!  platform state ──► physical plant (power + RC thermal network) ──► sensors
//! ```
//!
//! * [`plant`] — the "silicon": converts the platform state and workload
//!   demand into true per-domain powers (with parameters deliberately
//!   different from the characterised power model) and integrates the
//!   eight-node RC thermal network.
//! * [`sensors`] — sampling, quantisation and noise for the on-board sensors
//!   and the external power meter.
//! * [`experiment`] — the four experimental configurations of Section 6.2
//!   (default with fan, without fan, reactive heuristic, proposed DTPM) and
//!   the simulation engine that runs a benchmark under one of them.
//! * [`calibrate`] — the characterisation campaign: the furnace sweep for the
//!   leakage model and the per-domain PRBS experiments for system
//!   identification, producing the [`dtpm::ThermalPredictor`] the DTPM
//!   configuration uses.
//! * [`trace`], [`metrics`] — per-interval logging, CSV export and the
//!   power/performance/stability summaries the figures are built from.
//! * [`experiment::ScenarioSweep`] — runs many independent experiment
//!   configurations across `std::thread::scope` workers (deterministic,
//!   input-order results); with [`experiment::ScenarioSweep::with_lanes`]
//!   each worker advances a lane-group of scenarios through the batched
//!   engine, for `threads × lanes` total parallelism.
//! * [`batch`] — the structure-of-arrays [`batch::BatchPlant`]: K plants
//!   advanced in lockstep, one scenario per panel column.
//! * [`naive`] — the checked-in naive baseline of the plant integrator, kept
//!   for benchmarking and trajectory-equivalence tests.
//!
//! # Hot-path architecture
//!
//! [`plant::PhysicalPlant::step_interval`] performs zero heap allocations per
//! micro-step in steady state:
//!
//! * the node-power vector and integrator scratch live inside the plant and
//!   are reused across micro-steps,
//! * the fan enters the integrator as a [`thermal_model::FanBoost`] step
//!   parameter instead of a cloned network, and the RK4 transition
//!   ([`thermal_model::StepTransition`]) for the current (fan, ambient) pair
//!   is cached across intervals,
//! * the online-core list is a fixed-size array computed once per control
//!   interval, and everything state/demand-dependent in the power computation
//!   is hoisted out of the micro-step loop (only the temperature-dependent
//!   leakage terms, evaluated with `power_model::currents_batch`, remain),
//! * memory leakage is folded into the memory power floor
//!   (`PlantPowerParams::memory_base_w`); no leakage model is evaluated for
//!   the memory domain.
//!
//! The `plant_step` Criterion bench in the `bench` crate measures this engine
//! against [`naive::NaivePhysicalPlant`] (acceptance bar: ≥ 5× micro-steps
//! per second) and cross-checks that both produce the same trajectory.
//!
//! # Batched scenario execution
//!
//! On top of the scalar engine, [`batch::BatchPlant`] advances K scenarios
//! per instruction stream with a structure-of-arrays state: node temperatures
//! and power injections live in `8 × K` panels, **one scenario per column**,
//! so each per-node row is contiguous across scenarios. Per micro-step the
//! batch engine
//!
//! * evaluates every lane's leakage in one unit-stride pass through a
//!   [`power_model::LeakagePanel`] (anchored exponential: an exact `exp`
//!   anchor refreshed every few micro-steps plus a short drift polynomial,
//!   accurate to a few ulps),
//! * assembles node powers from a per-interval linearisation
//!   `P = base + coef · I_leak`, and
//! * advances the thermal panel through one blocked mat-mat
//!   ([`thermal_model::BatchStepTransition`]), loading the 8×8 transition
//!   matrices once for all lanes.
//!
//! Control decisions stay per-lane ([`experiment::run_lockstep`] drives one
//! control loop per scenario against the shared batch plant), so batched and
//! scalar runs agree: the integrator is bit-identical, and full trajectories
//! match within 1e-9 °C (proven by `tests/equivalence.rs`). Batched stepping
//! applies when scenarios share the control period and (mostly) the
//! fan/ambient transition key; diverging lanes fall back to an equivalent
//! strided apply. The `sweep_step` Criterion bench pins the batched engine at
//! ≥ 2× the scalar per-scenario micro-step throughput at eight lanes.
//!
//! # Example
//!
//! ```no_run
//! use platform_sim::{CalibrationCampaign, Experiment, ExperimentConfig, ExperimentKind};
//! use workload::BenchmarkId;
//!
//! # fn main() -> Result<(), platform_sim::SimError> {
//! // Characterise the platform once (furnace + PRBS identification)...
//! let calibration = CalibrationCampaign::default().run(7)?;
//! // ...then run Temple Run under the proposed DTPM policy.
//! let config = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Templerun);
//! let result = Experiment::new(&config, &calibration)?.run()?;
//! println!("execution time: {:.1} s", result.execution_time_s);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod calibrate;
pub mod error;
pub mod experiment;
pub mod metrics;
pub mod naive;
pub mod plant;
pub mod sensors;
pub mod trace;

pub use batch::{BatchLaneInput, BatchPlant};
pub use calibrate::{Calibration, CalibrationCampaign};
pub use error::SimError;
pub use experiment::{
    run_lockstep, Experiment, ExperimentConfig, ExperimentKind, ScenarioSweep, SimulationResult,
};
pub use metrics::{BenchmarkComparison, StabilityReport};
pub use naive::NaivePhysicalPlant;
pub use plant::{PhysicalPlant, PlantPowerParams};
pub use sensors::{SensorReadings, SensorSuite};
pub use trace::{Trace, TraceRecord};

//! Cross-configuration metrics: power savings, performance loss, stability.

use numeric::Summary;
use serde::{Deserialize, Serialize};

use crate::experiment::{ExperimentConfig, SimulationResult};
use crate::observer::{OnlineRunStats, RunObserver};
use crate::safety::IncidentLog;

/// Thermal stability metrics of one run (the quantities behind Figure 6.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Mean of the maximum core temperature, °C.
    pub mean_temp_c: f64,
    /// Max–min spread of the maximum core temperature, °C.
    pub temp_range_c: f64,
    /// Variance of the maximum core temperature, °C².
    pub temp_variance: f64,
    /// Absolute peak temperature reached, °C.
    pub peak_temp_c: f64,
}

impl StabilityReport {
    /// Computes the stability metrics from a run.
    ///
    /// # Panics
    ///
    /// Panics if the run's trace is empty.
    pub fn of(result: &SimulationResult) -> StabilityReport {
        Self::of_steady_portion(result, 0.0)
    }

    /// Computes the stability metrics over the *regulated* portion of a run,
    /// skipping the first `skip_fraction` of the trace. The paper's thermal
    /// stability comparison (Figure 6.5) looks at how the temperature behaves
    /// once the thermal management is engaged, not at the initial warm-up
    /// ramp shared by all configurations.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `skip_fraction` is not within `[0, 1)`.
    pub fn of_steady_portion(result: &SimulationResult, skip_fraction: f64) -> StabilityReport {
        assert!(
            (0.0..1.0).contains(&skip_fraction),
            "skip fraction must be in [0, 1)"
        );
        let series = result.trace.max_temp_series();
        let start = ((series.len() as f64) * skip_fraction).floor() as usize;
        let window = &series[start.min(series.len() - 1)..];
        let summary: Summary = Summary::of(window);
        StabilityReport {
            mean_temp_c: summary.mean,
            temp_range_c: summary.range(),
            temp_variance: summary.variance,
            peak_temp_c: summary.max,
        }
    }
}

/// Everything the evaluation needs from one run *without* its trace: the
/// streamed per-run product of the observer/sink pipeline.
///
/// A `RunSummary` is O(1) regardless of run length — it is what a
/// summaries-only sweep retains per scenario, and it carries every input of
/// the paper's figures: execution time and completion (performance loss),
/// mean platform power and energy (power saving), the [`StabilityReport`]
/// (Figure 6.5), and the intervention/residency rates. Runs executed with a
/// trace-retaining policy produce the identical summary (the streaming
/// accumulators see the same records the trace retains; see
/// [`RunSummary::of`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The configuration that produced this run.
    pub config: ExperimentConfig,
    /// Whether the benchmark ran to completion within the duration cap.
    pub completed: bool,
    /// Execution time of the benchmark, seconds.
    pub execution_time_s: f64,
    /// Number of absorbed control intervals.
    pub intervals: usize,
    /// Total true platform energy over the run, joules.
    pub energy_j: f64,
    /// Mean measured platform power over the run, watts.
    pub mean_platform_power_w: f64,
    /// Thermal stability of the run (whole-run window).
    pub stability: StabilityReport,
    /// Fraction of intervals in which the DTPM policy intervened.
    pub intervention_rate: f64,
    /// Fraction of intervals spent on the little cluster.
    pub little_cluster_residency: f64,
    /// Every robustness event of the run: sensor faults and recoveries,
    /// safety-ladder transitions, policy demotions/promotions, shutdown.
    /// Empty for a healthy run.
    #[serde(default)]
    pub incidents: IncidentLog,
}

impl RunSummary {
    /// Computes the summary post-hoc from a trace-retaining result, by
    /// replaying the retained records through the same online accumulators a
    /// streaming run uses — so the outcome is bit-identical to what the same
    /// run would have streamed.
    ///
    /// # Panics
    ///
    /// Panics if the result's trace is empty.
    pub fn of(result: &SimulationResult) -> RunSummary {
        let mut stats = OnlineRunStats::new();
        for record in result.trace.records() {
            stats.on_interval(record);
        }
        RunSummary {
            config: result.config.clone(),
            completed: result.completed,
            execution_time_s: result.execution_time_s,
            intervals: result.trace.len(),
            energy_j: result.energy_j,
            mean_platform_power_w: stats.mean_platform_power_w(),
            stability: stats.stability(),
            intervention_rate: stats.intervention_rate(),
            little_cluster_residency: stats.little_cluster_residency(),
            // Traces do not carry incidents; a post-hoc summary of a healthy
            // trace-retaining run matches its streamed twin (both logs
            // empty). Runs with incidents must be read from their streamed
            // summary, which carries the full log.
            incidents: IncidentLog::default(),
        }
    }
}

/// Comparison of one configuration against a baseline run of the same
/// benchmark (the quantities behind Figures 6.9 and 6.10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkComparison {
    /// Platform power saving relative to the baseline, percent (positive =
    /// the evaluated configuration uses less power).
    pub power_saving_percent: f64,
    /// Performance loss relative to the baseline, percent (positive = the
    /// evaluated configuration takes longer).
    pub performance_loss_percent: f64,
    /// Reduction factor of the temperature variance (baseline variance divided
    /// by the evaluated configuration's variance; >1 means more stable).
    pub variance_reduction_factor: f64,
    /// Reduction of the max–min temperature spread, °C.
    pub range_reduction_c: f64,
}

impl BenchmarkComparison {
    /// Compares `evaluated` against `baseline` (both runs of the same
    /// benchmark).
    ///
    /// # Panics
    ///
    /// Panics if either trace is empty.
    pub fn against_baseline(
        baseline: &SimulationResult,
        evaluated: &SimulationResult,
    ) -> BenchmarkComparison {
        Self::compare(
            baseline.mean_platform_power_w,
            baseline.execution_time_s,
            &StabilityReport::of(baseline),
            evaluated.mean_platform_power_w,
            evaluated.execution_time_s,
            &StabilityReport::of(evaluated),
        )
    }

    /// Compares two runs from their streamed summaries — the trace-free
    /// analogue of [`BenchmarkComparison::against_baseline`], for pipelines
    /// that never retained the traces.
    pub fn from_summaries(baseline: &RunSummary, evaluated: &RunSummary) -> BenchmarkComparison {
        Self::compare(
            baseline.mean_platform_power_w,
            baseline.execution_time_s,
            &baseline.stability,
            evaluated.mean_platform_power_w,
            evaluated.execution_time_s,
            &evaluated.stability,
        )
    }

    fn compare(
        base_power: f64,
        base_time_s: f64,
        base_stability: &StabilityReport,
        eval_power: f64,
        eval_time_s: f64,
        eval_stability: &StabilityReport,
    ) -> BenchmarkComparison {
        let power_saving_percent = if base_power > 0.0 {
            100.0 * (base_power - eval_power) / base_power
        } else {
            0.0
        };
        let performance_loss_percent = if base_time_s > 0.0 {
            100.0 * (eval_time_s - base_time_s) / base_time_s
        } else {
            0.0
        };
        let variance_reduction_factor = if eval_stability.temp_variance > 1e-9 {
            base_stability.temp_variance / eval_stability.temp_variance
        } else {
            f64::INFINITY
        };
        BenchmarkComparison {
            power_saving_percent,
            performance_loss_percent,
            variance_reduction_factor,
            range_reduction_c: base_stability.temp_range_c - eval_stability.temp_range_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, ExperimentKind, SimulationResult};
    use crate::trace::{Trace, TraceRecord};
    use power_model::DomainPower;
    use soc_model::{ClusterKind, FanLevel};
    use workload::BenchmarkId;

    fn synthetic_result(
        kind: ExperimentKind,
        temps: &[f64],
        power_w: f64,
        execution_time_s: f64,
    ) -> SimulationResult {
        let mut trace = Trace::new();
        for (k, &t) in temps.iter().enumerate() {
            trace.push(TraceRecord {
                time_s: k as f64 * 0.1,
                core_temps_c: [t, t - 0.5, t - 1.0, t - 0.2],
                active_cluster: ClusterKind::Big,
                frequency_mhz: 1600,
                online_cores: 4,
                gpu_frequency_mhz: 177,
                fan_level: FanLevel::Off,
                domain_power: DomainPower::new(power_w - 2.0, 0.05, 0.1, 0.4),
                platform_power_w: power_w,
                progress: 0.5,
                predicted_peak_c: None,
                dtpm_intervened: false,
            });
        }
        SimulationResult {
            config: ExperimentConfig::new(kind, BenchmarkId::Basicmath),
            trace,
            execution_time_s,
            completed: true,
            mean_platform_power_w: power_w,
            energy_j: power_w * execution_time_s,
        }
    }

    #[test]
    fn stability_report_reflects_temperature_swings() {
        let swingy = synthetic_result(
            ExperimentKind::DefaultWithFan,
            &[55.0, 65.0, 55.0, 65.0, 55.0, 65.0],
            6.0,
            100.0,
        );
        let steady = synthetic_result(ExperimentKind::Dtpm, &[62.0, 62.5, 62.2, 62.4], 5.2, 104.0);
        let swingy_report = StabilityReport::of(&swingy);
        let steady_report = StabilityReport::of(&steady);
        assert!(swingy_report.temp_variance > 5.0 * steady_report.temp_variance);
        assert!(swingy_report.temp_range_c > steady_report.temp_range_c);
        assert!(swingy_report.peak_temp_c >= steady_report.peak_temp_c);
    }

    #[test]
    fn comparison_computes_savings_and_loss() {
        let baseline = synthetic_result(
            ExperimentKind::DefaultWithFan,
            &[55.0, 60.0, 65.0, 60.0],
            6.0,
            100.0,
        );
        let dtpm = synthetic_result(ExperimentKind::Dtpm, &[61.0, 62.0, 62.5, 62.0], 5.4, 103.3);
        let cmp = BenchmarkComparison::against_baseline(&baseline, &dtpm);
        assert!((cmp.power_saving_percent - 10.0).abs() < 1e-9);
        assert!((cmp.performance_loss_percent - 3.3).abs() < 1e-9);
        assert!(cmp.variance_reduction_factor > 1.0);
        assert!(cmp.range_reduction_c > 0.0);
    }

    #[test]
    fn summaries_compare_like_full_results() {
        let baseline = synthetic_result(
            ExperimentKind::DefaultWithFan,
            &[55.0, 60.0, 65.0, 60.0],
            6.0,
            100.0,
        );
        let dtpm = synthetic_result(ExperimentKind::Dtpm, &[61.0, 62.0, 62.5, 62.0], 5.4, 103.3);
        let from_results = BenchmarkComparison::against_baseline(&baseline, &dtpm);
        let from_summaries =
            BenchmarkComparison::from_summaries(&RunSummary::of(&baseline), &RunSummary::of(&dtpm));
        assert_eq!(
            from_results.power_saving_percent,
            from_summaries.power_saving_percent
        );
        assert_eq!(
            from_results.performance_loss_percent,
            from_summaries.performance_loss_percent
        );
        assert!(
            (from_results.variance_reduction_factor - from_summaries.variance_reduction_factor)
                .abs()
                <= 1e-9 * from_results.variance_reduction_factor.abs()
        );
        assert!((from_results.range_reduction_c - from_summaries.range_reduction_c).abs() <= 1e-9);
    }

    #[test]
    fn run_summary_reproduces_trace_metrics() {
        let result = synthetic_result(
            ExperimentKind::Dtpm,
            &[58.0, 61.0, 63.0, 62.0, 61.5, 62.2],
            5.5,
            120.0,
        );
        let summary = RunSummary::of(&result);
        assert_eq!(summary.config, result.config);
        assert_eq!(summary.completed, result.completed);
        assert_eq!(summary.intervals, result.trace.len());
        assert_eq!(summary.energy_j, result.energy_j);
        assert_eq!(summary.execution_time_s, result.execution_time_s);
        assert_eq!(
            summary.mean_platform_power_w,
            result.trace.mean_platform_power_w()
        );
        assert_eq!(summary.intervention_rate, result.trace.intervention_rate());
        let reference = StabilityReport::of(&result);
        assert_eq!(summary.stability.peak_temp_c, reference.peak_temp_c);
        assert_eq!(summary.stability.temp_range_c, reference.temp_range_c);
        assert!((summary.stability.mean_temp_c - reference.mean_temp_c).abs() < 1e-12);
        assert!((summary.stability.temp_variance - reference.temp_variance).abs() < 1e-9);
    }

    #[test]
    fn identical_runs_compare_as_neutral() {
        let a = synthetic_result(ExperimentKind::Dtpm, &[60.0, 61.0, 60.5], 5.0, 90.0);
        let b = synthetic_result(ExperimentKind::Dtpm, &[60.0, 61.0, 60.5], 5.0, 90.0);
        let cmp = BenchmarkComparison::against_baseline(&a, &b);
        assert_eq!(cmp.power_saving_percent, 0.0);
        assert_eq!(cmp.performance_loss_percent, 0.0);
        assert!((cmp.variance_reduction_factor - 1.0).abs() < 1e-9);
        assert_eq!(cmp.range_reduction_c, 0.0);
    }
}

//! Cross-configuration metrics: power savings, performance loss, stability.

use numeric::Summary;
use serde::{Deserialize, Serialize};

use crate::experiment::SimulationResult;

/// Thermal stability metrics of one run (the quantities behind Figure 6.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Mean of the maximum core temperature, °C.
    pub mean_temp_c: f64,
    /// Max–min spread of the maximum core temperature, °C.
    pub temp_range_c: f64,
    /// Variance of the maximum core temperature, °C².
    pub temp_variance: f64,
    /// Absolute peak temperature reached, °C.
    pub peak_temp_c: f64,
}

impl StabilityReport {
    /// Computes the stability metrics from a run.
    ///
    /// # Panics
    ///
    /// Panics if the run's trace is empty.
    pub fn of(result: &SimulationResult) -> StabilityReport {
        Self::of_steady_portion(result, 0.0)
    }

    /// Computes the stability metrics over the *regulated* portion of a run,
    /// skipping the first `skip_fraction` of the trace. The paper's thermal
    /// stability comparison (Figure 6.5) looks at how the temperature behaves
    /// once the thermal management is engaged, not at the initial warm-up
    /// ramp shared by all configurations.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `skip_fraction` is not within `[0, 1)`.
    pub fn of_steady_portion(result: &SimulationResult, skip_fraction: f64) -> StabilityReport {
        assert!(
            (0.0..1.0).contains(&skip_fraction),
            "skip fraction must be in [0, 1)"
        );
        let series = result.trace.max_temp_series();
        let start = ((series.len() as f64) * skip_fraction).floor() as usize;
        let window = &series[start.min(series.len() - 1)..];
        let summary: Summary = Summary::of(window);
        StabilityReport {
            mean_temp_c: summary.mean,
            temp_range_c: summary.range(),
            temp_variance: summary.variance,
            peak_temp_c: summary.max,
        }
    }
}

/// Comparison of one configuration against a baseline run of the same
/// benchmark (the quantities behind Figures 6.9 and 6.10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkComparison {
    /// Platform power saving relative to the baseline, percent (positive =
    /// the evaluated configuration uses less power).
    pub power_saving_percent: f64,
    /// Performance loss relative to the baseline, percent (positive = the
    /// evaluated configuration takes longer).
    pub performance_loss_percent: f64,
    /// Reduction factor of the temperature variance (baseline variance divided
    /// by the evaluated configuration's variance; >1 means more stable).
    pub variance_reduction_factor: f64,
    /// Reduction of the max–min temperature spread, °C.
    pub range_reduction_c: f64,
}

impl BenchmarkComparison {
    /// Compares `evaluated` against `baseline` (both runs of the same
    /// benchmark).
    ///
    /// # Panics
    ///
    /// Panics if either trace is empty.
    pub fn against_baseline(
        baseline: &SimulationResult,
        evaluated: &SimulationResult,
    ) -> BenchmarkComparison {
        let base_power = baseline.mean_platform_power_w;
        let eval_power = evaluated.mean_platform_power_w;
        let power_saving_percent = if base_power > 0.0 {
            100.0 * (base_power - eval_power) / base_power
        } else {
            0.0
        };
        let performance_loss_percent = if baseline.execution_time_s > 0.0 {
            100.0 * (evaluated.execution_time_s - baseline.execution_time_s)
                / baseline.execution_time_s
        } else {
            0.0
        };
        let base_stability = StabilityReport::of(baseline);
        let eval_stability = StabilityReport::of(evaluated);
        let variance_reduction_factor = if eval_stability.temp_variance > 1e-9 {
            base_stability.temp_variance / eval_stability.temp_variance
        } else {
            f64::INFINITY
        };
        BenchmarkComparison {
            power_saving_percent,
            performance_loss_percent,
            variance_reduction_factor,
            range_reduction_c: base_stability.temp_range_c - eval_stability.temp_range_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, ExperimentKind, SimulationResult};
    use crate::trace::{Trace, TraceRecord};
    use power_model::DomainPower;
    use soc_model::{ClusterKind, FanLevel};
    use workload::BenchmarkId;

    fn synthetic_result(
        kind: ExperimentKind,
        temps: &[f64],
        power_w: f64,
        execution_time_s: f64,
    ) -> SimulationResult {
        let mut trace = Trace::new();
        for (k, &t) in temps.iter().enumerate() {
            trace.push(TraceRecord {
                time_s: k as f64 * 0.1,
                core_temps_c: [t, t - 0.5, t - 1.0, t - 0.2],
                active_cluster: ClusterKind::Big,
                frequency_mhz: 1600,
                online_cores: 4,
                gpu_frequency_mhz: 177,
                fan_level: FanLevel::Off,
                domain_power: DomainPower::new(power_w - 2.0, 0.05, 0.1, 0.4),
                platform_power_w: power_w,
                progress: 0.5,
                predicted_peak_c: None,
                dtpm_intervened: false,
            });
        }
        SimulationResult {
            config: ExperimentConfig::new(kind, BenchmarkId::Basicmath),
            trace,
            execution_time_s,
            completed: true,
            mean_platform_power_w: power_w,
            energy_j: power_w * execution_time_s,
        }
    }

    #[test]
    fn stability_report_reflects_temperature_swings() {
        let swingy = synthetic_result(
            ExperimentKind::DefaultWithFan,
            &[55.0, 65.0, 55.0, 65.0, 55.0, 65.0],
            6.0,
            100.0,
        );
        let steady = synthetic_result(ExperimentKind::Dtpm, &[62.0, 62.5, 62.2, 62.4], 5.2, 104.0);
        let swingy_report = StabilityReport::of(&swingy);
        let steady_report = StabilityReport::of(&steady);
        assert!(swingy_report.temp_variance > 5.0 * steady_report.temp_variance);
        assert!(swingy_report.temp_range_c > steady_report.temp_range_c);
        assert!(swingy_report.peak_temp_c >= steady_report.peak_temp_c);
    }

    #[test]
    fn comparison_computes_savings_and_loss() {
        let baseline = synthetic_result(
            ExperimentKind::DefaultWithFan,
            &[55.0, 60.0, 65.0, 60.0],
            6.0,
            100.0,
        );
        let dtpm = synthetic_result(ExperimentKind::Dtpm, &[61.0, 62.0, 62.5, 62.0], 5.4, 103.3);
        let cmp = BenchmarkComparison::against_baseline(&baseline, &dtpm);
        assert!((cmp.power_saving_percent - 10.0).abs() < 1e-9);
        assert!((cmp.performance_loss_percent - 3.3).abs() < 1e-9);
        assert!(cmp.variance_reduction_factor > 1.0);
        assert!(cmp.range_reduction_c > 0.0);
    }

    #[test]
    fn identical_runs_compare_as_neutral() {
        let a = synthetic_result(ExperimentKind::Dtpm, &[60.0, 61.0, 60.5], 5.0, 90.0);
        let b = synthetic_result(ExperimentKind::Dtpm, &[60.0, 61.0, 60.5], 5.0, 90.0);
        let cmp = BenchmarkComparison::against_baseline(&a, &b);
        assert_eq!(cmp.power_saving_percent, 0.0);
        assert_eq!(cmp.performance_loss_percent, 0.0);
        assert!((cmp.variance_reduction_factor - 1.0).abs() < 1e-9);
        assert_eq!(cmp.range_reduction_c, 0.0);
    }
}

//! Sensor sampling: on-board power/temperature sensors and the external meter.
//!
//! The controller never sees the plant's state directly — it sees what the
//! kernel driver reads from the INA231 power monitors and the per-core thermal
//! sensors: quantised, noisy, sampled once per control interval. The external
//! power meter (used in the paper for total-platform power) is modelled the
//! same way.

use power_model::DomainPower;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One set of sensor readings for a control interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReadings {
    /// Measured big-core temperatures, °C (quantised to the sensor resolution).
    pub core_temps_c: [f64; 4],
    /// Measured per-domain powers, watts.
    pub domain_power: DomainPower,
    /// Total platform power from the external meter, watts.
    pub platform_power_w: f64,
}

impl SensorReadings {
    /// The maximum measured core temperature.
    ///
    /// NaN-propagating: a dropped (NaN) sensor lane makes the maximum NaN
    /// instead of being silently skipped, so a corrupted reading cannot
    /// masquerade as a cool one at the control-loop boundary. (`f64::max`
    /// ignores NaN operands; the control loop folds temperatures into
    /// throttling and prediction decisions, where "ignore the broken lane"
    /// is exactly the wrong default.) For finite inputs the result is
    /// bit-identical to the plain `f64::max` fold.
    pub fn max_core_temp_c(&self) -> f64 {
        let mut max = f64::NEG_INFINITY;
        for &temp in &self.core_temps_c {
            if temp.is_nan() {
                return f64::NAN;
            }
            max = max.max(temp);
        }
        max
    }

    /// Whether every channel of this reading is finite: the validity check
    /// applied at the control-loop boundary before any value is trusted.
    /// (Range plausibility is judged by the sensor-health monitor, which
    /// knows the configured operating envelope.)
    pub fn is_valid(&self) -> bool {
        self.core_temps_c.iter().all(|t| t.is_finite())
            && self.domain_power.as_array().iter().all(|p| p.is_finite())
            && self.platform_power_w.is_finite()
    }
}

/// Noise/quantisation model of the measurement chain.
#[derive(Debug, Clone)]
pub struct SensorSuite {
    /// Standard deviation of the temperature sensor noise, °C.
    pub temp_noise_c: f64,
    /// Temperature sensor resolution (quantisation step), °C.
    pub temp_resolution_c: f64,
    /// Standard deviation of the power sensor noise, watts.
    pub power_noise_w: f64,
    /// Standard deviation of the external power meter noise, watts.
    pub meter_noise_w: f64,
    rng: StdRng,
}

impl SensorSuite {
    /// Sensor chain of the Odroid-XU+E: ~0.15 °C of temperature noise at
    /// 0.1 °C resolution and ~10 mW of power-sensor noise.
    pub fn odroid_defaults(seed: u64) -> Self {
        SensorSuite {
            temp_noise_c: 0.15,
            temp_resolution_c: 0.1,
            power_noise_w: 0.010,
            meter_noise_w: 0.030,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A noiseless, full-resolution sensor chain (useful in tests and for
    /// isolating algorithmic effects from measurement effects).
    pub fn ideal(seed: u64) -> Self {
        SensorSuite {
            temp_noise_c: 0.0,
            temp_resolution_c: 0.0,
            power_noise_w: 0.0,
            meter_noise_w: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn gaussian(&mut self, sigma: f64) -> f64 {
        // `!(sigma > 0)` rather than `sigma <= 0`: a non-finite (NaN) sigma
        // from a degenerate config must disable the noise, not inject NaN
        // into every reading. (+inf still fails the finite check below.)
        if !(sigma > 0.0) || !sigma.is_finite() {
            return 0.0;
        }
        // Box–Muller transform on two uniform samples.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn quantise(value: f64, resolution: f64) -> f64 {
        // Degenerate resolutions (zero, negative, NaN, ±inf) and non-finite
        // values pass through unquantised: `value / resolution` would
        // otherwise manufacture NaN out of a merely misconfigured sensor.
        if !(resolution > 0.0) || !resolution.is_finite() || !value.is_finite() {
            value
        } else {
            (value / resolution).round() * resolution
        }
    }

    /// Samples the sensor chain for one control interval.
    pub fn sample(
        &mut self,
        true_core_temps_c: [f64; 4],
        true_domain_power: &DomainPower,
        true_platform_power_w: f64,
    ) -> SensorReadings {
        let mut core_temps_c = [0.0; 4];
        for (i, slot) in core_temps_c.iter_mut().enumerate() {
            let noisy = true_core_temps_c[i] + self.gaussian(self.temp_noise_c);
            *slot = Self::quantise(noisy, self.temp_resolution_c);
        }
        let mut domain_power = *true_domain_power;
        for value in [
            &mut domain_power.big_w,
            &mut domain_power.little_w,
            &mut domain_power.gpu_w,
            &mut domain_power.memory_w,
        ] {
            *value = (*value + self.gaussian(self.power_noise_w)).max(0.0);
        }
        let platform_power_w = (true_platform_power_w + self.gaussian(self.meter_noise_w)).max(0.0);
        SensorReadings {
            core_temps_c,
            domain_power,
            platform_power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensors_pass_values_through() {
        let mut sensors = SensorSuite::ideal(1);
        let reading = sensors.sample(
            [50.0, 51.0, 49.5, 50.5],
            &DomainPower::new(2.0, 0.1, 0.3, 0.4),
            4.6,
        );
        assert_eq!(reading.core_temps_c, [50.0, 51.0, 49.5, 50.5]);
        assert_eq!(reading.domain_power, DomainPower::new(2.0, 0.1, 0.3, 0.4));
        assert_eq!(reading.platform_power_w, 4.6);
        assert_eq!(reading.max_core_temp_c(), 51.0);
    }

    #[test]
    fn noisy_sensors_stay_close_to_truth() {
        let mut sensors = SensorSuite::odroid_defaults(42);
        let truth = [55.0, 54.0, 56.0, 55.5];
        let mut worst_temp_err = 0.0f64;
        let mut sum_big = 0.0;
        for _ in 0..500 {
            let reading = sensors.sample(truth, &DomainPower::new(2.5, 0.05, 0.2, 0.4), 6.0);
            for (measured, real) in reading.core_temps_c.iter().zip(&truth) {
                worst_temp_err = worst_temp_err.max((measured - real).abs());
            }
            sum_big += reading.domain_power.big_w;
        }
        assert!(
            worst_temp_err < 1.0,
            "temperature noise too large: {worst_temp_err}"
        );
        let mean_big = sum_big / 500.0;
        assert!(
            (mean_big - 2.5).abs() < 0.01,
            "power noise biased: {mean_big}"
        );
    }

    #[test]
    fn quantisation_rounds_to_resolution() {
        let mut sensors = SensorSuite::ideal(3);
        sensors.temp_resolution_c = 0.5;
        let reading = sensors.sample([50.26, 50.24, 49.99, 50.74], &DomainPower::default(), 0.0);
        assert_eq!(reading.core_temps_c, [50.5, 50.0, 50.0, 50.5]);
    }

    #[test]
    fn power_readings_never_go_negative() {
        let mut sensors = SensorSuite::odroid_defaults(7);
        for _ in 0..200 {
            let reading = sensors.sample([40.0; 4], &DomainPower::default(), 0.0);
            assert!(reading.domain_power.is_physical());
            assert!(reading.platform_power_w >= 0.0);
        }
    }

    #[test]
    fn max_core_temp_propagates_nan_instead_of_swallowing_it() {
        let mut reading = SensorReadings {
            core_temps_c: [50.0, f64::NAN, 49.5, 50.5],
            domain_power: DomainPower::default(),
            platform_power_w: 0.0,
        };
        // The old `f64::max` fold skipped the NaN lane and reported 50.5.
        assert!(reading.max_core_temp_c().is_nan());
        assert!(!reading.is_valid());
        reading.core_temps_c = [50.0, 51.0, 49.5, 50.5];
        assert_eq!(reading.max_core_temp_c(), 51.0);
        assert!(reading.is_valid());
        reading.platform_power_w = f64::INFINITY;
        assert!(!reading.is_valid());
    }

    #[test]
    fn degenerate_quantisation_passes_values_through() {
        for resolution in [0.0, -0.1, f64::NAN, f64::INFINITY] {
            let mut sensors = SensorSuite::ideal(5);
            sensors.temp_resolution_c = resolution;
            let reading =
                sensors.sample([50.26, 50.24, 49.99, 50.74], &DomainPower::default(), 0.0);
            assert_eq!(
                reading.core_temps_c,
                [50.26, 50.24, 49.99, 50.74],
                "resolution {resolution} must pass values through unquantised"
            );
            assert!(reading.is_valid());
        }
    }

    #[test]
    fn degenerate_noise_sigma_disables_noise_instead_of_injecting_nan() {
        for sigma in [f64::NAN, f64::NEG_INFINITY, f64::INFINITY, -1.0] {
            let mut sensors = SensorSuite::ideal(6);
            sensors.temp_noise_c = sigma;
            sensors.power_noise_w = sigma;
            sensors.meter_noise_w = sigma;
            let reading = sensors.sample([50.0; 4], &DomainPower::new(2.0, 0.1, 0.3, 0.4), 4.6);
            assert_eq!(reading.core_temps_c, [50.0; 4], "sigma {sigma}");
            assert!(reading.is_valid());
        }
    }

    #[test]
    fn non_finite_true_values_survive_quantisation_unmangled() {
        // A NaN *input* (e.g. an upstream fault) must come out as NaN, not
        // be laundered into some quantised finite value — and must trip the
        // validity check.
        let mut sensors = SensorSuite::odroid_defaults(11);
        let reading = sensors.sample([f64::NAN, 50.0, 50.0, 50.0], &DomainPower::default(), 0.0);
        assert!(reading.core_temps_c[0].is_nan());
        assert!(!reading.is_valid());
    }

    #[test]
    fn same_seed_reproduces_the_same_noise() {
        let mut a = SensorSuite::odroid_defaults(9);
        let mut b = SensorSuite::odroid_defaults(9);
        let truth = [60.0; 4];
        let power = DomainPower::new(3.0, 0.1, 0.4, 0.5);
        for _ in 0..10 {
            assert_eq!(a.sample(truth, &power, 6.0), b.sample(truth, &power, 6.0));
        }
    }
}

//! Checked-in naive baseline of the plant integrator.
//!
//! [`NaivePhysicalPlant`] reproduces, through the public APIs, the original
//! allocation-heavy simulation loop that [`crate::PhysicalPlant`] replaced:
//!
//! * the whole thermal network is cloned once per control interval to apply
//!   the fan conductance ([`ThermalNetwork::with_extra_ambient_conductance`]),
//! * every micro-step rebuilds the online-core list as a `Vec<usize>`,
//!   re-reads the OPP tables, allocates a fresh node-power `Vec` and runs the
//!   original collect-per-stage RK4 (eight intermediate `Vec`s per step, a
//!   division by the capacitance per node per stage),
//! * nothing state-dependent is hoisted out of the micro-step loop — the
//!   original even evaluated the memory leakage model each micro-step only to
//!   multiply the result by zero, which is preserved here.
//!
//! It exists for two jobs: the `plant_step` Criterion benchmark measures the
//! optimized hot path *against* it (the ≥5× steps/sec acceptance bar), and
//! the equivalence tests prove the optimized [`crate::PhysicalPlant`]
//! produces identical trajectories. It is not used by any experiment.

use power_model::{DomainPower, LeakageModel, LeakageParams};
use soc_model::{ClusterKind, FanLevel, PlatformState, SocSpec};
use thermal_model::{ExynosThermalNetwork, ThermalNetwork};
use workload::Demand;

use crate::plant::{PlantPowerParams, PlantStep};
use crate::SimError;

/// The reference (slow) implementation of the physical plant.
#[derive(Debug, Clone)]
pub struct NaivePhysicalPlant {
    spec: SocSpec,
    params: PlantPowerParams,
    thermal: ExynosThermalNetwork,
    node_temps_c: Vec<f64>,
    big_leak: LeakageModel,
    little_leak: LeakageModel,
    gpu_leak: LeakageModel,
    mem_leak: LeakageModel,
    plant_dt_s: f64,
}

/// The original allocating RK4 derivative: one heap-allocated flow vector and
/// one derivative vector per evaluation.
fn derivative(network: &ThermalNetwork, temps: &[f64], powers: &[f64], ambient_c: f64) -> Vec<f64> {
    let n = network.node_count();
    let mut heat_flow = vec![0.0; n];
    for &(a, b, g) in network.couplings() {
        let flow = g * (temps[b] - temps[a]);
        heat_flow[a] += flow;
        heat_flow[b] -= flow;
    }
    let capacitances = network.capacitances();
    let ambient_conductances = network.ambient_conductances();
    let mut derivative = vec![0.0; n];
    for i in 0..n {
        let ambient_flow = ambient_conductances[i] * (ambient_c - temps[i]);
        derivative[i] = (heat_flow[i] + ambient_flow + powers[i]) / capacitances[i];
    }
    derivative
}

/// The original allocating RK4 step: collects every stage into a fresh `Vec`.
fn rk4_step(
    network: &ThermalNetwork,
    temps: &[f64],
    powers: &[f64],
    ambient_c: f64,
    dt_s: f64,
) -> Vec<f64> {
    let k1 = derivative(network, temps, powers, ambient_c);
    let mid1: Vec<f64> = temps
        .iter()
        .zip(&k1)
        .map(|(t, k)| t + 0.5 * dt_s * k)
        .collect();
    let k2 = derivative(network, &mid1, powers, ambient_c);
    let mid2: Vec<f64> = temps
        .iter()
        .zip(&k2)
        .map(|(t, k)| t + 0.5 * dt_s * k)
        .collect();
    let k3 = derivative(network, &mid2, powers, ambient_c);
    let end: Vec<f64> = temps.iter().zip(&k3).map(|(t, k)| t + dt_s * k).collect();
    let k4 = derivative(network, &end, powers, ambient_c);
    (0..temps.len())
        .map(|i| temps[i] + dt_s / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
        .collect()
}

fn scaled(params: LeakageParams, factor: f64) -> LeakageModel {
    LeakageModel::new(LeakageParams {
        c1: params.c1 * factor,
        c2: params.c2,
        igate_a: params.igate_a * factor,
    })
}

impl NaivePhysicalPlant {
    /// Creates the baseline plant (same parameters as
    /// [`crate::PhysicalPlant::new`]).
    pub fn new(spec: SocSpec, params: PlantPowerParams) -> Self {
        let thermal = ExynosThermalNetwork::odroid_xu_e();
        let node_count = thermal.network().node_count();
        NaivePhysicalPlant {
            node_temps_c: vec![params.initial_temp_c; node_count],
            big_leak: scaled(LeakageParams::exynos5410_big(), params.leakage_mismatch),
            little_leak: scaled(LeakageParams::exynos5410_little(), params.leakage_mismatch),
            gpu_leak: scaled(LeakageParams::exynos5410_gpu(), params.leakage_mismatch),
            mem_leak: scaled(LeakageParams::exynos5410_memory(), params.leakage_mismatch),
            spec,
            params,
            thermal,
            plant_dt_s: 0.01,
        }
    }

    /// Current true hotspot temperatures, °C.
    pub fn core_temps_c(&self) -> [f64; 4] {
        self.thermal.hotspot_temps(&self.node_temps_c)
    }

    /// Current true temperature of every thermal node, °C.
    pub fn node_temps_c(&self) -> &[f64] {
        &self.node_temps_c
    }

    /// The original per-micro-step power computation: rebuilds the online
    /// list and re-reads the OPP tables every call.
    fn domain_powers(
        &self,
        state: &PlatformState,
        demand: &Demand,
    ) -> Result<(DomainPower, [f64; 4]), SimError> {
        let spec = &self.spec;
        let core_temps = self.core_temps_c();
        let case_temp = self.node_temps_c[self.thermal.case_node().0];

        let mut big_core_powers = [0.0f64; 4];
        let mut big_total = 0.0;
        let little_total;

        let active = state.active_cluster;
        let online: Vec<usize> = (0..4)
            .filter(|&i| state.is_core_online(active, i))
            .collect();
        let per_core_utilisation =
            |slot: usize| -> f64 { (demand.cpu_streams - slot as f64).clamp(0.0, 1.0) };

        match active {
            ClusterKind::Big => {
                let freq = state.big_frequency;
                let volts = spec.big_opps().voltage_for(freq)?.volts();
                let v2f = volts * volts * freq.hz();
                let uncore = self.params.big_uncore_ceff_f * v2f;
                big_total += uncore;
                let uncore_share = if online.is_empty() {
                    0.0
                } else {
                    uncore / online.len() as f64
                };
                for (slot, &core) in online.iter().enumerate() {
                    let util = per_core_utilisation(slot);
                    let dynamic = self.params.big_core_ceff_f * demand.activity_factor * util * v2f;
                    let leak = volts * self.big_leak.current_a(core_temps[core]) / 4.0;
                    big_core_powers[core] = dynamic + leak + uncore_share;
                    big_total += dynamic + leak;
                }
                for core in 0..4 {
                    if !state.is_core_online(ClusterKind::Big, core) {
                        let leak = volts * self.big_leak.current_a(core_temps[core]) / 4.0
                            * self.params.gated_leakage_fraction;
                        big_core_powers[core] += leak;
                        big_total += leak;
                    }
                }
                let lv = spec.little_opps().lowest().voltage.volts();
                little_total =
                    lv * self.little_leak.current_a(case_temp) * self.params.gated_leakage_fraction;
            }
            ClusterKind::Little => {
                let freq = state.little_frequency;
                let volts = spec.little_opps().voltage_for(freq)?.volts();
                let v2f = volts * volts * freq.hz();
                little_total = self.params.little_uncore_ceff_f * v2f
                    + online
                        .iter()
                        .enumerate()
                        .map(|(slot, _)| {
                            self.params.little_core_ceff_f
                                * demand.activity_factor
                                * per_core_utilisation(slot)
                                * v2f
                        })
                        .sum::<f64>()
                    + volts * self.little_leak.current_a(case_temp);
                let bv = spec.big_opps().lowest().voltage.volts();
                for core in 0..4 {
                    let leak = bv * self.big_leak.current_a(core_temps[core]) / 4.0
                        * self.params.gated_leakage_fraction;
                    big_core_powers[core] = leak;
                    big_total += leak;
                }
            }
        }

        let gpu_temp = self.node_temps_c[self.thermal.gpu_node().0];
        let gpu_volts = spec.gpu_opps().voltage_for(state.gpu_frequency)?.volts();
        let gpu_dynamic = self.params.gpu_ceff_f
            * demand.gpu_utilization
            * gpu_volts
            * gpu_volts
            * state.gpu_frequency.hz();
        let gpu_power = gpu_dynamic + gpu_volts * self.gpu_leak.current_a(gpu_temp);

        // The original's dead memory-leakage lookup: evaluated every
        // micro-step, multiplied by zero (leakage is folded into the base).
        let mem_temp = self.node_temps_c[self.thermal.memory_node().0];
        let mem_power = self.params.memory_base_w
            + self.params.memory_active_w * demand.memory_intensity
            + 1.0 * self.mem_leak.current_a(mem_temp) * 0.0;

        Ok((
            DomainPower::new(big_total, little_total, gpu_power, mem_power),
            big_core_powers,
        ))
    }

    fn throughput_units_per_s(&self, state: &PlatformState, demand: &Demand) -> f64 {
        let active = state.active_cluster;
        let online = state.online_core_count(active) as f64;
        let streams = demand.cpu_streams.min(online);
        let cluster = self.spec.cluster(active);
        let freq_ghz = state.cluster_frequency(active).ghz();
        let max_ghz = cluster.opps.highest().frequency.ghz();
        let s = demand.frequency_scalability.clamp(0.0, 1.0);
        let effective_ghz = max_ghz * ((1.0 - s) + s * freq_ghz / max_ghz);
        streams * effective_ghz * cluster.performance_per_ghz
    }

    /// The original per-interval loop: clones the fan-boosted network, then
    /// allocates its way through every micro-step.
    ///
    /// # Errors
    ///
    /// Same error behaviour as [`crate::PhysicalPlant::step_interval`].
    pub fn step_interval(
        &mut self,
        state: &PlatformState,
        demand: &Demand,
        fan_level: FanLevel,
        ambient_c: f64,
        interval_s: f64,
    ) -> Result<PlantStep, SimError> {
        if !(interval_s > 0.0) {
            return Err(SimError::InvalidConfig("control interval must be positive"));
        }
        let fan_boost = self.spec.fan().conductance_boost_w_per_k(fan_level);
        let network: ThermalNetwork = self.thermal.network_with_fan_boost(fan_boost);

        let steps = (interval_s / self.plant_dt_s).round().max(1.0) as usize;
        let mut power_accum = DomainPower::default();
        for _ in 0..steps {
            let (domains, big_cores) = self.domain_powers(state, demand)?;
            power_accum = power_accum + domains;
            let node_powers = self.thermal.power_vector(
                &big_cores,
                domains.little_w,
                domains.gpu_w,
                domains.memory_w,
            );
            self.node_temps_c = rk4_step(
                &network,
                &self.node_temps_c,
                &node_powers,
                ambient_c,
                self.plant_dt_s,
            );
        }
        let scale = 1.0 / steps as f64;
        let domain_power = DomainPower::new(
            power_accum.big_w * scale,
            power_accum.little_w * scale,
            power_accum.gpu_w * scale,
            power_accum.memory_w * scale,
        );
        let fan_power = self.spec.fan().power_w(fan_level);
        let platform_power_w = domain_power.total() + self.params.board_base_w + fan_power;
        let work_done = self.throughput_units_per_s(state, demand) * interval_s;

        Ok(PlantStep {
            domain_power,
            core_temps_c: self.core_temps_c(),
            platform_power_w,
            work_done,
        })
    }
}

//! Streaming per-run observation: the [`RunObserver`] seam and its built-in
//! implementations.
//!
//! Before this module existed every run *accumulated*: the control loop
//! retained one [`TraceRecord`] per 100 ms interval and analysis happened
//! post-hoc on the full [`Trace`], so a sweep's memory grew as
//! scenarios × intervals — the batched engines could advance far more
//! scenarios than a campaign could afford to remember. The observer seam
//! turns the result path around: the executor *streams* every absorbed
//! interval through a [`RunObserver`], and what a run retains is whatever its
//! observer chose to keep.
//!
//! Three observers cover the spectrum:
//!
//! * [`Trace`] itself implements [`RunObserver`] — full per-interval
//!   retention, the classic [`crate::SimulationResult`] path.
//! * [`DecimatedTrace`] keeps every k-th record (plus the final one), a
//!   coarse trajectory for sinks that want plots without the memory bill.
//! * [`OnlineRunStats`] retains nothing per-interval: it folds each record
//!   into O(1) state (Welford mean/variance and running min/max via
//!   [`numeric::Welford`], running power sum, intervention/residency
//!   counters) and can produce the [`crate::metrics::StabilityReport`] and
//!   [`crate::metrics::BenchmarkComparison`] inputs of a run — the same
//!   numbers the post-hoc analysis computes from a retained trace, to within
//!   the Welford-vs-two-pass variance rounding (≤ 1e-9; mean power, min and
//!   max are bit-identical).
//!
//! Which observer a run uses is selected by [`TracePolicy`] (a knob on
//! [`crate::Experiment`], [`crate::ScenarioSweep`] and the campaign runner);
//! the control loop *always* maintains an [`OnlineRunStats`] besides — it
//! costs a handful of flops per interval against the plant's thousands — so
//! every run produces a [`crate::metrics::RunSummary`] whether or not it
//! retained a trace.

use crate::metrics::StabilityReport;
use crate::safety::Incident;
use crate::trace::{Trace, TraceRecord};

/// Per-run streaming observation: one callback per absorbed control interval,
/// one at retirement.
///
/// Driven by the control-loop executor ([`crate::Experiment`], the lockstep
/// runner and every sweep/campaign path — they all share one executor): after
/// a lane absorbs an interval, its observer sees the interval's
/// [`TraceRecord`]; when the lane retires its scenario, [`RunObserver::finish`]
/// hands back whatever trajectory the observer retained.
pub trait RunObserver: std::fmt::Debug + Send {
    /// Called once per absorbed control interval, in time order.
    fn on_interval(&mut self, record: &TraceRecord);

    /// Called once per robustness event (sensor fault/recovery, safety-ladder
    /// transition, policy demotion/promotion, shutdown), in firing order,
    /// interleaved with the interval stream. The default ignores them — the
    /// full [`crate::safety::IncidentLog`] always rides on the run's
    /// [`crate::metrics::RunSummary`] regardless; this hook is for observers
    /// that want to *react* while the run is still in flight (live telemetry,
    /// early alerts).
    fn on_incident(&mut self, _incident: &Incident) {}

    /// Called once when the run retires (benchmark complete, duration cap, or
    /// error); hands back the retained trajectory, if any. The observer is
    /// spent afterwards.
    fn finish(&mut self) -> Option<Trace> {
        None
    }
}

/// Full per-interval retention: the trace *is* the observer.
impl RunObserver for Trace {
    fn on_interval(&mut self, record: &TraceRecord) {
        self.push(*record);
    }

    fn finish(&mut self) -> Option<Trace> {
        Some(std::mem::take(self))
    }
}

/// A decimating trace observer: retains every `every`-th record plus the
/// final one, so sinks that want coarse trajectories (plots, spot checks) pay
/// `intervals / every` records instead of all of them.
///
/// The retained records keep their original `time_s`, so a decimated trace
/// plots on the same axis as a full one; rate metrics
/// ([`Trace::intervention_rate`] and friends) computed *on* the decimated
/// trace are of course estimates over the kept sample.
#[derive(Debug, Clone)]
pub struct DecimatedTrace {
    every: usize,
    seen: usize,
    kept: Trace,
    last: Option<TraceRecord>,
}

impl DecimatedTrace {
    /// Keeps every `every`-th record (clamped to at least 1 — every record).
    pub fn new(every: usize) -> DecimatedTrace {
        DecimatedTrace {
            every: every.max(1),
            seen: 0,
            kept: Trace::new(),
            last: None,
        }
    }

    /// The decimation factor.
    pub fn every(&self) -> usize {
        self.every
    }

    /// Records observed so far (not the records kept).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Consumes the observer into the retained coarse trace, appending the
    /// final record if decimation would have dropped it.
    pub fn into_trace(mut self) -> Trace {
        self.take_trace()
    }

    fn take_trace(&mut self) -> Trace {
        let mut kept = std::mem::take(&mut self.kept);
        if let Some(last) = self.last.take() {
            if self.seen > 0 && !(self.seen - 1).is_multiple_of(self.every) {
                kept.push(last);
            }
        }
        self.seen = 0;
        kept
    }
}

impl RunObserver for DecimatedTrace {
    fn on_interval(&mut self, record: &TraceRecord) {
        if self.seen.is_multiple_of(self.every) {
            self.kept.push(*record);
        } else {
            self.last = Some(*record);
        }
        self.seen += 1;
    }

    fn finish(&mut self) -> Option<Trace> {
        Some(self.take_trace())
    }
}

/// The online-metrics observer: O(1) state per run, no per-interval
/// retention.
///
/// Folds each interval into streaming accumulators and produces the inputs
/// of the evaluation's figures — [`StabilityReport`] (Welford mean/variance
/// and running min/max of the per-interval maximum core temperature), mean
/// platform power (plain running sum, bit-identical to
/// [`Trace::mean_platform_power_w`] over the same records), and the
/// intervention/residency rates. An optional absolute warm-up skip excludes
/// the first `skip` intervals from the *stability* window only (mean power
/// and the rates always cover the whole run), the streaming analogue of
/// [`StabilityReport::of_steady_portion`]'s prefix skip.
// Not serde-derived: the embedded [`numeric::Welford`] holds ±∞ sentinels
// while empty, which JSON-style formats cannot round-trip. The streamed
// wire format is the finished [`crate::metrics::RunSummary`].
#[derive(Debug, Clone)]
pub struct OnlineRunStats {
    skip: usize,
    intervals: usize,
    power_sum_w: f64,
    max_temp: numeric::Welford,
    intervened: usize,
    little_intervals: usize,
}

impl OnlineRunStats {
    /// Statistics over the whole run (no warm-up skip).
    pub fn new() -> OnlineRunStats {
        OnlineRunStats::with_skipped_intervals(0)
    }

    /// Statistics whose *stability* window excludes the first `skip`
    /// intervals (mean power and the rates still cover every interval).
    pub fn with_skipped_intervals(skip: usize) -> OnlineRunStats {
        OnlineRunStats {
            skip,
            intervals: 0,
            power_sum_w: 0.0,
            max_temp: numeric::Welford::new(),
            intervened: 0,
            little_intervals: 0,
        }
    }

    /// Intervals folded in so far.
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Mean measured platform power, watts; 0 before the first interval
    /// (mirroring [`Trace::mean_platform_power_w`]).
    pub fn mean_platform_power_w(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.power_sum_w / self.intervals as f64
        }
    }

    /// Thermal stability over the (post-warm-up) stability window.
    ///
    /// # Panics
    ///
    /// Panics if the stability window is empty (no intervals past the
    /// configured skip), mirroring [`Trace::temperature_summary`].
    pub fn stability(&self) -> StabilityReport {
        let summary = self.max_temp.summary();
        StabilityReport {
            mean_temp_c: summary.mean,
            temp_range_c: summary.range(),
            temp_variance: summary.variance,
            peak_temp_c: summary.max,
        }
    }

    /// Fraction of intervals in which the DTPM policy intervened.
    pub fn intervention_rate(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.intervened as f64 / self.intervals as f64
        }
    }

    /// Fraction of intervals spent on the little cluster.
    pub fn little_cluster_residency(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.little_intervals as f64 / self.intervals as f64
        }
    }
}

impl Default for OnlineRunStats {
    fn default() -> Self {
        OnlineRunStats::new()
    }
}

impl RunObserver for OnlineRunStats {
    fn on_interval(&mut self, record: &TraceRecord) {
        self.power_sum_w += record.platform_power_w;
        if self.intervals >= self.skip {
            self.max_temp.push(record.max_core_temp_c());
        }
        if record.dtpm_intervened {
            self.intervened += 1;
        }
        if record.active_cluster == soc_model::ClusterKind::Little {
            self.little_intervals += 1;
        }
        self.intervals += 1;
    }
}

/// A trace-retaining observer that retains nothing: the summary-only mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardTrace;

impl RunObserver for DiscardTrace {
    fn on_interval(&mut self, _record: &TraceRecord) {}
}

/// What a run retains per interval — the memory/fidelity knob of every
/// execution path ([`crate::Experiment`], [`crate::ScenarioSweep`], the
/// campaign runner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePolicy {
    /// Retain the full per-interval trace (the [`crate::SimulationResult`]
    /// path). Memory per run is O(intervals).
    Full,
    /// Retain every k-th record plus the final one ([`DecimatedTrace`]): a
    /// coarse trajectory at `intervals / k` records.
    Decimated(usize),
    /// Retain nothing per interval; the run reports only its streamed
    /// [`crate::metrics::RunSummary`]. Memory per run is O(1).
    SummaryOnly,
}

impl TracePolicy {
    /// The trace-retention observer implementing this policy.
    pub fn observer(self) -> Box<dyn RunObserver> {
        match self {
            TracePolicy::Full => Box::new(Trace::new()),
            TracePolicy::Decimated(every) => Box::new(DecimatedTrace::new(every)),
            TracePolicy::SummaryOnly => Box::new(DiscardTrace),
        }
    }

    /// Whether this policy retains the *complete* per-interval trajectory.
    /// (`Decimated(0)` clamps to keeping every record, like
    /// [`DecimatedTrace::new`].)
    pub fn retains_full_trace(self) -> bool {
        match self {
            TracePolicy::Full => true,
            TracePolicy::Decimated(every) => every <= 1,
            TracePolicy::SummaryOnly => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::DomainPower;
    use soc_model::{ClusterKind, FanLevel};

    fn record(k: usize) -> TraceRecord {
        let temp = 50.0 + (k % 13) as f64 * 0.7;
        TraceRecord {
            time_s: (k + 1) as f64 * 0.1,
            core_temps_c: [temp, temp - 1.0, temp - 0.5, temp - 1.5],
            active_cluster: if k.is_multiple_of(4) {
                ClusterKind::Little
            } else {
                ClusterKind::Big
            },
            frequency_mhz: 1600,
            online_cores: 4,
            gpu_frequency_mhz: 177,
            fan_level: FanLevel::Off,
            domain_power: DomainPower::new(3.0, 0.05, 0.1, 0.4),
            platform_power_w: 5.0 + (k % 7) as f64 * 0.21,
            progress: k as f64 / 100.0,
            predicted_peak_c: None,
            dtpm_intervened: k.is_multiple_of(5),
        }
    }

    fn replay(observer: &mut dyn RunObserver, count: usize) {
        for k in 0..count {
            observer.on_interval(&record(k));
        }
    }

    #[test]
    fn trace_observer_retains_everything() {
        let mut trace = Trace::new();
        replay(&mut trace, 37);
        let kept = trace.finish().expect("full retention");
        assert_eq!(kept.len(), 37);
        assert_eq!(kept.records()[36], record(36));
    }

    #[test]
    fn decimated_trace_keeps_every_kth_and_the_last() {
        let mut decimated = DecimatedTrace::new(10);
        replay(&mut decimated, 37);
        assert_eq!(decimated.seen(), 37);
        let kept = decimated.into_trace();
        // Indices 0, 10, 20, 30 plus the final record (36).
        assert_eq!(kept.len(), 5);
        assert_eq!(kept.records()[0], record(0));
        assert_eq!(kept.records()[3], record(30));
        assert_eq!(kept.records()[4], record(36));

        // When the last record is on the decimation grid it is not repeated.
        let mut decimated = DecimatedTrace::new(10);
        replay(&mut decimated, 31);
        assert_eq!(decimated.into_trace().len(), 4);

        // Factor 1 degenerates to full retention.
        let mut decimated = DecimatedTrace::new(1);
        replay(&mut decimated, 7);
        assert_eq!(decimated.finish().expect("kept").len(), 7);
    }

    #[test]
    fn online_stats_match_the_retained_trace() {
        let mut trace = Trace::new();
        let mut stats = OnlineRunStats::new();
        replay(&mut trace, 211);
        replay(&mut stats, 211);
        assert_eq!(stats.intervals(), 211);
        assert_eq!(stats.finish(), None, "stats retain no trace");
        // The running power sum is the same left fold `Iterator::sum` does.
        assert_eq!(stats.mean_platform_power_w(), trace.mean_platform_power_w());
        assert_eq!(stats.intervention_rate(), trace.intervention_rate());
        assert_eq!(
            stats.little_cluster_residency(),
            trace.little_cluster_residency()
        );
        let online = stats.stability();
        let summary = trace.temperature_summary();
        assert_eq!(online.peak_temp_c, summary.max);
        assert_eq!(online.temp_range_c, summary.range());
        assert!((online.mean_temp_c - summary.mean).abs() < 1e-12);
        assert!((online.temp_variance - summary.variance).abs() < 1e-9);
    }

    #[test]
    fn online_stats_skip_excludes_only_the_stability_window() {
        let mut all = OnlineRunStats::new();
        let mut skipped = OnlineRunStats::with_skipped_intervals(50);
        replay(&mut all, 120);
        replay(&mut skipped, 120);
        // Whole-run quantities are unaffected by the warm-up skip.
        assert_eq!(all.mean_platform_power_w(), skipped.mean_platform_power_w());
        assert_eq!(all.intervention_rate(), skipped.intervention_rate());
        // The stability window is the suffix: recompute it directly.
        let mut reference = numeric::Welford::new();
        for k in 50..120 {
            reference.push(record(k).max_core_temp_c());
        }
        let stability = skipped.stability();
        assert_eq!(stability.peak_temp_c, reference.max());
        assert!((stability.mean_temp_c - reference.mean()).abs() < 1e-12);
        assert!((stability.temp_variance - reference.variance()).abs() < 1e-12);
    }

    #[test]
    fn empty_online_stats_are_neutral() {
        let stats = OnlineRunStats::default();
        assert_eq!(stats.mean_platform_power_w(), 0.0);
        assert_eq!(stats.intervention_rate(), 0.0);
        assert_eq!(stats.little_cluster_residency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_stability_window_panics() {
        OnlineRunStats::new().stability();
    }

    #[test]
    fn trace_policy_builds_the_matching_observer() {
        let mut full = TracePolicy::Full.observer();
        let mut decimated = TracePolicy::Decimated(4).observer();
        let mut summary = TracePolicy::SummaryOnly.observer();
        for observer in [&mut full, &mut decimated, &mut summary] {
            replay(observer.as_mut(), 9);
        }
        assert_eq!(full.finish().expect("full").len(), 9);
        assert_eq!(decimated.finish().expect("coarse").len(), 3); // indices 0, 4, 8
        assert_eq!(summary.finish(), None);
        assert!(TracePolicy::Full.retains_full_trace());
        assert!(TracePolicy::Decimated(1).retains_full_trace());
        // 0 clamps to keeping every record, so it is full retention too.
        assert!(TracePolicy::Decimated(0).retains_full_trace());
        assert!(!TracePolicy::Decimated(2).retains_full_trace());
        assert!(!TracePolicy::SummaryOnly.retains_full_trace());
    }
}

//! The pluggable plant-engine backend seam.
//!
//! Everything the closed-loop executor needs from "the silicon" is the small
//! per-interval contract captured by [`PlantEngine`]: re-initialise a lane
//! for a new scenario ([`PlantEngine::admit`]), advance every lane by one
//! control interval with per-lane inputs held constant
//! ([`PlantEngine::step_interval`]), and read back per-lane temperatures and
//! accumulated energy. Two backends implement it today:
//!
//! * [`ScalarEngine`] — one independent [`PhysicalPlant`] per lane, stepped
//!   back to back. The single-lane instantiation *is* the classic scalar
//!   simulation path ([`crate::Experiment::run`]).
//! * [`PanelEngine`] — the structure-of-arrays [`BatchPlant`]: all lanes
//!   advanced per instruction stream, one scenario per panel column.
//!
//! Because both speak the same contract, the control-loop executor in
//! [`crate::experiment`] is written once, generically, and the batched
//! lockstep runner is just the many-lane instantiation of the same code that
//! runs a single scalar experiment. The seam is also where a device backend
//! slots in: a GPU engine would keep temperature/power state in device
//! buffers and consume the precomputed per-step math exposed by
//! [`thermal_model::BatchStepTransition`] (`r` / `s_power` / `ambient_drive`
//! views), while the executor and control loops stay untouched.
//!
//! Lane recycling: [`PlantEngine::admit`] fully re-initialises a lane
//! (temperatures to the scenario's initial value, per-lane power parameters
//! and leakage models, energy accumulator to zero), so a sweep scheduler can
//! retire a finished scenario and admit a queued one into the freed lane
//! mid-flight — the basis of the lane-compacting scheduler in
//! [`crate::ScenarioSweep`].

use serde::{Deserialize, Serialize};
use soc_model::{FanLevel, PlatformState, SocSpec};
use workload::Demand;

use crate::batch::BatchPlant;
use crate::mixed::MixedBatchPlant;
use crate::plant::{PhysicalPlant, PlantPowerParams, PlantStep};
use crate::SimError;

/// Element precision of the plant engine a run steps its scenarios with.
///
/// The default, [`EnginePrecision::F64`], selects the existing engines
/// ([`ScalarEngine`] for single-lane runs, [`PanelEngine`] for batches) and
/// leaves every trajectory bit-identical to previous releases.
/// [`EnginePrecision::F32`] selects the [`MixedPanelEngine`] — f32 panel
/// state with f64 anchoring, roughly doubling SIMD width on the hot loops
/// within a validated ≤ 1e-3 °C trajectory budget.
/// [`EnginePrecision::F32Shadow`] steps *both* engines in lockstep and
/// records their worst-case node-temperature divergence
/// ([`MixedPanelEngine::worst_divergence_c`]) — the qualification mode for
/// new scenario families, costing slightly more than an f64-only run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EnginePrecision {
    /// Full f64 panels — the bit-identical default.
    #[default]
    F64,
    /// f32 panels with f64 anchoring (the mixed-precision engine).
    F32,
    /// f32 engine with an f64 shadow stepped in lockstep for validation.
    F32Shadow,
}

/// One lane's interval-constant control inputs to
/// [`PlantEngine::step_interval`].
#[derive(Debug, Clone, Copy)]
pub struct LaneInput<'a> {
    /// Platform state held constant over the interval.
    pub state: &'a PlatformState,
    /// Workload demand held constant over the interval.
    pub demand: &'a Demand,
    /// Fan level held constant over the interval.
    pub fan_level: FanLevel,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
}

/// The per-interval plant contract every simulation backend implements (see
/// the [module docs](self)).
///
/// An engine owns K scenario lanes of plant state. Per control interval the
/// executor hands it one [`LaneInput`] per lane and reads back one
/// [`PlantStep`] result per lane; between scenarios it re-initialises
/// individual lanes with [`PlantEngine::admit`]. Implementations must keep
/// lanes strictly isolated: admitting or failing one lane never disturbs the
/// trajectories of the others.
pub trait PlantEngine {
    /// Number of scenario lanes this engine advances per interval.
    fn lanes(&self) -> usize;

    /// Number of thermal nodes per lane.
    fn node_count(&self) -> usize;

    /// Re-initialises lane `lane` for a new scenario: every node temperature
    /// to `params.initial_temp_c`, the lane's true power parameters (and the
    /// leakage models derived from them) to `params`, and the lane's energy
    /// accumulator to zero.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    fn admit(&mut self, lane: usize, params: PlantPowerParams);

    /// Advances every lane by one control interval of `interval_s` seconds
    /// with its inputs held constant, replacing the contents of `steps` with
    /// one [`PlantStep`] result per lane (in lane order). A lane whose
    /// interval fails (e.g. an unsupported frequency) reports its error in
    /// its slot without disturbing the other lanes.
    ///
    /// # Errors
    ///
    /// Returns an engine-level error only for malformed calls: an input
    /// count that does not match [`PlantEngine::lanes`] or a non-positive
    /// interval. `steps` is left empty in that case.
    fn step_interval(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
        steps: &mut Vec<Result<PlantStep, SimError>>,
    ) -> Result<(), SimError>;

    /// Lane `lane`'s current true hotspot (big-core) temperatures, °C.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    fn core_temps_c(&self, lane: usize) -> [f64; 4];

    /// Writes lane `lane`'s current true temperature of every thermal node
    /// (°C) into `out`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `out` does not cover
    /// [`PlantEngine::node_count`] nodes.
    fn node_temps_into(&self, lane: usize, out: &mut [f64]);

    /// True platform energy lane `lane` has accumulated since it was last
    /// admitted, in joules: the per-interval platform power integrated over
    /// *every* interval the engine stepped the lane. That includes intervals
    /// a finished scenario's lane idles on frozen inputs while its batch
    /// mates keep running — so this is the lane's integrated energy, not
    /// necessarily one scenario's. Read it when the scenario completes (the
    /// closed-loop executor's per-result energy bookkeeping does exactly
    /// that, via the control loop) if per-scenario energy is what you need.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    fn energy_j(&self, lane: usize) -> f64;
}

/// The scalar backend: one independent [`PhysicalPlant`] per lane, stepped
/// back to back per interval. One lane of this engine is exactly the classic
/// per-scenario simulation; K lanes are the unbatched comparator for the
/// structure-of-arrays [`PanelEngine`].
#[derive(Debug, Clone)]
pub struct ScalarEngine {
    spec: SocSpec,
    plants: Vec<PhysicalPlant>,
    energy_j: Vec<f64>,
}

impl ScalarEngine {
    /// Creates one plant per entry of `params`, each at its configured
    /// initial temperature.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn new(spec: SocSpec, params: &[PlantPowerParams]) -> Self {
        assert!(!params.is_empty(), "an engine needs at least one lane");
        let plants = params
            .iter()
            .map(|p| PhysicalPlant::new(spec.clone(), *p))
            .collect();
        ScalarEngine {
            spec,
            plants,
            energy_j: vec![0.0; params.len()],
        }
    }

    /// Borrowed view of lane `lane`'s plant.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn plant(&self, lane: usize) -> &PhysicalPlant {
        &self.plants[lane]
    }
}

impl PlantEngine for ScalarEngine {
    fn lanes(&self) -> usize {
        self.plants.len()
    }

    fn node_count(&self) -> usize {
        self.plants[0].node_temps_c().len()
    }

    fn admit(&mut self, lane: usize, params: PlantPowerParams) {
        self.plants[lane] = PhysicalPlant::new(self.spec.clone(), params);
        self.energy_j[lane] = 0.0;
    }

    fn step_interval(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
        steps: &mut Vec<Result<PlantStep, SimError>>,
    ) -> Result<(), SimError> {
        steps.clear();
        if inputs.len() != self.plants.len() {
            return Err(SimError::InvalidConfig(
                "lane input count must match the engine width",
            ));
        }
        if !(interval_s > 0.0) {
            return Err(SimError::InvalidConfig("control interval must be positive"));
        }
        for (lane, (plant, input)) in self.plants.iter_mut().zip(inputs).enumerate() {
            let step = plant.step_interval(
                input.state,
                input.demand,
                input.fan_level,
                input.ambient_c,
                interval_s,
            );
            if let Ok(step) = &step {
                self.energy_j[lane] += step.platform_power_w * interval_s;
            }
            steps.push(step);
        }
        Ok(())
    }

    fn core_temps_c(&self, lane: usize) -> [f64; 4] {
        self.plants[lane].core_temps_c()
    }

    fn node_temps_into(&self, lane: usize, out: &mut [f64]) {
        out.copy_from_slice(self.plants[lane].node_temps_c());
    }

    fn energy_j(&self, lane: usize) -> f64 {
        self.energy_j[lane]
    }
}

/// The structure-of-arrays backend: a [`BatchPlant`] advancing every lane
/// per instruction stream (see the [`crate::batch`] module docs for the
/// panel layout and its equivalence bars).
#[derive(Debug, Clone)]
pub struct PanelEngine {
    plant: BatchPlant,
    energy_j: Vec<f64>,
}

impl PanelEngine {
    /// Creates a batch of `params.len()` lanes, each starting at its
    /// configured initial temperature.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn new(spec: SocSpec, params: &[PlantPowerParams]) -> Self {
        PanelEngine {
            plant: BatchPlant::new(spec, params),
            energy_j: vec![0.0; params.len()],
        }
    }

    /// Borrowed view of the underlying batch plant.
    pub fn batch(&self) -> &BatchPlant {
        &self.plant
    }
}

impl PlantEngine for PanelEngine {
    fn lanes(&self) -> usize {
        self.plant.lanes()
    }

    fn node_count(&self) -> usize {
        self.plant.node_count()
    }

    fn admit(&mut self, lane: usize, params: PlantPowerParams) {
        self.plant.admit_lane(lane, params);
        self.energy_j[lane] = 0.0;
    }

    fn step_interval(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
        steps: &mut Vec<Result<PlantStep, SimError>>,
    ) -> Result<(), SimError> {
        steps.clear();
        self.plant.step_interval_into(inputs, interval_s, steps)?;
        for (lane, step) in steps.iter().enumerate() {
            if let Ok(step) = step {
                self.energy_j[lane] += step.platform_power_w * interval_s;
            }
        }
        Ok(())
    }

    fn core_temps_c(&self, lane: usize) -> [f64; 4] {
        self.plant.core_temps_c(lane)
    }

    fn node_temps_into(&self, lane: usize, out: &mut [f64]) {
        self.plant.node_temps_into(lane, out);
    }

    fn energy_j(&self, lane: usize) -> f64 {
        self.energy_j[lane]
    }
}

/// The f64 shadow state of a [`MixedPanelEngine`] in
/// [`EnginePrecision::F32Shadow`] mode.
#[derive(Debug, Clone)]
struct ShadowState {
    plant: BatchPlant,
    steps: Vec<Result<PlantStep, SimError>>,
    nodes32: Vec<f64>,
    nodes64: Vec<f64>,
    worst_divergence_c: f64,
}

/// The mixed-precision backend: a [`MixedBatchPlant`] advancing every lane
/// at f32 panel width with f64 anchoring (see the [`crate::mixed`] module
/// docs for the precision split and its budgets).
///
/// With [`MixedPanelEngine::with_shadow`] the engine additionally steps a
/// full-precision [`BatchPlant`] in lockstep on the same inputs and records
/// the worst node-temperature divergence observed so far — the
/// [`EnginePrecision::F32Shadow`] validation mode.
#[derive(Debug, Clone)]
pub struct MixedPanelEngine {
    plant: MixedBatchPlant,
    energy_j: Vec<f64>,
    shadow: Option<Box<ShadowState>>,
}

impl MixedPanelEngine {
    /// Creates a batch of `params.len()` f32 lanes, each starting at its
    /// configured initial temperature.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn new(spec: SocSpec, params: &[PlantPowerParams]) -> Self {
        MixedPanelEngine {
            plant: MixedBatchPlant::new(spec, params),
            energy_j: vec![0.0; params.len()],
            shadow: None,
        }
    }

    /// Creates the engine with an f64 shadow plant stepped in lockstep; the
    /// per-lane results still come from the f32 engine, while
    /// [`MixedPanelEngine::worst_divergence_c`] tracks the divergence.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn with_shadow(spec: SocSpec, params: &[PlantPowerParams]) -> Self {
        let plant = MixedBatchPlant::new(spec.clone(), params);
        let node_count = plant.node_count();
        MixedPanelEngine {
            plant,
            energy_j: vec![0.0; params.len()],
            shadow: Some(Box::new(ShadowState {
                plant: BatchPlant::new(spec, params),
                steps: Vec::with_capacity(params.len()),
                nodes32: vec![0.0; node_count],
                nodes64: vec![0.0; node_count],
                worst_divergence_c: 0.0,
            })),
        }
    }

    /// Borrowed view of the underlying mixed batch plant.
    pub fn batch(&self) -> &MixedBatchPlant {
        &self.plant
    }

    /// Worst absolute f32-vs-f64 node-temperature divergence (°C) observed
    /// since construction, across every lane and interval. `None` unless the
    /// engine was built with [`MixedPanelEngine::with_shadow`].
    pub fn worst_divergence_c(&self) -> Option<f64> {
        self.shadow.as_ref().map(|s| s.worst_divergence_c)
    }
}

impl PlantEngine for MixedPanelEngine {
    fn lanes(&self) -> usize {
        self.plant.lanes()
    }

    fn node_count(&self) -> usize {
        self.plant.node_count()
    }

    fn admit(&mut self, lane: usize, params: PlantPowerParams) {
        self.plant.admit_lane(lane, params);
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.plant.admit_lane(lane, params);
        }
        self.energy_j[lane] = 0.0;
    }

    fn step_interval(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
        steps: &mut Vec<Result<PlantStep, SimError>>,
    ) -> Result<(), SimError> {
        steps.clear();
        self.plant.step_interval_into(inputs, interval_s, steps)?;
        for (lane, step) in steps.iter().enumerate() {
            if let Ok(step) = step {
                self.energy_j[lane] += step.platform_power_w * interval_s;
            }
        }
        if let Some(shadow) = self.shadow.as_mut() {
            let shadow_steps = &mut shadow.steps;
            shadow
                .plant
                .step_interval_into(inputs, interval_s, shadow_steps)?;
            for lane in 0..self.plant.lanes() {
                self.plant.node_temps_into(lane, &mut shadow.nodes32);
                shadow.plant.node_temps_into(lane, &mut shadow.nodes64);
                for (a, b) in shadow.nodes32.iter().zip(&shadow.nodes64) {
                    let d = (a - b).abs();
                    if d > shadow.worst_divergence_c {
                        shadow.worst_divergence_c = d;
                    }
                }
            }
        }
        Ok(())
    }

    fn core_temps_c(&self, lane: usize) -> [f64; 4] {
        self.plant.core_temps_c(lane)
    }

    fn node_temps_into(&self, lane: usize, out: &mut [f64]) {
        self.plant.node_temps_into(lane, out);
    }

    fn energy_j(&self, lane: usize) -> f64 {
        self.energy_j[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> Demand {
        Demand {
            cpu_streams: 3.0,
            activity_factor: 0.85,
            gpu_utilization: 0.3,
            memory_intensity: 0.5,
            frequency_scalability: 0.9,
        }
    }

    fn engines() -> (ScalarEngine, PanelEngine, SocSpec) {
        let spec = SocSpec::odroid_xu_e();
        let params = [
            PlantPowerParams::default(),
            PlantPowerParams {
                leakage_mismatch: 1.02,
                initial_temp_c: 47.0,
                ..PlantPowerParams::default()
            },
        ];
        (
            ScalarEngine::new(spec.clone(), &params),
            PanelEngine::new(spec.clone(), &params),
            spec,
        )
    }

    fn step_both(
        scalar: &mut ScalarEngine,
        panel: &mut PanelEngine,
        spec: &SocSpec,
        intervals: usize,
    ) {
        let state = PlatformState::default_for(spec);
        let d = demand();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..intervals {
            let inputs: Vec<LaneInput<'_>> = (0..scalar.lanes())
                .map(|_| LaneInput {
                    state: &state,
                    demand: &d,
                    fan_level: FanLevel::Off,
                    ambient_c: 28.0,
                })
                .collect();
            scalar.step_interval(&inputs, 0.1, &mut a).unwrap();
            panel.step_interval(&inputs, 0.1, &mut b).unwrap();
            assert!(a.iter().chain(&b).all(Result::is_ok));
        }
    }

    #[test]
    fn scalar_and_panel_engines_agree_through_the_trait() {
        let (mut scalar, mut panel, spec) = engines();
        step_both(&mut scalar, &mut panel, &spec, 200);
        assert_eq!(scalar.lanes(), panel.lanes());
        assert_eq!(scalar.node_count(), panel.node_count());
        let mut a = vec![0.0; scalar.node_count()];
        let mut b = vec![0.0; panel.node_count()];
        for lane in 0..scalar.lanes() {
            scalar.node_temps_into(lane, &mut a);
            panel.node_temps_into(lane, &mut b);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "lane {lane}: {x} vs {y}");
            }
            for (x, y) in scalar
                .core_temps_c(lane)
                .iter()
                .zip(panel.core_temps_c(lane))
            {
                assert!((x - y).abs() < 1e-9, "lane {lane} cores: {x} vs {y}");
            }
            let (ea, eb) = (scalar.energy_j(lane), panel.energy_j(lane));
            assert!(ea > 0.0, "energy must accumulate");
            assert!(
                (ea - eb).abs() <= 1e-6 * ea,
                "lane {lane} energy: {ea} vs {eb}"
            );
        }
    }

    #[test]
    fn admit_resets_a_lane_without_disturbing_the_others() {
        let (mut scalar, mut panel, spec) = engines();
        step_both(&mut scalar, &mut panel, &spec, 100);
        let untouched_before = panel.core_temps_c(0);
        let fresh = PlantPowerParams {
            initial_temp_c: 33.0,
            ..PlantPowerParams::default()
        };
        scalar.admit(1, fresh);
        panel.admit(1, fresh);
        for engine in [&scalar as &dyn PlantEngine, &panel as &dyn PlantEngine] {
            assert_eq!(engine.core_temps_c(1), [33.0; 4]);
            assert_eq!(engine.energy_j(1), 0.0, "admit resets the accumulator");
            let mut nodes = vec![0.0; engine.node_count()];
            engine.node_temps_into(1, &mut nodes);
            assert!(nodes.iter().all(|&t| t == 33.0));
        }
        assert_eq!(panel.core_temps_c(0), untouched_before);
        assert!(scalar.energy_j(0) > 0.0);
    }

    #[test]
    fn mixed_engine_tracks_the_panel_engine_within_budget() {
        let (_scalar, mut panel, spec) = engines();
        let params = [
            PlantPowerParams::default(),
            PlantPowerParams {
                leakage_mismatch: 1.02,
                initial_temp_c: 47.0,
                ..PlantPowerParams::default()
            },
        ];
        let mut mixed = MixedPanelEngine::new(spec.clone(), &params);
        assert_eq!(mixed.lanes(), panel.lanes());
        assert_eq!(mixed.node_count(), panel.node_count());
        assert!(mixed.worst_divergence_c().is_none());
        let state = PlatformState::default_for(&spec);
        let d = demand();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..200 {
            let inputs: Vec<LaneInput<'_>> = (0..panel.lanes())
                .map(|_| LaneInput {
                    state: &state,
                    demand: &d,
                    fan_level: FanLevel::Off,
                    ambient_c: 28.0,
                })
                .collect();
            panel.step_interval(&inputs, 0.1, &mut a).unwrap();
            mixed.step_interval(&inputs, 0.1, &mut b).unwrap();
            assert!(a.iter().chain(&b).all(Result::is_ok));
        }
        let mut x = vec![0.0; panel.node_count()];
        let mut y = vec![0.0; mixed.node_count()];
        for lane in 0..panel.lanes() {
            panel.node_temps_into(lane, &mut x);
            mixed.node_temps_into(lane, &mut y);
            for (p, m) in x.iter().zip(&y) {
                assert!((p - m).abs() < 1e-3, "lane {lane}: {p} vs {m}");
            }
            let (ep, em) = (panel.energy_j(lane), mixed.energy_j(lane));
            assert!(
                (ep - em).abs() <= 1e-3 * ep,
                "lane {lane} energy: {ep} vs {em}"
            );
        }
    }

    #[test]
    fn shadow_mode_records_worst_divergence() {
        let spec = SocSpec::odroid_xu_e();
        let params = [PlantPowerParams::default(), PlantPowerParams::default()];
        let mut shadowed = MixedPanelEngine::with_shadow(spec.clone(), &params);
        assert_eq!(shadowed.worst_divergence_c(), Some(0.0));
        let state = PlatformState::default_for(&spec);
        let d = demand();
        let mut out = Vec::new();
        for _ in 0..50 {
            let inputs: Vec<LaneInput<'_>> = (0..2)
                .map(|_| LaneInput {
                    state: &state,
                    demand: &d,
                    fan_level: FanLevel::Off,
                    ambient_c: 28.0,
                })
                .collect();
            shadowed.step_interval(&inputs, 0.1, &mut out).unwrap();
        }
        let worst = shadowed.worst_divergence_c().unwrap();
        assert!(worst > 0.0, "lockstep runs must observe some divergence");
        assert!(worst < 1e-3, "divergence {worst:.3e} exceeds the budget");
        // Admission resets both engines, so the shadow stays in lockstep.
        shadowed.admit(1, PlantPowerParams::default());
        let admitted = PlantPowerParams::default().initial_temp_c;
        assert_eq!(shadowed.core_temps_c(1), [admitted; 4]);
    }

    #[test]
    fn engine_precision_defaults_to_f64() {
        assert_eq!(EnginePrecision::default(), EnginePrecision::F64);
    }

    #[test]
    fn engines_reject_malformed_calls() {
        let (mut scalar, mut panel, spec) = engines();
        let state = PlatformState::default_for(&spec);
        let d = demand();
        let one = [LaneInput {
            state: &state,
            demand: &d,
            fan_level: FanLevel::Off,
            ambient_c: 28.0,
        }];
        let mut out = Vec::new();
        assert!(scalar.step_interval(&one, 0.1, &mut out).is_err());
        assert!(out.is_empty());
        assert!(panel.step_interval(&one, 0.1, &mut out).is_err());
        let two = [one[0], one[0]];
        assert!(scalar.step_interval(&two, 0.0, &mut out).is_err());
        assert!(panel.step_interval(&two, 0.0, &mut out).is_err());
    }
}

//! Thermal safety ladder, sensor-health monitoring and incident records.
//!
//! The predictive DTPM loop is only as safe as the sensor chain it reads, so
//! two defensive layers sit *above* any policy in the control loop:
//!
//! * **[`SafetyLadder`]** — a watchdog over the screened maximum core
//!   temperature: `Normal → Throttle → Critical → SimulatedShutdown`
//!   escalation (straight to the highest crossed rung) with
//!   hysteresis-plus-dwell de-escalation one rung at a time.
//!   [`SafetyLadder::enforce`] clamps whatever the policy decided —
//!   frequency cap on `Throttle`, floor-everything on `Critical` — and
//!   `SimulatedShutdown` is terminal: the run halts with an incident instead
//!   of melting the (simulated) board. Default trip points (80/90/100 °C)
//!   sit above any fault-free trajectory, so a healthy run with the ladder
//!   armed is bit-identical to one without it.
//! * **[`SensorHealth`]** — per-channel screening of every reading before
//!   the policy sees it: non-finite and out-of-plausible-range values (and,
//!   for noisy chains, exact flatlines) are replaced with the channel's
//!   last-known-good value. Substitution has a staleness budget; a channel
//!   stale past the budget makes the chain *unreliable*, which demotes the
//!   predictive policy to the reactive throttling governor
//!   (`governors::ReactiveThrottler`) until the chain has been healthy for a
//!   full recovery window — or, with [`HealthConfig::degraded_fallback`]
//!   off, drains the lane with a structured error. Screening is
//!   comparison-only: a valid reading passes through bit-unchanged.
//!
//! Every transition — detected fault, recovery, escalation, de-escalation,
//! demotion, shutdown — is recorded in an [`IncidentLog`] that rides on
//! [`crate::RunSummary`] and streams through
//! [`crate::RunObserver::on_incident`]. The log is a pure function of the
//! screened readings sequence, so identical seeds and fault plans replay
//! bit-identical logs regardless of lane or thread assignment.

use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, PlatformState, SocSpec};

use crate::faults::SensorChannel;
use crate::sensors::SensorReadings;

/// Rung of the thermal safety ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SafetyState {
    /// No intervention: the policy's decision stands.
    Normal,
    /// Big-cluster frequency capped at a fraction of the top OPP.
    Throttle,
    /// Everything floored: lowest OPPs, one big core.
    Critical,
    /// Terminal: the run halts (the simulated analogue of a hardware trip).
    SimulatedShutdown,
}

impl SafetyState {
    fn rung(self) -> u8 {
        match self {
            SafetyState::Normal => 0,
            SafetyState::Throttle => 1,
            SafetyState::Critical => 2,
            SafetyState::SimulatedShutdown => 3,
        }
    }
}

/// Configuration of the [`SafetyLadder`] watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderConfig {
    /// Whether the watchdog runs at all.
    pub enabled: bool,
    /// Temperature (°C) at or above which the `Throttle` rung engages.
    pub throttle_c: f64,
    /// Temperature (°C) at or above which the `Critical` rung engages.
    pub critical_c: f64,
    /// Temperature (°C) at or above which the run is shut down.
    pub shutdown_c: f64,
    /// De-escalation margin: a rung releases only below its entry threshold
    /// minus this hysteresis, °C.
    pub hysteresis_c: f64,
    /// Minimum intervals spent on a rung before it may de-escalate.
    pub min_dwell_intervals: usize,
    /// Big-cluster frequency cap on the `Throttle` rung, as a fraction of
    /// the highest OPP.
    pub throttle_factor: f64,
}

impl Default for LadderConfig {
    /// Trip points mirroring the Exynos TMU defaults (80/90/100 °C with
    /// software throttle, hardware throttle and trip rungs) — deliberately
    /// above every fault-free trajectory of the paper's experiments, whose
    /// worst observed peak is ≈71 °C, so arming the ladder does not perturb
    /// healthy runs.
    fn default() -> Self {
        LadderConfig {
            enabled: true,
            throttle_c: 80.0,
            critical_c: 90.0,
            shutdown_c: 100.0,
            hysteresis_c: 5.0,
            min_dwell_intervals: 10,
            throttle_factor: 0.6,
        }
    }
}

/// Configuration of the [`SensorHealth`] monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Whether readings are screened at all.
    pub monitor: bool,
    /// Lower edge of the plausible temperature envelope, °C.
    pub temp_min_c: f64,
    /// Upper edge of the plausible temperature envelope, °C.
    pub temp_max_c: f64,
    /// Upper edge of the plausible per-channel power envelope, W (the lower
    /// edge is 0: the measurement chain clamps there, so a negative reading
    /// is necessarily corrupt).
    pub power_max_w: f64,
    /// Exactly-equal consecutive readings after which a channel is declared
    /// flatlined (stuck). `0` disables flatline detection — required for
    /// ideal (noiseless) sensor chains, where consecutive equal readings
    /// are legitimate.
    pub flatline_intervals: usize,
    /// Consecutive intervals a channel may ride its last-known-good
    /// substitute before the chain is declared unreliable.
    pub staleness_budget: usize,
    /// Consecutive fully-healthy intervals required to promote the policy
    /// back after a demotion.
    pub recovery_intervals: usize,
    /// Substitute temperature when a channel faults before any good sample
    /// exists (assume hot-but-not-melting: throttle, don't fabricate a
    /// shutdown), °C.
    pub fallback_temp_c: f64,
    /// `true`: an unreliable chain demotes the predictive policy to the
    /// reactive throttling governor. `false`: it drains the lane with a
    /// structured sensor error instead.
    pub degraded_fallback: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            monitor: true,
            temp_min_c: -40.0,
            temp_max_c: 150.0,
            power_max_w: 50.0,
            flatline_intervals: 50,
            staleness_budget: 5,
            recovery_intervals: 20,
            fallback_temp_c: 85.0,
            degraded_fallback: true,
        }
    }
}

/// The combined robustness configuration carried by an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SafetyConfig {
    /// Watchdog ladder configuration.
    pub ladder: LadderConfig,
    /// Sensor-health monitor configuration.
    pub health: HealthConfig,
}

impl SafetyConfig {
    /// Both layers off: readings flow unscreened and no watchdog runs —
    /// exactly the pre-ladder control loop.
    pub fn disabled() -> Self {
        SafetyConfig {
            ladder: LadderConfig {
                enabled: false,
                ..LadderConfig::default()
            },
            health: HealthConfig {
                monitor: false,
                ..HealthConfig::default()
            },
        }
    }
}

/// What the health monitor observed on a channel when it declared a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultObservation {
    /// NaN or ±inf.
    NonFinite,
    /// Finite but outside the plausible operating envelope.
    OutOfRange,
    /// Exactly constant for the configured flatline window.
    Flatline,
}

/// One recorded robustness event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Control-interval index at which the event fired (0 = bootstrap).
    pub interval: usize,
    /// Simulation time of the event, seconds.
    pub time_s: f64,
    /// What happened.
    pub kind: IncidentKind,
}

/// The kinds of robustness events recorded in an [`IncidentLog`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// A sensor channel started reporting implausible values.
    SensorFault {
        /// The faulted channel.
        channel: SensorChannel,
        /// What the monitor observed.
        observed: FaultObservation,
    },
    /// A previously faulted channel reported a valid value again.
    SensorRecovered {
        /// The recovered channel.
        channel: SensorChannel,
    },
    /// The safety ladder climbed to a hotter rung.
    Escalated {
        /// Rung before the transition.
        from: SafetyState,
        /// Rung after the transition.
        to: SafetyState,
        /// Screened maximum core temperature that triggered it, °C.
        temp_c: f64,
    },
    /// The safety ladder stepped down one rung.
    Deescalated {
        /// Rung before the transition.
        from: SafetyState,
        /// Rung after the transition.
        to: SafetyState,
        /// Screened maximum core temperature at the transition, °C.
        temp_c: f64,
    },
    /// The run was halted by the ladder's terminal rung.
    SimulatedShutdown {
        /// Screened maximum core temperature at the trip, °C.
        temp_c: f64,
    },
    /// The sensor chain went unreliable and the predictive policy was
    /// demoted to the reactive throttling governor (or the lane drained,
    /// when the fallback is disabled).
    PolicyDegraded {
        /// The channel whose staleness exhausted the budget.
        channel: SensorChannel,
    },
    /// The chain stayed healthy through the recovery window and the
    /// predictive policy was promoted back.
    PolicyRestored,
}

/// Ordered record of every robustness event in a run.
///
/// A pure function of the screened reading sequence: identical seeds and
/// fault plans replay identical logs regardless of lane, thread or shard
/// assignment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IncidentLog {
    incidents: Vec<Incident>,
}

impl IncidentLog {
    /// Appends an incident.
    pub fn push(&mut self, incident: Incident) {
        self.incidents.push(incident);
    }

    /// Number of recorded incidents.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// Whether the run recorded no incidents (the healthy-run invariant).
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// The incidents, in firing order.
    pub fn as_slice(&self) -> &[Incident] {
        &self.incidents
    }

    /// Iterates the incidents in firing order.
    pub fn iter(&self) -> std::slice::Iter<'_, Incident> {
        self.incidents.iter()
    }

    /// Number of ladder escalations (including the terminal shutdown
    /// transition).
    pub fn escalations(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i.kind, IncidentKind::Escalated { .. }))
            .count()
    }

    /// Number of sensor-fault detections.
    pub fn sensor_faults(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i.kind, IncidentKind::SensorFault { .. }))
            .count()
    }

    /// Whether the run ended in a simulated shutdown.
    pub fn shut_down(&self) -> bool {
        self.incidents
            .iter()
            .any(|i| matches!(i.kind, IncidentKind::SimulatedShutdown { .. }))
    }
}

impl<'a> IntoIterator for &'a IncidentLog {
    type Item = &'a Incident;
    type IntoIter = std::slice::Iter<'a, Incident>;

    fn into_iter(self) -> Self::IntoIter {
        self.incidents.iter()
    }
}

/// The escalating thermal watchdog. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct SafetyLadder {
    config: LadderConfig,
    state: SafetyState,
    dwell: usize,
}

impl SafetyLadder {
    /// A ladder starting on the `Normal` rung.
    pub fn new(config: LadderConfig) -> SafetyLadder {
        SafetyLadder {
            config,
            state: SafetyState::Normal,
            dwell: 0,
        }
    }

    /// The current rung.
    pub fn state(&self) -> SafetyState {
        self.state
    }

    /// Whether the terminal rung has fired.
    pub fn is_shutdown(&self) -> bool {
        self.state == SafetyState::SimulatedShutdown
    }

    /// Entry threshold of a rung, °C.
    fn threshold(&self, state: SafetyState) -> f64 {
        match state {
            SafetyState::Normal => f64::NEG_INFINITY,
            SafetyState::Throttle => self.config.throttle_c,
            SafetyState::Critical => self.config.critical_c,
            SafetyState::SimulatedShutdown => self.config.shutdown_c,
        }
    }

    /// Feeds one interval's screened maximum core temperature through the
    /// ladder, recording any transition. Escalation jumps straight to the
    /// highest crossed rung; de-escalation steps down one rung at a time and
    /// only after [`LadderConfig::min_dwell_intervals`] on the current rung
    /// with the temperature below its entry threshold minus the hysteresis.
    /// A NaN temperature (possible only with screening disabled) holds the
    /// current rung.
    pub fn observe(
        &mut self,
        interval: usize,
        time_s: f64,
        max_core_temp_c: f64,
        incidents: &mut IncidentLog,
    ) {
        if !self.config.enabled || self.state == SafetyState::SimulatedShutdown {
            return;
        }
        let target = if max_core_temp_c >= self.config.shutdown_c {
            SafetyState::SimulatedShutdown
        } else if max_core_temp_c >= self.config.critical_c {
            SafetyState::Critical
        } else if max_core_temp_c >= self.config.throttle_c {
            SafetyState::Throttle
        } else {
            SafetyState::Normal
        };
        if target.rung() > self.state.rung() {
            let from = self.state;
            self.state = target;
            self.dwell = 0;
            incidents.push(Incident {
                interval,
                time_s,
                kind: IncidentKind::Escalated {
                    from,
                    to: target,
                    temp_c: max_core_temp_c,
                },
            });
            if target == SafetyState::SimulatedShutdown {
                incidents.push(Incident {
                    interval,
                    time_s,
                    kind: IncidentKind::SimulatedShutdown {
                        temp_c: max_core_temp_c,
                    },
                });
            }
            return;
        }
        let release = self.threshold(self.state) - self.config.hysteresis_c;
        if target.rung() < self.state.rung()
            && self.dwell >= self.config.min_dwell_intervals
            && max_core_temp_c < release
        {
            let from = self.state;
            self.state = match self.state {
                SafetyState::Critical => SafetyState::Throttle,
                SafetyState::Throttle => SafetyState::Normal,
                other => other,
            };
            self.dwell = 0;
            incidents.push(Incident {
                interval,
                time_s,
                kind: IncidentKind::Deescalated {
                    from,
                    to: self.state,
                    temp_c: max_core_temp_c,
                },
            });
            return;
        }
        self.dwell = self.dwell.saturating_add(1);
    }

    /// Clamps the policy's decided platform state to the current rung.
    /// Returns whether anything was overridden. On `Normal` this touches
    /// nothing (the healthy-run bit-identity path).
    pub fn enforce(&self, state: &mut PlatformState, spec: &SocSpec) -> bool {
        match self.state {
            SafetyState::Normal => false,
            SafetyState::Throttle => {
                let cap = spec
                    .big_opps()
                    .scaled_floor(
                        spec.big_opps().highest().frequency,
                        self.config.throttle_factor,
                    )
                    .frequency;
                if state.big_frequency.mhz() > cap.mhz() {
                    state.big_frequency = cap;
                    true
                } else {
                    false
                }
            }
            SafetyState::Critical | SafetyState::SimulatedShutdown => {
                let mut changed = false;
                let big_floor = spec.big_opps().lowest().frequency;
                if state.big_frequency.mhz() != big_floor.mhz() {
                    state.big_frequency = big_floor;
                    changed = true;
                }
                let gpu_floor = spec.gpu_opps().lowest().frequency;
                if state.gpu_frequency.mhz() != gpu_floor.mhz() {
                    state.gpu_frequency = gpu_floor;
                    changed = true;
                }
                // One big core carries whatever must still run; the rest go
                // offline. The little cluster is the low-power island — leave
                // its hotplug state to the policy.
                for core in 1..state.big_cores_online.len() {
                    if state.is_core_online(ClusterKind::Big, core) {
                        state.set_core_online(ClusterKind::Big, core, false);
                        changed = true;
                    }
                }
                if !state.is_core_online(ClusterKind::Big, 0) {
                    state.set_core_online(ClusterKind::Big, 0, true);
                    changed = true;
                }
                changed
            }
        }
    }
}

/// Number of screened channels (see [`SensorChannel::ALL`]).
const CHANNELS: usize = SensorChannel::ALL.len();

/// The sensor-health monitor. See the [module docs](self).
///
/// State is kept as flat per-channel arrays with NaN sentinels (no good
/// sample yet / no previous raw) rather than `Option`s: the screen runs on
/// every control interval of every lane, and the healthy case must cost a
/// handful of array sweeps, not nine branchy per-channel dispatches.
#[derive(Debug, Clone)]
pub struct SensorHealth {
    config: HealthConfig,
    /// Previous raw value per channel (NaN before the first sample — NaN
    /// never compares equal, so it can't extend a flatline run).
    last_raw: [f64; CHANNELS],
    /// Length of the current exactly-constant run of raw values.
    flatline_run: [usize; CHANNELS],
    /// Last value that passed screening (NaN before the first good sample;
    /// unambiguous, since a passing value is always finite).
    last_good: [f64; CHANNELS],
    /// Consecutive intervals each channel has been substituted.
    staleness: [usize; CHANNELS],
    /// Whether any channel currently has non-zero staleness (recovery
    /// incidents pending) — false on the healthy fast path.
    any_stale: bool,
    degraded: bool,
    healthy_streak: usize,
}

impl SensorHealth {
    /// A monitor with no history.
    pub fn new(config: HealthConfig) -> SensorHealth {
        SensorHealth {
            config,
            last_raw: [f64::NAN; CHANNELS],
            flatline_run: [0; CHANNELS],
            last_good: [f64::NAN; CHANNELS],
            staleness: [0; CHANNELS],
            any_stale: false,
            degraded: false,
            healthy_streak: 0,
        }
    }

    /// Whether the chain is currently unreliable (predictive policy demoted).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether an unreliable chain demotes (true) or drains (false).
    pub fn fallback_enabled(&self) -> bool {
        self.config.degraded_fallback
    }

    fn envelope(config: &HealthConfig, channel: SensorChannel) -> (f64, f64) {
        if channel.is_temperature() {
            (config.temp_min_c, config.temp_max_c)
        } else {
            (0.0, config.power_max_w)
        }
    }

    fn fallback(config: &HealthConfig, channel: SensorChannel) -> f64 {
        if channel.is_temperature() {
            config.fallback_temp_c
        } else {
            0.0
        }
    }

    /// Screens one interval's readings: invalid channels are replaced with
    /// their last-known-good value (or a conservative fallback before any
    /// good sample exists), fault detections/recoveries and policy
    /// demotions/promotions are recorded, and the screened readings are
    /// returned. Valid channels pass through bit-unchanged; with
    /// [`HealthConfig::monitor`] off the readings are returned untouched.
    pub fn screen(
        &mut self,
        interval: usize,
        time_s: f64,
        mut readings: SensorReadings,
        incidents: &mut IncidentLog,
    ) -> SensorReadings {
        if !self.config.monitor {
            return readings;
        }
        let config = self.config;
        let mut raws = [0.0f64; CHANNELS];
        raws[..4].copy_from_slice(&readings.core_temps_c);
        raws[4..8].copy_from_slice(&readings.domain_power.as_array());
        raws[8] = readings.platform_power_w;

        // Flatline bookkeeping runs on the raw stream: an exact repeat
        // extends the run, anything else (including the NaN initial
        // sentinel) resets it. (Disabled at 0 — mandatory for noiseless
        // chains, where repeats are legitimate.)
        let mut flatlined = false;
        if config.flatline_intervals > 0 {
            for (run, (&raw, &previous)) in self
                .flatline_run
                .iter_mut()
                .zip(raws.iter().zip(&self.last_raw))
            {
                *run = if raw == previous { *run + 1 } else { 0 };
                flatlined |= *run >= config.flatline_intervals;
            }
            self.last_raw = raws;
        }

        // Envelope sweep: `>= lo && <= hi` is false for NaN, so non-finite
        // readings fail closed without a separate finiteness pass.
        let mut all_in_envelope = true;
        for &raw in &raws[..4] {
            all_in_envelope &= raw >= config.temp_min_c && raw <= config.temp_max_c;
        }
        for &raw in &raws[4..] {
            all_in_envelope &= raw >= 0.0 && raw <= config.power_max_w;
        }

        // Fast path — the healthy steady state: every channel valid, nothing
        // stale (no recovery incidents pending), the policy not demoted.
        // Refresh the good samples wholesale and pass the readings through
        // bit-unchanged.
        if all_in_envelope && !flatlined && !self.any_stale && !self.degraded {
            self.last_good = raws;
            return readings;
        }

        let mut all_valid = true;
        let mut worst: Option<SensorChannel> = None;
        let mut worst_staleness = 0;
        for (index, channel) in SensorChannel::ALL.into_iter().enumerate() {
            let raw = raws[index];
            let (lo, hi) = Self::envelope(&config, channel);
            let observed = if !raw.is_finite() {
                Some(FaultObservation::NonFinite)
            } else if raw < lo || raw > hi {
                Some(FaultObservation::OutOfRange)
            } else if config.flatline_intervals > 0
                && self.flatline_run[index] >= config.flatline_intervals
            {
                Some(FaultObservation::Flatline)
            } else {
                None
            };
            match observed {
                None => {
                    if self.staleness[index] > 0 {
                        incidents.push(Incident {
                            interval,
                            time_s,
                            kind: IncidentKind::SensorRecovered { channel },
                        });
                    }
                    self.last_good[index] = raw;
                    self.staleness[index] = 0;
                }
                Some(observed) => {
                    if self.staleness[index] == 0 {
                        incidents.push(Incident {
                            interval,
                            time_s,
                            kind: IncidentKind::SensorFault { channel, observed },
                        });
                    }
                    self.staleness[index] += 1;
                    all_valid = false;
                    let substitute = if self.last_good[index].is_nan() {
                        Self::fallback(&config, channel)
                    } else {
                        self.last_good[index]
                    };
                    channel.write(&mut readings, substitute);
                    if self.staleness[index] > worst_staleness {
                        worst_staleness = self.staleness[index];
                        worst = Some(channel);
                    }
                }
            }
        }
        self.any_stale = !all_valid;
        if !self.degraded {
            if worst_staleness > self.config.staleness_budget {
                self.degraded = true;
                self.healthy_streak = 0;
                incidents.push(Incident {
                    interval,
                    time_s,
                    kind: IncidentKind::PolicyDegraded {
                        channel: worst.expect("staleness implies a faulted channel"),
                    },
                });
            }
        } else if all_valid {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.config.recovery_intervals {
                self.degraded = false;
                self.healthy_streak = 0;
                incidents.push(Incident {
                    interval,
                    time_s,
                    kind: IncidentKind::PolicyRestored,
                });
            }
        } else {
            self.healthy_streak = 0;
        }
        readings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::DomainPower;

    fn reading(temps: [f64; 4]) -> SensorReadings {
        SensorReadings {
            core_temps_c: temps,
            domain_power: DomainPower::new(2.0, 0.1, 0.3, 0.4),
            platform_power_w: 6.0,
        }
    }

    #[test]
    fn ladder_stays_normal_below_every_threshold() {
        let mut ladder = SafetyLadder::new(LadderConfig::default());
        let mut log = IncidentLog::default();
        for k in 0..100 {
            ladder.observe(k, k as f64 * 0.1, 71.2, &mut log);
        }
        assert_eq!(ladder.state(), SafetyState::Normal);
        assert!(log.is_empty());
        let spec = SocSpec::odroid_xu_e();
        let mut state = PlatformState::default_for(&spec);
        let before = state.clone();
        assert!(!ladder.enforce(&mut state, &spec));
        assert_eq!(state, before, "Normal rung must not touch the state");
    }

    #[test]
    fn ladder_escalates_straight_to_the_highest_crossed_rung() {
        let mut ladder = SafetyLadder::new(LadderConfig::default());
        let mut log = IncidentLog::default();
        ladder.observe(5, 0.5, 93.0, &mut log);
        assert_eq!(ladder.state(), SafetyState::Critical);
        assert_eq!(log.len(), 1);
        assert!(matches!(
            log.as_slice()[0].kind,
            IncidentKind::Escalated {
                from: SafetyState::Normal,
                to: SafetyState::Critical,
                ..
            }
        ));
    }

    #[test]
    fn shutdown_is_terminal_and_double_logged() {
        let mut ladder = SafetyLadder::new(LadderConfig::default());
        let mut log = IncidentLog::default();
        ladder.observe(1, 0.1, 104.0, &mut log);
        assert!(ladder.is_shutdown());
        assert_eq!(log.len(), 2);
        assert!(log.shut_down());
        assert_eq!(log.escalations(), 1);
        // Cooling down cannot resurrect a shut-down run.
        ladder.observe(2, 0.2, 20.0, &mut log);
        assert!(ladder.is_shutdown());
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn deescalation_needs_dwell_and_hysteresis_and_steps_one_rung() {
        let config = LadderConfig {
            min_dwell_intervals: 3,
            ..LadderConfig::default()
        };
        let mut ladder = SafetyLadder::new(config);
        let mut log = IncidentLog::default();
        ladder.observe(0, 0.0, 92.0, &mut log);
        assert_eq!(ladder.state(), SafetyState::Critical);
        // Below critical−hysteresis (85) immediately, but dwell not served.
        ladder.observe(1, 0.1, 70.0, &mut log);
        ladder.observe(2, 0.2, 70.0, &mut log);
        ladder.observe(3, 0.3, 70.0, &mut log);
        assert_eq!(
            ladder.state(),
            SafetyState::Critical,
            "dwell not yet served"
        );
        ladder.observe(4, 0.4, 70.0, &mut log);
        assert_eq!(ladder.state(), SafetyState::Throttle, "one rung at a time");
        // 76 °C is below throttle_c but not below throttle−hysteresis (75):
        // the Throttle rung holds no matter how long it dwells.
        for k in 5..20 {
            ladder.observe(k, k as f64 * 0.1, 76.0, &mut log);
        }
        assert_eq!(ladder.state(), SafetyState::Throttle);
        for k in 20..26 {
            ladder.observe(k, k as f64 * 0.1, 70.0, &mut log);
        }
        assert_eq!(ladder.state(), SafetyState::Normal);
        assert_eq!(log.escalations(), 1);
    }

    #[test]
    fn throttle_rung_caps_big_frequency() {
        let spec = SocSpec::odroid_xu_e();
        let mut ladder = SafetyLadder::new(LadderConfig::default());
        let mut log = IncidentLog::default();
        ladder.observe(0, 0.0, 83.0, &mut log);
        assert_eq!(ladder.state(), SafetyState::Throttle);
        let mut state = PlatformState::default_for(&spec);
        assert!(ladder.enforce(&mut state, &spec));
        // 1600 * 0.6 = 960 → floors to 900 MHz on the Exynos big table.
        assert!(state.big_frequency.mhz() <= 960);
        // Already below the cap: nothing to do.
        assert!(!ladder.enforce(&mut state, &spec));
    }

    #[test]
    fn critical_rung_floors_everything_but_keeps_one_big_core() {
        let spec = SocSpec::odroid_xu_e();
        let mut ladder = SafetyLadder::new(LadderConfig::default());
        let mut log = IncidentLog::default();
        ladder.observe(0, 0.0, 95.0, &mut log);
        let mut state = PlatformState::default_for(&spec);
        assert!(ladder.enforce(&mut state, &spec));
        assert_eq!(state.big_frequency, spec.big_opps().lowest().frequency);
        assert_eq!(state.gpu_frequency, spec.gpu_opps().lowest().frequency);
        assert_eq!(state.online_core_count(ClusterKind::Big), 1);
        assert!(state.validate(&spec).is_ok());
    }

    #[test]
    fn disabled_ladder_never_moves() {
        let mut ladder = SafetyLadder::new(LadderConfig {
            enabled: false,
            ..LadderConfig::default()
        });
        let mut log = IncidentLog::default();
        ladder.observe(0, 0.0, 500.0, &mut log);
        assert_eq!(ladder.state(), SafetyState::Normal);
        assert!(log.is_empty());
    }

    #[test]
    fn screening_passes_valid_readings_through_bit_unchanged() {
        let mut health = SensorHealth::new(HealthConfig::default());
        let mut log = IncidentLog::default();
        let input = reading([50.0, 51.0, 49.5, 50.5]);
        let out = health.screen(0, 0.0, input, &mut log);
        assert_eq!(out, input);
        assert!(log.is_empty());
        assert!(!health.degraded());
    }

    #[test]
    fn invalid_channels_ride_last_known_good_then_degrade() {
        let config = HealthConfig {
            staleness_budget: 3,
            recovery_intervals: 4,
            flatline_intervals: 0,
            ..HealthConfig::default()
        };
        let mut health = SensorHealth::new(config);
        let mut log = IncidentLog::default();
        let good = health.screen(0, 0.0, reading([50.0; 4]), &mut log);
        assert_eq!(good.core_temps_c[1], 50.0);
        // Channel 1 goes NaN: substituted from the last good sample.
        let mut bad = reading([51.0; 4]);
        bad.core_temps_c[1] = f64::NAN;
        for k in 1..=3 {
            let out = health.screen(k, k as f64 * 0.1, bad, &mut log);
            assert_eq!(out.core_temps_c[1], 50.0, "rides last-known-good");
            assert!(!health.degraded(), "within the staleness budget");
        }
        assert_eq!(log.sensor_faults(), 1, "one fault episode, logged once");
        let out = health.screen(4, 0.4, bad, &mut log);
        assert_eq!(out.core_temps_c[1], 50.0);
        assert!(health.degraded(), "budget exhausted");
        // Recovery: healthy intervals accumulate, then the policy returns.
        for k in 5..=7 {
            health.screen(k, k as f64 * 0.1, reading([52.0; 4]), &mut log);
            assert!(health.degraded());
        }
        health.screen(8, 0.8, reading([52.0; 4]), &mut log);
        assert!(!health.degraded());
        let kinds: Vec<_> = log.iter().map(|i| i.kind).collect();
        assert!(matches!(
            kinds[1],
            IncidentKind::PolicyDegraded {
                channel: SensorChannel::CoreTemp(1)
            }
        ));
        assert!(matches!(
            kinds[2],
            IncidentKind::SensorRecovered {
                channel: SensorChannel::CoreTemp(1)
            }
        ));
        assert!(matches!(
            kinds.last().unwrap(),
            IncidentKind::PolicyRestored
        ));
    }

    #[test]
    fn out_of_range_and_fallback_substitution() {
        let mut health = SensorHealth::new(HealthConfig {
            flatline_intervals: 0,
            ..HealthConfig::default()
        });
        let mut log = IncidentLog::default();
        // First-ever reading already corrupt: no last-known-good exists, so
        // the conservative fallback substitutes.
        let mut bad = reading([50.0; 4]);
        bad.core_temps_c[0] = 400.0;
        bad.platform_power_w = -2.0;
        let out = health.screen(0, 0.0, bad, &mut log);
        assert_eq!(out.core_temps_c[0], HealthConfig::default().fallback_temp_c);
        assert_eq!(out.platform_power_w, 0.0);
        assert_eq!(log.sensor_faults(), 2);
        let faults: Vec<_> = log
            .iter()
            .filter_map(|i| match i.kind {
                IncidentKind::SensorFault { observed, .. } => Some(observed),
                _ => None,
            })
            .collect();
        assert_eq!(
            faults,
            [FaultObservation::OutOfRange, FaultObservation::OutOfRange]
        );
    }

    #[test]
    fn flatline_detection_catches_stuck_channels() {
        let config = HealthConfig {
            flatline_intervals: 5,
            staleness_budget: 100,
            ..HealthConfig::default()
        };
        let mut health = SensorHealth::new(config);
        let mut log = IncidentLog::default();
        // A varying signal never trips it (every channel must vary: a noisy
        // chain never repeats exactly)...
        let varying = |k: usize| {
            let jitter = (k % 3) as f64 * 0.01;
            SensorReadings {
                core_temps_c: [50.0 + jitter; 4],
                domain_power: DomainPower::new(2.0 + jitter, 0.1, 0.3, 0.4),
                platform_power_w: 6.0 + jitter,
            }
        };
        for k in 0..20 {
            health.screen(k, k as f64 * 0.1, varying(k), &mut log);
        }
        // Only the three constant power channels flatlined; the jittered
        // channels never did.
        assert_eq!(log.sensor_faults(), 3);
        let pre_stick = log.len();
        // ...a stuck temperature chain does trip it.
        for k in 20..27 {
            health.screen(k, k as f64 * 0.1, varying(20), &mut log);
        }
        let new_faults = log
            .iter()
            .skip(pre_stick)
            .filter(|i| matches!(i.kind, IncidentKind::SensorFault { .. }))
            .count();
        assert_eq!(new_faults, 6, "four temp lanes + big power + meter stuck");
        assert!(log.iter().all(|i| matches!(
            i.kind,
            IncidentKind::SensorFault {
                observed: FaultObservation::Flatline,
                ..
            }
        )));
    }

    #[test]
    fn monitoring_off_passes_garbage_through() {
        let mut health = SensorHealth::new(HealthConfig {
            monitor: false,
            ..HealthConfig::default()
        });
        let mut log = IncidentLog::default();
        let mut bad = reading([50.0; 4]);
        bad.core_temps_c[2] = f64::NAN;
        let out = health.screen(0, 0.0, bad, &mut log);
        assert!(out.core_temps_c[2].is_nan());
        assert!(log.is_empty());
    }

    #[test]
    fn logs_compare_and_clone_structurally() {
        let mut log = IncidentLog::default();
        log.push(Incident {
            interval: 3,
            time_s: 0.3,
            kind: IncidentKind::Escalated {
                from: SafetyState::Normal,
                to: SafetyState::Throttle,
                temp_c: 81.0,
            },
        });
        log.push(Incident {
            interval: 9,
            time_s: 0.9,
            kind: IncidentKind::SensorFault {
                channel: SensorChannel::PlatformPower,
                observed: FaultObservation::NonFinite,
            },
        });
        assert_eq!(log.clone(), log);
        assert_eq!(log.len(), 2);
        assert_eq!(log.iter().count(), 2);
        assert_eq!((&log).into_iter().count(), 2);
        assert!(!log.shut_down());
        assert_ne!(log, IncidentLog::default());
    }
}

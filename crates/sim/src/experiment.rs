//! Experimental configurations and the closed-loop simulation engine.
//!
//! Section 6.2 of the paper evaluates every benchmark under several
//! configurations; [`ExperimentKind`] reproduces them:
//!
//! * **Default configuration (with fan)** — stock governors plus the board's
//!   fan controller (57/63/68 °C).
//! * **Without fan** — stock governors, fan removed, no thermal management.
//! * **Reactive heuristic** — fan removed; a software throttler that mimics
//!   the fan control by cutting the frequency 18 %/25 % past 63/68 °C.
//! * **Proposed DTPM** — fan removed; the predictive DTPM algorithm using the
//!   identified thermal model and the run-time power model.

use dtpm::{DtpmConfig, DtpmInputs, DtpmPolicy};
use governors::{
    CpufreqGovernor, FanController, GovernorInput, HotplugGovernor, OndemandGovernor,
    ReactiveThrottler,
};
use power_model::PowerModel;
use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, PowerDomain, SocSpec};
use workload::{BenchmarkId, Demand, WorkloadState};

use crate::calibrate::Calibration;
use crate::plant::{PhysicalPlant, PlantPowerParams, PlantStep};
use crate::sensors::{SensorReadings, SensorSuite};
use crate::trace::{Trace, TraceRecord};
use crate::SimError;

/// The experimental configurations of Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Stock governors with the board fan enabled (the paper's baseline).
    DefaultWithFan,
    /// Stock governors with the fan removed and no thermal management at all.
    WithoutFan,
    /// Fan removed; reactive throttling heuristic mimicking the fan control.
    Reactive,
    /// Fan removed; the proposed predictive DTPM algorithm.
    Dtpm,
}

impl ExperimentKind {
    /// All four configurations.
    pub const ALL: [ExperimentKind; 4] = [
        ExperimentKind::DefaultWithFan,
        ExperimentKind::WithoutFan,
        ExperimentKind::Reactive,
        ExperimentKind::Dtpm,
    ];

    /// Short name used in tables and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentKind::DefaultWithFan => "default-with-fan",
            ExperimentKind::WithoutFan => "without-fan",
            ExperimentKind::Reactive => "reactive",
            ExperimentKind::Dtpm => "dtpm",
        }
    }
}

impl std::fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Which thermal-management configuration to run.
    pub kind: ExperimentKind,
    /// Which benchmark to execute.
    pub benchmark: BenchmarkId,
    /// Random seed for workload jitter and sensor noise.
    pub seed: u64,
    /// Control interval (the kernel invokes the governors every 100 ms).
    pub control_period_s: f64,
    /// Safety cap on the simulated duration (a real run is stopped early when
    /// temperatures run away, exactly like the paper's without-fan runs).
    pub max_duration_s: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// DTPM algorithm configuration (only used by [`ExperimentKind::Dtpm`]).
    pub dtpm: DtpmConfig,
    /// Plant (true silicon) parameters.
    pub plant: PlantPowerParams,
    /// Use ideal (noise-free) sensors instead of the realistic sensor chain.
    pub ideal_sensors: bool,
}

impl ExperimentConfig {
    /// A configuration with the paper's defaults for the given kind and
    /// benchmark.
    pub fn new(kind: ExperimentKind, benchmark: BenchmarkId) -> Self {
        ExperimentConfig {
            kind,
            benchmark,
            seed: 1,
            control_period_s: 0.1,
            max_duration_s: 600.0,
            ambient_c: 28.0,
            dtpm: DtpmConfig::default(),
            plant: PlantPowerParams::default(),
            ideal_sensors: false,
        }
    }

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Per-interval trace.
    pub trace: Trace,
    /// Execution time of the benchmark, seconds (equal to the duration cap if
    /// the benchmark did not finish).
    pub execution_time_s: f64,
    /// Whether the benchmark ran to completion within the duration cap.
    pub completed: bool,
    /// Mean total platform power over the run, watts.
    pub mean_platform_power_w: f64,
    /// Total platform energy over the run, joules.
    pub energy_j: f64,
}

/// Everything in the closed loop except the physical plant: sensors,
/// workload, governors, the configured thermal-management policy, and the
/// running trace/energy bookkeeping.
///
/// Splitting the controller side out of [`Experiment`] is what lets the
/// lockstep runner ([`run_lockstep`]) drive K control loops against one
/// [`BatchPlant`]: control decisions stay strictly per-lane while the plant
/// integration is batched.
#[derive(Debug)]
struct ControlLoop {
    config: ExperimentConfig,
    spec: SocSpec,
    sensors: SensorSuite,
    workload: WorkloadState,
    governor: OndemandGovernor,
    hotplug: HotplugGovernor,
    fan: FanController,
    reactive: ReactiveThrottler,
    dtpm_policy: Option<DtpmPolicy>,
    power_model: PowerModel,
    state: PlatformState,
    readings: SensorReadings,
    trace: Trace,
    time_s: f64,
    energy_j: f64,
    completed: bool,
    max_steps: usize,
    steps_taken: usize,
}

/// One control interval's decisions, handed from [`ControlLoop::decide`] to
/// the plant step and back into [`ControlLoop::absorb`].
#[derive(Debug, Clone)]
struct IntervalDecision {
    demand: Demand,
    fan_level: FanLevel,
    predicted_peak_c: Option<f64>,
    intervened: bool,
}

impl ControlLoop {
    fn new(config: &ExperimentConfig, calibration: &Calibration) -> Result<Self, SimError> {
        if !(config.control_period_s > 0.0) {
            return Err(SimError::InvalidConfig("control period must be positive"));
        }
        if !(config.max_duration_s > config.control_period_s) {
            return Err(SimError::InvalidConfig(
                "maximum duration must exceed the control period",
            ));
        }
        let spec = SocSpec::odroid_xu_e().with_ambient_c(config.ambient_c);
        let mut sensors = if config.ideal_sensors {
            SensorSuite::ideal(config.seed)
        } else {
            SensorSuite::odroid_defaults(config.seed)
        };
        let workload = WorkloadState::new(
            config.benchmark,
            config.seed.wrapping_mul(31).wrapping_add(7),
        );
        let fan = match config.kind {
            ExperimentKind::DefaultWithFan => FanController::odroid_default(),
            _ => FanController::disabled(),
        };
        let dtpm_policy = match config.kind {
            ExperimentKind::Dtpm => {
                Some(DtpmPolicy::new(config.dtpm, calibration.predictor.clone()))
            }
            _ => None,
        };
        let state = PlatformState::default_for(&spec);
        let max_steps = (config.max_duration_s / config.control_period_s).ceil() as usize;
        // Bootstrap sensor readings from the initial plant state (every node
        // starts at the configured initial temperature).
        let readings = sensors.sample(
            [config.plant.initial_temp_c; 4],
            &power_model::DomainPower::default(),
            config.plant.board_base_w,
        );
        Ok(ControlLoop {
            config: config.clone(),
            spec,
            sensors,
            workload,
            governor: OndemandGovernor::default(),
            hotplug: HotplugGovernor::exynos_default(),
            fan,
            reactive: ReactiveThrottler::paper_default(),
            dtpm_policy,
            power_model: calibration.power_model.clone(),
            state,
            readings,
            trace: Trace::new(),
            time_s: 0.0,
            energy_j: 0.0,
            completed: false,
            max_steps,
            steps_taken: 0,
        })
    }

    /// Whether the run is over (benchmark complete or duration cap reached).
    fn is_done(&self) -> bool {
        self.completed || self.steps_taken >= self.max_steps
    }

    /// The default (stock governor) proposal for the next interval: the big
    /// cluster stays active, `ondemand` picks the frequency from the load,
    /// the hotplug governor picks the core count and a simple GPU governor
    /// tracks GPU utilisation.
    fn default_proposal(&mut self, demand: &Demand) -> PlatformState {
        let mut proposal = self.state.clone();
        // The stock switcher prefers the big cluster whenever there is
        // foreground load (all paper benchmarks run on the big cores).
        proposal.active_cluster = ClusterKind::Big;

        // Frequency from ondemand: the load is the busy fraction of the most
        // loaded core over the last interval.
        let load = demand.cpu_streams.min(1.0);
        let freq = self.governor.select_frequency(
            &GovernorInput {
                load,
                current: proposal.big_frequency,
            },
            self.spec.big_opps(),
        );
        proposal.big_frequency = freq;

        // Core count from the hotplug governor.
        let online_target = self.hotplug.select_core_count(
            demand.cpu_streams,
            proposal.online_core_count(ClusterKind::Big),
        );
        for core in 0..4 {
            proposal.set_core_online(ClusterKind::Big, core, core < online_target);
        }

        // GPU frequency follows GPU utilisation.
        let gpu_opps = self.spec.gpu_opps();
        proposal.gpu_frequency = if demand.gpu_utilization > 0.05 {
            let target_mhz = gpu_opps.highest().frequency.mhz() as f64
                * demand.gpu_utilization.clamp(0.0, 1.0)
                / 0.85;
            gpu_opps
                .ceil(Frequency::from_mhz(target_mhz.ceil() as u32))
                .frequency
        } else {
            gpu_opps.lowest().frequency
        };
        proposal
    }

    /// Makes this interval's control decisions from the latest sensor
    /// readings: workload demand, governor proposal, the configured thermal
    /// management, and the fan. Updates `self.state` to the decided platform
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates platform and DTPM errors.
    fn decide(&mut self) -> Result<IntervalDecision, SimError> {
        let demand = self.workload.demand();
        let proposal = self.default_proposal(&demand);

        // Configuration-specific thermal management.
        let mut predicted_peak_c = None;
        let mut intervened = false;
        let next_state = match self.config.kind {
            ExperimentKind::DefaultWithFan | ExperimentKind::WithoutFan => proposal,
            ExperimentKind::Reactive => {
                let mut state = proposal;
                let throttled = self.reactive.apply(
                    self.readings.max_core_temp_c(),
                    state.big_frequency,
                    self.spec.big_opps(),
                );
                intervened = throttled != state.big_frequency;
                state.big_frequency = throttled;
                state
            }
            ExperimentKind::Dtpm => {
                // Feed the run-time power model with the latest sensor data
                // (Figure 4.4) before making the decision.
                let active = self.state.active_cluster;
                let active_freq = self.state.cluster_frequency(active);
                let active_volts = self.spec.cluster_opps(active).voltage_for(active_freq)?;
                self.power_model.observe(
                    PowerDomain::from_cluster(active),
                    self.readings.domain_power[PowerDomain::from_cluster(active)],
                    self.readings.max_core_temp_c(),
                    active_volts,
                    active_freq,
                );
                let gpu_volts = self.spec.gpu_opps().voltage_for(self.state.gpu_frequency)?;
                self.power_model.observe(
                    PowerDomain::Gpu,
                    self.readings.domain_power[PowerDomain::Gpu],
                    self.readings.max_core_temp_c(),
                    gpu_volts,
                    self.state.gpu_frequency,
                );

                let policy = self
                    .dtpm_policy
                    .as_mut()
                    .expect("DTPM configuration always constructs a policy");
                let decision = policy.decide(
                    &DtpmInputs {
                        spec: &self.spec,
                        proposed: proposal,
                        core_temps_c: self.readings.core_temps_c,
                        measured_power: self.readings.domain_power,
                    },
                    &self.power_model,
                )?;
                predicted_peak_c = Some(decision.predicted_peak_c);
                intervened = decision.action != dtpm::DtpmAction::Affirmed;
                decision.state
            }
        };

        // Fan control (only meaningful in the default configuration).
        let fan_level: FanLevel = self.fan.update(self.readings.max_core_temp_c());
        self.state = next_state;
        self.state.fan_level = fan_level;

        Ok(IntervalDecision {
            demand,
            fan_level,
            predicted_peak_c,
            intervened,
        })
    }

    /// Folds one plant interval back into the loop: workload progress, energy
    /// accounting, the next interval's sensor readings and the trace record.
    fn absorb(&mut self, decision: &IntervalDecision, step: &PlantStep) {
        let control_period = self.config.control_period_s;
        self.workload.advance(step.work_done);
        self.time_s += control_period;
        self.energy_j += step.platform_power_w * control_period;

        // Sample the sensors for the next interval's decisions.
        self.readings =
            self.sensors
                .sample(step.core_temps_c, &step.domain_power, step.platform_power_w);

        self.trace.push(TraceRecord {
            time_s: self.time_s,
            core_temps_c: self.readings.core_temps_c,
            active_cluster: self.state.active_cluster,
            frequency_mhz: self.state.active_frequency().mhz(),
            online_cores: self.state.active_online_core_count(),
            gpu_frequency_mhz: self.state.gpu_frequency.mhz(),
            fan_level: decision.fan_level,
            domain_power: self.readings.domain_power,
            platform_power_w: self.readings.platform_power_w,
            progress: self.workload.progress(),
            predicted_peak_c: decision.predicted_peak_c,
            dtpm_intervened: decision.intervened,
        });

        self.steps_taken += 1;
        if self.workload.is_complete() {
            self.completed = true;
        }
    }

    /// Consumes the loop and produces the final result.
    fn finish(self) -> SimulationResult {
        let mean_platform_power_w = self.trace.mean_platform_power_w();
        SimulationResult {
            config: self.config,
            trace: self.trace,
            execution_time_s: self.time_s,
            completed: self.completed,
            mean_platform_power_w,
            energy_j: self.energy_j,
        }
    }
}

/// The closed-loop simulation of one benchmark run: a [`ControlLoop`] wired
/// to its own scalar [`PhysicalPlant`].
#[derive(Debug)]
pub struct Experiment {
    control: ControlLoop,
    plant: PhysicalPlant,
}

impl Experiment {
    /// Builds an experiment from its configuration and the characterised
    /// models (power model + identified thermal predictor). The configuration
    /// is borrowed; the one owned copy lives in the eventual
    /// [`SimulationResult`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-physical timing parameters.
    pub fn new(config: &ExperimentConfig, calibration: &Calibration) -> Result<Self, SimError> {
        let control = ControlLoop::new(config, calibration)?;
        let plant = PhysicalPlant::new(control.spec.clone(), config.plant);
        Ok(Experiment { control, plant })
    }

    /// Runs the experiment to completion and returns the result.
    ///
    /// # Errors
    ///
    /// Propagates plant, platform and DTPM errors.
    pub fn run(mut self) -> Result<SimulationResult, SimError> {
        while !self.control.is_done() {
            let decision = self.control.decide()?;
            let step = self.plant.step_interval(
                &self.control.state,
                &decision.demand,
                decision.fan_level,
                self.control.config.ambient_c,
                self.control.config.control_period_s,
            )?;
            self.control.absorb(&decision, &step);
        }
        Ok(self.control.finish())
    }
}

/// Runs many independent experiment configurations across worker threads.
///
/// Every configuration is a self-contained closed-loop simulation (own plant,
/// sensors, workload and seed), so a sweep is embarrassingly parallel: the
/// runner shares one [`Calibration`] across `std::thread::scope` workers that
/// pull configurations from an atomic work queue. Results come back in input
/// order and are identical to running each configuration sequentially.
///
/// # Example
///
/// ```no_run
/// use platform_sim::{CalibrationCampaign, ExperimentConfig, ExperimentKind, ScenarioSweep};
/// use workload::BenchmarkId;
///
/// # fn main() -> Result<(), platform_sim::SimError> {
/// let calibration = CalibrationCampaign::default().run(7)?;
/// let configs: Vec<ExperimentConfig> = (0..16)
///     .map(|seed| {
///         ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Templerun)
///             .with_seed(seed)
///     })
///     .collect();
/// let results = ScenarioSweep::new(configs).run(&calibration);
/// assert_eq!(results.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSweep {
    configs: Vec<ExperimentConfig>,
    threads: usize,
    lanes: usize,
}

impl ScenarioSweep {
    /// Creates a sweep over the given configurations using one worker per
    /// available CPU (capped at the number of configurations) and scalar
    /// (one-lane) execution.
    pub fn new(configs: Vec<ExperimentConfig>) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ScenarioSweep {
            threads: parallelism.min(configs.len()).max(1),
            configs,
            lanes: 1,
        }
    }

    /// Overrides the worker-thread count (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the batch width: consecutive configurations are tiled into
    /// lane-groups of this size and each group runs through the
    /// structure-of-arrays [`crate::batch::BatchPlant`] in lockstep (see
    /// [`run_lockstep`]), so total parallelism is `threads × lanes`. One lane
    /// (the default) is the scalar per-scenario engine.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// The configurations in this sweep.
    pub fn configs(&self) -> &[ExperimentConfig] {
        &self.configs
    }

    /// The worker-thread count the sweep will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The batch width (scenarios advanced per instruction stream).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs every configuration and returns one result per configuration, in
    /// input order. Individual failures do not abort the sweep.
    ///
    /// Work is handed out as tiles of [`ScenarioSweep::lanes`] consecutive
    /// configurations; each worker claims tiles from an atomic queue and
    /// publishes results through per-slot [`std::sync::OnceLock`]s, so result
    /// storage never serialises workers.
    pub fn run(&self, calibration: &Calibration) -> Vec<Result<SimulationResult, SimError>> {
        let count = self.configs.len();
        if count == 0 {
            return Vec::new();
        }
        let tile = self.lanes;
        let tiles = count.div_ceil(tile);
        let slots: Vec<std::sync::OnceLock<Result<SimulationResult, SimError>>> =
            (0..count).map(|_| std::sync::OnceLock::new()).collect();

        let run_tile = |index: usize| {
            let start = index * tile;
            let end = (start + tile).min(count);
            let tile_configs = &self.configs[start..end];
            let results = if tile_configs.len() == 1 {
                vec![run_one(&tile_configs[0], calibration)]
            } else {
                run_lockstep(tile_configs, calibration)
            };
            for (offset, result) in results.into_iter().enumerate() {
                assert!(
                    slots[start + offset].set(result).is_ok(),
                    "every sweep slot is written exactly once"
                );
            }
        };

        if self.threads == 1 {
            for index in 0..tiles {
                run_tile(index);
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads.min(tiles) {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if index >= tiles {
                            break;
                        }
                        run_tile(index);
                    });
                }
            });
        }

        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every sweep slot is filled"))
            .collect()
    }
}

fn run_one(
    config: &ExperimentConfig,
    calibration: &Calibration,
) -> Result<SimulationResult, SimError> {
    Experiment::new(config, calibration)?.run()
}

/// One lane's bookkeeping inside [`run_lockstep`].
struct LockstepLane {
    /// Index into the caller's configuration (and result) order.
    slot: usize,
    /// `None` once the lane has finished (or failed) and reported.
    control: Option<ControlLoop>,
    /// This interval's decision, between decide and absorb.
    decision: Option<IntervalDecision>,
    /// The most recent plant inputs, replayed once the lane is done so the
    /// batch can keep stepping the remaining lanes (results of a finished
    /// lane are already captured; its plant state just keeps evolving).
    frozen: (PlatformState, Demand, FanLevel, f64),
}

/// Runs the given configurations in lockstep on one [`BatchPlant`]: each
/// scenario keeps its own control loop (sensors, governors, policy, trace —
/// decisions stay strictly per-lane) while the plant integration advances all
/// lanes per instruction stream, one scenario per panel column.
///
/// Results come back in input order; individual failures do not abort the
/// batch. Scenarios finishing early stay in the batch as frozen lanes until
/// the slowest lane completes, so a tile of similar-length scenarios batches
/// best. All configurations must share one `control_period_s`; mixed periods
/// cannot step in lockstep and fall back to scalar per-scenario runs.
pub fn run_lockstep(
    configs: &[ExperimentConfig],
    calibration: &Calibration,
) -> Vec<Result<SimulationResult, SimError>> {
    if configs.is_empty() {
        return Vec::new();
    }
    let period = configs[0].control_period_s;
    if configs
        .iter()
        .any(|config| config.control_period_s != period)
    {
        return configs
            .iter()
            .map(|config| run_one(config, calibration))
            .collect();
    }

    let mut slots: Vec<Option<Result<SimulationResult, SimError>>> =
        (0..configs.len()).map(|_| None).collect();
    let spec = SocSpec::odroid_xu_e();
    let mut lanes: Vec<LockstepLane> = Vec::new();
    let mut lane_params = Vec::new();
    for (slot, config) in configs.iter().enumerate() {
        match ControlLoop::new(config, calibration) {
            Ok(control) => {
                lanes.push(LockstepLane {
                    slot,
                    control: Some(control),
                    decision: None,
                    frozen: (
                        PlatformState::default_for(&spec),
                        Demand::idle(),
                        FanLevel::Off,
                        config.ambient_c,
                    ),
                });
                lane_params.push(config.plant);
            }
            Err(e) => slots[slot] = Some(Err(e)),
        }
    }

    if !lanes.is_empty() {
        let mut plant = crate::batch::BatchPlant::new(spec, &lane_params);
        loop {
            // Decide per still-running lane (finish lanes that are done).
            let mut any_active = false;
            for lane in &mut lanes {
                let Some(control) = lane.control.as_mut() else {
                    continue;
                };
                if control.is_done() {
                    let control = lane.control.take().expect("control is present");
                    slots[lane.slot] = Some(Ok(control.finish()));
                    continue;
                }
                match control.decide() {
                    Ok(decision) => {
                        lane.frozen = (
                            control.state.clone(),
                            decision.demand,
                            decision.fan_level,
                            control.config.ambient_c,
                        );
                        lane.decision = Some(decision);
                        any_active = true;
                    }
                    Err(e) => {
                        slots[lane.slot] = Some(Err(e));
                        lane.control = None;
                    }
                }
            }
            if !any_active {
                break;
            }

            // Advance every plant lane one interval (frozen inputs for lanes
            // that already reported).
            let inputs: Vec<crate::batch::BatchLaneInput<'_>> = lanes
                .iter()
                .map(|lane| match (&lane.control, &lane.decision) {
                    (Some(control), Some(decision)) => crate::batch::BatchLaneInput {
                        state: &control.state,
                        demand: &decision.demand,
                        fan_level: decision.fan_level,
                        ambient_c: control.config.ambient_c,
                    },
                    _ => crate::batch::BatchLaneInput {
                        state: &lane.frozen.0,
                        demand: &lane.frozen.1,
                        fan_level: lane.frozen.2,
                        ambient_c: lane.frozen.3,
                    },
                })
                .collect();
            let steps = match plant.step_interval(&inputs, period) {
                Ok(steps) => steps,
                Err(e) => {
                    // A batch-level error (malformed call) cannot be
                    // attributed to one lane; report it on all unfinished
                    // lanes and stop.
                    drop(inputs);
                    for lane in &mut lanes {
                        if lane.control.take().is_some() {
                            slots[lane.slot] = Some(Err(e.clone()));
                        }
                    }
                    break;
                }
            };
            drop(inputs);

            // Absorb per lane.
            for (lane, step) in lanes.iter_mut().zip(steps) {
                let Some(control) = lane.control.as_mut() else {
                    continue;
                };
                let Some(decision) = lane.decision.take() else {
                    continue;
                };
                match step {
                    Ok(step) => control.absorb(&decision, &step),
                    Err(e) => {
                        slots[lane.slot] = Some(Err(e));
                        lane.control = None;
                    }
                }
            }
        }
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("every lockstep slot is filled"))
        .collect()
}

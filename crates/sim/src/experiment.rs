//! Experimental configurations and the closed-loop simulation engine.
//!
//! Section 6.2 of the paper evaluates every benchmark under several
//! configurations; [`ExperimentKind`] reproduces them:
//!
//! * **Default configuration (with fan)** — stock governors plus the board's
//!   fan controller (57/63/68 °C).
//! * **Without fan** — stock governors, fan removed, no thermal management.
//! * **Reactive heuristic** — fan removed; a software throttler that mimics
//!   the fan control by cutting the frequency 18 %/25 % past 63/68 °C.
//! * **Proposed DTPM** — fan removed; the predictive DTPM algorithm using the
//!   identified thermal model and the run-time power model.

use dtpm::{DtpmConfig, DtpmInputs, DtpmPolicy};
use governors::{
    CpufreqGovernor, FanController, GovernorInput, HotplugGovernor, OndemandGovernor,
    ReactiveThrottler,
};
use power_model::PowerModel;
use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, PowerDomain, SocSpec};
use workload::{BenchmarkId, Demand, WorkloadState};

use crate::calibrate::Calibration;
use crate::plant::{PhysicalPlant, PlantPowerParams};
use crate::sensors::{SensorReadings, SensorSuite};
use crate::trace::{Trace, TraceRecord};
use crate::SimError;

/// The experimental configurations of Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Stock governors with the board fan enabled (the paper's baseline).
    DefaultWithFan,
    /// Stock governors with the fan removed and no thermal management at all.
    WithoutFan,
    /// Fan removed; reactive throttling heuristic mimicking the fan control.
    Reactive,
    /// Fan removed; the proposed predictive DTPM algorithm.
    Dtpm,
}

impl ExperimentKind {
    /// All four configurations.
    pub const ALL: [ExperimentKind; 4] = [
        ExperimentKind::DefaultWithFan,
        ExperimentKind::WithoutFan,
        ExperimentKind::Reactive,
        ExperimentKind::Dtpm,
    ];

    /// Short name used in tables and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentKind::DefaultWithFan => "default-with-fan",
            ExperimentKind::WithoutFan => "without-fan",
            ExperimentKind::Reactive => "reactive",
            ExperimentKind::Dtpm => "dtpm",
        }
    }
}

impl std::fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Which thermal-management configuration to run.
    pub kind: ExperimentKind,
    /// Which benchmark to execute.
    pub benchmark: BenchmarkId,
    /// Random seed for workload jitter and sensor noise.
    pub seed: u64,
    /// Control interval (the kernel invokes the governors every 100 ms).
    pub control_period_s: f64,
    /// Safety cap on the simulated duration (a real run is stopped early when
    /// temperatures run away, exactly like the paper's without-fan runs).
    pub max_duration_s: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// DTPM algorithm configuration (only used by [`ExperimentKind::Dtpm`]).
    pub dtpm: DtpmConfig,
    /// Plant (true silicon) parameters.
    pub plant: PlantPowerParams,
    /// Use ideal (noise-free) sensors instead of the realistic sensor chain.
    pub ideal_sensors: bool,
}

impl ExperimentConfig {
    /// A configuration with the paper's defaults for the given kind and
    /// benchmark.
    pub fn new(kind: ExperimentKind, benchmark: BenchmarkId) -> Self {
        ExperimentConfig {
            kind,
            benchmark,
            seed: 1,
            control_period_s: 0.1,
            max_duration_s: 600.0,
            ambient_c: 28.0,
            dtpm: DtpmConfig::default(),
            plant: PlantPowerParams::default(),
            ideal_sensors: false,
        }
    }

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Per-interval trace.
    pub trace: Trace,
    /// Execution time of the benchmark, seconds (equal to the duration cap if
    /// the benchmark did not finish).
    pub execution_time_s: f64,
    /// Whether the benchmark ran to completion within the duration cap.
    pub completed: bool,
    /// Mean total platform power over the run, watts.
    pub mean_platform_power_w: f64,
    /// Total platform energy over the run, joules.
    pub energy_j: f64,
}

/// The closed-loop simulation of one benchmark run.
#[derive(Debug)]
pub struct Experiment {
    config: ExperimentConfig,
    spec: SocSpec,
    plant: PhysicalPlant,
    sensors: SensorSuite,
    workload: WorkloadState,
    governor: OndemandGovernor,
    hotplug: HotplugGovernor,
    fan: FanController,
    reactive: ReactiveThrottler,
    dtpm_policy: Option<DtpmPolicy>,
    power_model: PowerModel,
    state: PlatformState,
}

impl Experiment {
    /// Builds an experiment from its configuration and the characterised
    /// models (power model + identified thermal predictor).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-physical timing parameters.
    pub fn new(config: ExperimentConfig, calibration: &Calibration) -> Result<Self, SimError> {
        if !(config.control_period_s > 0.0) {
            return Err(SimError::InvalidConfig("control period must be positive"));
        }
        if !(config.max_duration_s > config.control_period_s) {
            return Err(SimError::InvalidConfig(
                "maximum duration must exceed the control period",
            ));
        }
        let spec = SocSpec::odroid_xu_e().with_ambient_c(config.ambient_c);
        let plant = PhysicalPlant::new(spec.clone(), config.plant);
        let sensors = if config.ideal_sensors {
            SensorSuite::ideal(config.seed)
        } else {
            SensorSuite::odroid_defaults(config.seed)
        };
        let workload = WorkloadState::new(
            config.benchmark,
            config.seed.wrapping_mul(31).wrapping_add(7),
        );
        let fan = match config.kind {
            ExperimentKind::DefaultWithFan => FanController::odroid_default(),
            _ => FanController::disabled(),
        };
        let dtpm_policy = match config.kind {
            ExperimentKind::Dtpm => {
                Some(DtpmPolicy::new(config.dtpm, calibration.predictor.clone()))
            }
            _ => None,
        };
        let state = PlatformState::default_for(&spec);
        Ok(Experiment {
            config,
            spec,
            plant,
            sensors,
            workload,
            governor: OndemandGovernor::default(),
            hotplug: HotplugGovernor::exynos_default(),
            fan,
            reactive: ReactiveThrottler::paper_default(),
            dtpm_policy,
            power_model: calibration.power_model.clone(),
            state,
        })
    }

    /// The default (stock governor) proposal for the next interval: the big
    /// cluster stays active, `ondemand` picks the frequency from the load,
    /// the hotplug governor picks the core count and a simple GPU governor
    /// tracks GPU utilisation.
    fn default_proposal(&mut self, demand: &Demand) -> PlatformState {
        let mut proposal = self.state.clone();
        // The stock switcher prefers the big cluster whenever there is
        // foreground load (all paper benchmarks run on the big cores).
        proposal.active_cluster = ClusterKind::Big;

        // Frequency from ondemand: the load is the busy fraction of the most
        // loaded core over the last interval.
        let load = demand.cpu_streams.min(1.0);
        let freq = self.governor.select_frequency(
            &GovernorInput {
                load,
                current: proposal.big_frequency,
            },
            self.spec.big_opps(),
        );
        proposal.big_frequency = freq;

        // Core count from the hotplug governor.
        let online_target = self.hotplug.select_core_count(
            demand.cpu_streams,
            proposal.online_core_count(ClusterKind::Big),
        );
        for core in 0..4 {
            proposal.set_core_online(ClusterKind::Big, core, core < online_target);
        }

        // GPU frequency follows GPU utilisation.
        let gpu_opps = self.spec.gpu_opps();
        proposal.gpu_frequency = if demand.gpu_utilization > 0.05 {
            let target_mhz = gpu_opps.highest().frequency.mhz() as f64
                * demand.gpu_utilization.clamp(0.0, 1.0)
                / 0.85;
            gpu_opps
                .ceil(Frequency::from_mhz(target_mhz.ceil() as u32))
                .frequency
        } else {
            gpu_opps.lowest().frequency
        };
        proposal
    }

    /// Runs the experiment to completion and returns the result.
    ///
    /// # Errors
    ///
    /// Propagates plant, platform and DTPM errors.
    pub fn run(mut self) -> Result<SimulationResult, SimError> {
        let control_period = self.config.control_period_s;
        let max_steps = (self.config.max_duration_s / control_period).ceil() as usize;
        let mut trace = Trace::new();
        let mut time_s = 0.0;
        let mut energy_j = 0.0;
        let mut completed = false;

        // Bootstrap sensor readings from the initial plant state.
        let mut readings: SensorReadings = {
            let temps = self.plant.core_temps_c();
            self.sensors.sample(
                temps,
                &power_model::DomainPower::default(),
                self.config.plant.board_base_w,
            )
        };

        for _ in 0..max_steps {
            let demand = self.workload.demand();
            let proposal = self.default_proposal(&demand);

            // Configuration-specific thermal management.
            let mut predicted_peak_c = None;
            let mut intervened = false;
            let next_state = match self.config.kind {
                ExperimentKind::DefaultWithFan | ExperimentKind::WithoutFan => proposal,
                ExperimentKind::Reactive => {
                    let mut state = proposal;
                    let throttled = self.reactive.apply(
                        readings.max_core_temp_c(),
                        state.big_frequency,
                        self.spec.big_opps(),
                    );
                    intervened = throttled != state.big_frequency;
                    state.big_frequency = throttled;
                    state
                }
                ExperimentKind::Dtpm => {
                    // Feed the run-time power model with the latest sensor data
                    // (Figure 4.4) before making the decision.
                    let active = self.state.active_cluster;
                    let active_freq = self.state.cluster_frequency(active);
                    let active_volts = self.spec.cluster_opps(active).voltage_for(active_freq)?;
                    self.power_model.observe(
                        PowerDomain::from_cluster(active),
                        readings.domain_power[PowerDomain::from_cluster(active)],
                        readings.max_core_temp_c(),
                        active_volts,
                        active_freq,
                    );
                    let gpu_volts = self.spec.gpu_opps().voltage_for(self.state.gpu_frequency)?;
                    self.power_model.observe(
                        PowerDomain::Gpu,
                        readings.domain_power[PowerDomain::Gpu],
                        readings.max_core_temp_c(),
                        gpu_volts,
                        self.state.gpu_frequency,
                    );

                    let policy = self
                        .dtpm_policy
                        .as_mut()
                        .expect("DTPM configuration always constructs a policy");
                    let decision = policy.decide(
                        &DtpmInputs {
                            spec: &self.spec,
                            proposed: proposal,
                            core_temps_c: readings.core_temps_c,
                            measured_power: readings.domain_power,
                        },
                        &self.power_model,
                    )?;
                    predicted_peak_c = Some(decision.predicted_peak_c);
                    intervened = decision.action != dtpm::DtpmAction::Affirmed;
                    decision.state
                }
            };

            // Fan control (only meaningful in the default configuration).
            let fan_level: FanLevel = self.fan.update(readings.max_core_temp_c());
            self.state = next_state;
            self.state.fan_level = fan_level;

            // Advance the physical plant over the interval.
            let step = self.plant.step_interval(
                &self.state,
                &demand,
                fan_level,
                self.config.ambient_c,
                control_period,
            )?;
            self.workload.advance(step.work_done);
            time_s += control_period;
            energy_j += step.platform_power_w * control_period;

            // Sample the sensors for the next interval's decisions.
            readings =
                self.sensors
                    .sample(step.core_temps_c, &step.domain_power, step.platform_power_w);

            trace.push(TraceRecord {
                time_s,
                core_temps_c: readings.core_temps_c,
                active_cluster: self.state.active_cluster,
                frequency_mhz: self.state.active_frequency().mhz(),
                online_cores: self.state.active_online_core_count(),
                gpu_frequency_mhz: self.state.gpu_frequency.mhz(),
                fan_level,
                domain_power: readings.domain_power,
                platform_power_w: readings.platform_power_w,
                progress: self.workload.progress(),
                predicted_peak_c,
                dtpm_intervened: intervened,
            });

            if self.workload.is_complete() {
                completed = true;
                break;
            }
        }

        let mean_platform_power_w = trace.mean_platform_power_w();
        Ok(SimulationResult {
            config: self.config,
            trace,
            execution_time_s: time_s,
            completed,
            mean_platform_power_w,
            energy_j,
        })
    }
}

/// Runs many independent experiment configurations across worker threads.
///
/// Every configuration is a self-contained closed-loop simulation (own plant,
/// sensors, workload and seed), so a sweep is embarrassingly parallel: the
/// runner shares one [`Calibration`] across `std::thread::scope` workers that
/// pull configurations from an atomic work queue. Results come back in input
/// order and are identical to running each configuration sequentially.
///
/// # Example
///
/// ```no_run
/// use platform_sim::{CalibrationCampaign, ExperimentConfig, ExperimentKind, ScenarioSweep};
/// use workload::BenchmarkId;
///
/// # fn main() -> Result<(), platform_sim::SimError> {
/// let calibration = CalibrationCampaign::default().run(7)?;
/// let configs: Vec<ExperimentConfig> = (0..16)
///     .map(|seed| {
///         ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Templerun)
///             .with_seed(seed)
///     })
///     .collect();
/// let results = ScenarioSweep::new(configs).run(&calibration);
/// assert_eq!(results.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSweep {
    configs: Vec<ExperimentConfig>,
    threads: usize,
}

impl ScenarioSweep {
    /// Creates a sweep over the given configurations using one worker per
    /// available CPU (capped at the number of configurations).
    pub fn new(configs: Vec<ExperimentConfig>) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ScenarioSweep {
            threads: parallelism.min(configs.len()).max(1),
            configs,
        }
    }

    /// Overrides the worker-thread count (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configurations in this sweep.
    pub fn configs(&self) -> &[ExperimentConfig] {
        &self.configs
    }

    /// The worker-thread count the sweep will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every configuration and returns one result per configuration, in
    /// input order. Individual failures do not abort the sweep.
    pub fn run(&self, calibration: &Calibration) -> Vec<Result<SimulationResult, SimError>> {
        let mut results: Vec<Option<Result<SimulationResult, SimError>>> =
            (0..self.configs.len()).map(|_| None).collect();
        if self.configs.is_empty() {
            return Vec::new();
        }

        if self.threads == 1 {
            for (config, slot) in self.configs.iter().zip(results.iter_mut()) {
                *slot = Some(run_one(config, calibration));
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let results_mutex = std::sync::Mutex::new(&mut results);
            std::thread::scope(|scope| {
                for _ in 0..self.threads {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(config) = self.configs.get(index) else {
                            break;
                        };
                        let result = run_one(config, calibration);
                        results_mutex
                            .lock()
                            .expect("a sweep worker panicked while storing a result")[index] =
                            Some(result);
                    });
                }
            });
        }

        results
            .into_iter()
            .map(|slot| slot.expect("every sweep slot is filled"))
            .collect()
    }
}

fn run_one(
    config: &ExperimentConfig,
    calibration: &Calibration,
) -> Result<SimulationResult, SimError> {
    Experiment::new(config.clone(), calibration)?.run()
}

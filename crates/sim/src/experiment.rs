//! Experimental configurations and the closed-loop simulation engine.
//!
//! Section 6.2 of the paper evaluates every benchmark under several
//! configurations; [`ExperimentKind`] reproduces them:
//!
//! * **Default configuration (with fan)** — stock governors plus the board's
//!   fan controller (57/63/68 °C).
//! * **Without fan** — stock governors, fan removed, no thermal management.
//! * **Reactive heuristic** — fan removed; a software throttler that mimics
//!   the fan control by cutting the frequency 18 %/25 % past 63/68 °C.
//! * **Proposed DTPM** — fan removed; the predictive DTPM algorithm using the
//!   identified thermal model and the run-time power model.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use dtpm::{BatchPredictor, DtpmConfig, DtpmInputs, DtpmPolicy};
use governors::{
    CpufreqGovernor, FanController, GovernorInput, HotplugGovernor, OndemandGovernor,
    ReactiveThrottler,
};
use power_model::{DomainPower, PowerModel};
use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, FanLevel, Frequency, PlatformState, PowerDomain, SocSpec};
use thermal_model::HorizonMap;
use workload::{BenchmarkId, Demand, WorkloadState};

use crate::calibrate::Calibration;
use crate::engine::{
    EnginePrecision, LaneInput, MixedPanelEngine, PanelEngine, PlantEngine, ScalarEngine,
};
use crate::faults::{FaultInjector, FaultPlan};
use crate::metrics::RunSummary;
use crate::observer::{OnlineRunStats, RunObserver, TracePolicy};
use crate::plant::{PlantPowerParams, PlantStep};
use crate::resilience::{ChaosPlan, ResiliencePolicy};
use crate::safety::{IncidentLog, SafetyConfig, SafetyLadder, SensorHealth};
use crate::sensors::{SensorReadings, SensorSuite};
use crate::trace::{Trace, TraceRecord};
use crate::SimError;

/// The experimental configurations of Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Stock governors with the board fan enabled (the paper's baseline).
    DefaultWithFan,
    /// Stock governors with the fan removed and no thermal management at all.
    WithoutFan,
    /// Fan removed; reactive throttling heuristic mimicking the fan control.
    Reactive,
    /// Fan removed; the proposed predictive DTPM algorithm.
    Dtpm,
}

impl ExperimentKind {
    /// All four configurations.
    pub const ALL: [ExperimentKind; 4] = [
        ExperimentKind::DefaultWithFan,
        ExperimentKind::WithoutFan,
        ExperimentKind::Reactive,
        ExperimentKind::Dtpm,
    ];

    /// Short name used in tables and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentKind::DefaultWithFan => "default-with-fan",
            ExperimentKind::WithoutFan => "without-fan",
            ExperimentKind::Reactive => "reactive",
            ExperimentKind::Dtpm => "dtpm",
        }
    }
}

impl std::fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Which thermal-management configuration to run.
    pub kind: ExperimentKind,
    /// Which benchmark to execute.
    pub benchmark: BenchmarkId,
    /// Random seed for workload jitter and sensor noise.
    pub seed: u64,
    /// Control interval (the kernel invokes the governors every 100 ms).
    pub control_period_s: f64,
    /// Safety cap on the simulated duration (a real run is stopped early when
    /// temperatures run away, exactly like the paper's without-fan runs).
    pub max_duration_s: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// DTPM algorithm configuration (only used by [`ExperimentKind::Dtpm`]).
    pub dtpm: DtpmConfig,
    /// Plant (true silicon) parameters.
    pub plant: PlantPowerParams,
    /// Use ideal (noise-free) sensors instead of the realistic sensor chain.
    pub ideal_sensors: bool,
    /// Sensor fault scenario injected over the sampled readings (`None` or
    /// an empty plan: healthy sensors). Deterministic per plan seed.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// Safety ladder and sensor-health configuration. The default arms both
    /// layers; their thresholds sit above every fault-free trajectory, so
    /// healthy runs are bit-identical with or without them
    /// ([`SafetyConfig::disabled`] turns both off).
    #[serde(default)]
    pub safety: SafetyConfig,
    /// Plant-engine element precision. The default [`EnginePrecision::F64`]
    /// keeps every existing campaign bit-identical;
    /// [`EnginePrecision::F32`] runs the mixed-precision panel engine and
    /// [`EnginePrecision::F32Shadow`] additionally steps an f64 shadow in
    /// lockstep to record the worst-case divergence.
    #[serde(default)]
    pub precision: EnginePrecision,
    /// Deterministic executor-fault injection for containment testing
    /// (`None`: no injected faults, zero per-interval work). See
    /// [`ChaosPlan`].
    #[serde(default)]
    pub chaos: Option<ChaosPlan>,
}

impl ExperimentConfig {
    /// A configuration with the paper's defaults for the given kind and
    /// benchmark.
    pub fn new(kind: ExperimentKind, benchmark: BenchmarkId) -> Self {
        ExperimentConfig {
            kind,
            benchmark,
            seed: 1,
            control_period_s: 0.1,
            max_duration_s: 600.0,
            ambient_c: 28.0,
            dtpm: DtpmConfig::default(),
            plant: PlantPowerParams::default(),
            ideal_sensors: false,
            faults: None,
            safety: SafetyConfig::default(),
            precision: EnginePrecision::default(),
            chaos: None,
        }
    }

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with the given sensor fault scenario.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Returns the configuration with the given safety/health configuration.
    #[must_use]
    pub fn with_safety(mut self, safety: SafetyConfig) -> Self {
        self.safety = safety;
        self
    }

    /// Returns the configuration with the given plant-engine precision.
    #[must_use]
    pub fn with_precision(mut self, precision: EnginePrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns the configuration with the given executor-fault injection
    /// plan (containment testing only; see [`ChaosPlan`]).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// What one retired run reports through the streaming pipeline: its always-
/// streamed [`RunSummary`] plus whatever trajectory its observer retained
/// (full under [`TracePolicy::Full`], coarse under
/// [`TracePolicy::Decimated`], none under [`TracePolicy::SummaryOnly`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The streamed per-run summary (O(1) in the run length).
    pub summary: RunSummary,
    /// The retained trajectory, if the run's [`TracePolicy`] kept one.
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Converts a trace-retaining report into the classic
    /// [`SimulationResult`]. Under [`TracePolicy::Decimated`] the result's
    /// trace is the retained coarse one.
    ///
    /// # Panics
    ///
    /// Panics if the run retained no trace ([`TracePolicy::SummaryOnly`]);
    /// use [`RunReport::summary`] directly in streaming pipelines.
    pub fn into_simulation_result(self) -> SimulationResult {
        let trace = self
            .trace
            .expect("run retained no trace (TracePolicy::SummaryOnly); use the summary instead");
        let RunSummary {
            config,
            completed,
            execution_time_s,
            energy_j,
            mean_platform_power_w,
            ..
        } = self.summary;
        SimulationResult {
            config,
            trace,
            execution_time_s,
            completed,
            mean_platform_power_w,
            energy_j,
        }
    }
}

/// Outcome of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Per-interval trace.
    pub trace: Trace,
    /// Execution time of the benchmark, seconds (equal to the duration cap if
    /// the benchmark did not finish).
    pub execution_time_s: f64,
    /// Whether the benchmark ran to completion within the duration cap.
    pub completed: bool,
    /// Mean total platform power over the run, watts.
    pub mean_platform_power_w: f64,
    /// Total platform energy over the run, joules.
    pub energy_j: f64,
}

/// Everything in the closed loop except the physical plant: sensors,
/// workload, governors, the configured thermal-management policy, and the
/// running trace/energy bookkeeping.
///
/// Splitting the controller side out of [`Experiment`] is what lets the
/// lockstep runner ([`run_lockstep`]) drive K control loops against one
/// [`BatchPlant`]: control decisions stay strictly per-lane while the plant
/// integration is batched.
#[derive(Debug)]
struct ControlLoop {
    config: ExperimentConfig,
    spec: SocSpec,
    sensors: SensorSuite,
    workload: WorkloadState,
    governor: OndemandGovernor,
    hotplug: HotplugGovernor,
    fan: FanController,
    reactive: ReactiveThrottler,
    dtpm_policy: Option<DtpmPolicy>,
    power_model: PowerModel,
    state: PlatformState,
    readings: SensorReadings,
    /// Replays the configured [`FaultPlan`] over each interval's sampled
    /// readings (`None`: healthy sensors, zero per-interval work).
    faults: Option<FaultInjector>,
    /// Screens every reading before the policy sees it and tracks chain
    /// reliability (the degraded-mode state machine).
    health: SensorHealth,
    /// The escalating thermal watchdog above the policy.
    ladder: SafetyLadder,
    /// Every robustness event of the run, in firing order.
    incidents: IncidentLog,
    /// Incidents already streamed through the tracer's
    /// [`RunObserver::on_incident`] hook.
    published_incidents: usize,
    /// Set when the ladder's terminal rung fires: the run retires at the
    /// end of the interval (always after ≥ 1 absorbed interval, so a
    /// retiring run's statistics are never empty).
    shutdown: bool,
    /// Streaming run statistics, maintained for every run regardless of the
    /// trace policy (they cost a handful of flops per interval and make the
    /// [`RunSummary`] unconditional).
    stats: OnlineRunStats,
    /// The policy-selected trace-retention observer; every absorbed interval
    /// streams through it.
    tracer: Box<dyn RunObserver>,
    time_s: f64,
    energy_j: f64,
    completed: bool,
    max_steps: usize,
    steps_taken: usize,
}

/// One control interval's decisions, handed from [`ControlLoop::complete`]
/// to the plant step and back into [`ControlLoop::absorb`].
#[derive(Debug, Clone)]
struct IntervalDecision {
    demand: Demand,
    fan_level: FanLevel,
    predicted_peak_c: Option<f64>,
    intervened: bool,
}

/// A lane's control decision staged up to — but not including — the thermal
/// classification of the governors' proposal ([`ControlLoop::stage`]).
///
/// Splitting here is what lets the executor classify *all* lanes' proposals
/// with one batched panel prediction before any lane pays for the scalar
/// actuation walk.
#[derive(Debug)]
enum Staged {
    /// The decision needed no prediction (non-DTPM kinds): ready to step.
    Ready(IntervalDecision),
    /// A DTPM lane awaiting its proposal's predicted peak.
    Classify(ClassifyRequest),
}

/// The prediction inputs a staged DTPM lane hands the (batched) classifier.
#[derive(Debug)]
struct ClassifyRequest {
    demand: Demand,
    proposal: PlatformState,
    /// The power vector the proposal implies
    /// ([`DtpmPolicy::proposal_powers`]).
    proposed_powers: DomainPower,
    /// Predicted peak at the horizon, filled in by the batched pre-pass;
    /// `None` falls back to the (bit-identical) scalar prediction in
    /// [`ControlLoop::complete`].
    peak_c: Option<f64>,
}

impl ControlLoop {
    fn new(
        config: &ExperimentConfig,
        calibration: &Calibration,
        recording: TracePolicy,
    ) -> Result<Self, SimError> {
        if !(config.control_period_s > 0.0) {
            return Err(SimError::InvalidConfig("control period must be positive"));
        }
        if !(config.max_duration_s > config.control_period_s) {
            return Err(SimError::InvalidConfig(
                "maximum duration must exceed the control period",
            ));
        }
        // The fault-plan gate: every run path (scalar experiments, lockstep
        // batches, sweeps and campaigns) builds its control loops here, so a
        // malformed sensor-fault scenario is rejected with a descriptive
        // error before anything executes instead of producing silent
        // nonsense mid-campaign.
        if let Some(plan) = &config.faults {
            plan.validate()?;
        }
        let spec = SocSpec::odroid_xu_e().with_ambient_c(config.ambient_c);
        let mut sensors = if config.ideal_sensors {
            SensorSuite::ideal(config.seed)
        } else {
            SensorSuite::odroid_defaults(config.seed)
        };
        let workload = WorkloadState::new(
            config.benchmark,
            config.seed.wrapping_mul(31).wrapping_add(7),
        );
        let fan = match config.kind {
            ExperimentKind::DefaultWithFan => FanController::odroid_default(),
            _ => FanController::disabled(),
        };
        let dtpm_policy = match config.kind {
            ExperimentKind::Dtpm => {
                // Validates the DTPM configuration and precomputes the
                // one-shot horizon map (shared with every other loop cloned
                // from this calibration's predictor).
                Some(DtpmPolicy::new(config.dtpm, calibration.predictor.clone())?)
            }
            _ => None,
        };
        let state = PlatformState::default_for(&spec);
        let max_steps = (config.max_duration_s / config.control_period_s).ceil() as usize;
        // The degraded-mode fallback throttler: a DTPM lane that loses its
        // sensor chain demotes to reactive throttling *at the policy's own
        // constraint*; other kinds keep the paper's reactive geometry.
        let reactive = match &dtpm_policy {
            Some(policy) => ReactiveThrottler::for_constraint(policy.effective_constraint_c()),
            None => ReactiveThrottler::paper_default(),
        };
        let mut health_config = config.safety.health;
        if config.ideal_sensors {
            // A noiseless chain legitimately repeats readings exactly (the
            // plant settling to an f64 fixed point), so flatline detection
            // is only meaningful for a noisy chain.
            health_config.flatline_intervals = 0;
        }
        let mut faults = config
            .faults
            .clone()
            .filter(|plan| !plan.is_empty())
            .map(FaultInjector::new);
        let mut health = SensorHealth::new(health_config);
        let mut ladder = SafetyLadder::new(config.safety.ladder);
        let mut incidents = IncidentLog::default();
        // Bootstrap sensor readings from the initial plant state (every node
        // starts at the configured initial temperature), through the same
        // inject → screen → observe chain every later interval takes
        // (interval 0 = the bootstrap sample).
        let sampled = sensors.sample(
            [config.plant.initial_temp_c; 4],
            &power_model::DomainPower::default(),
            config.plant.board_base_w,
        );
        let sampled = match faults.as_mut() {
            Some(injector) => injector.apply(0, 0.0, sampled),
            None => sampled,
        };
        let readings = health.screen(0, 0.0, sampled, &mut incidents);
        ladder.observe(0, 0.0, readings.max_core_temp_c(), &mut incidents);
        Ok(ControlLoop {
            config: config.clone(),
            spec,
            sensors,
            workload,
            governor: OndemandGovernor::default(),
            hotplug: HotplugGovernor::exynos_default(),
            fan,
            reactive,
            dtpm_policy,
            power_model: calibration.power_model.clone(),
            state,
            readings,
            faults,
            health,
            ladder,
            incidents,
            published_incidents: 0,
            shutdown: false,
            stats: OnlineRunStats::new(),
            tracer: recording.observer(),
            time_s: 0.0,
            energy_j: 0.0,
            completed: false,
            max_steps,
            steps_taken: 0,
        })
    }

    /// Whether the run is over (benchmark complete, duration cap reached, or
    /// the safety ladder's terminal rung fired).
    fn is_done(&self) -> bool {
        self.completed || self.shutdown || self.steps_taken >= self.max_steps
    }

    /// The default (stock governor) proposal for the next interval: the big
    /// cluster stays active, `ondemand` picks the frequency from the load,
    /// the hotplug governor picks the core count and a simple GPU governor
    /// tracks GPU utilisation.
    fn default_proposal(&mut self, demand: &Demand) -> PlatformState {
        let mut proposal = self.state.clone();
        // The stock switcher prefers the big cluster whenever there is
        // foreground load (all paper benchmarks run on the big cores).
        proposal.active_cluster = ClusterKind::Big;

        // Frequency from ondemand: the load is the busy fraction of the most
        // loaded core over the last interval.
        let load = demand.cpu_streams.min(1.0);
        let freq = self.governor.select_frequency(
            &GovernorInput {
                load,
                current: proposal.big_frequency,
            },
            self.spec.big_opps(),
        );
        proposal.big_frequency = freq;

        // Core count from the hotplug governor.
        let online_target = self.hotplug.select_core_count(
            demand.cpu_streams,
            proposal.online_core_count(ClusterKind::Big),
        );
        for core in 0..4 {
            proposal.set_core_online(ClusterKind::Big, core, core < online_target);
        }

        // GPU frequency follows GPU utilisation.
        let gpu_opps = self.spec.gpu_opps();
        proposal.gpu_frequency = if demand.gpu_utilization > 0.05 {
            let target_mhz = gpu_opps.highest().frequency.mhz() as f64
                * demand.gpu_utilization.clamp(0.0, 1.0)
                / 0.85;
            gpu_opps
                .ceil(Frequency::from_mhz(target_mhz.ceil() as u32))
                .frequency
        } else {
            gpu_opps.lowest().frequency
        };
        proposal
    }

    /// Phase 1 of this interval's control decisions: workload demand,
    /// governor proposal, and the configuration-specific thermal management
    /// *up to* the thermal classification. Non-DTPM kinds complete outright
    /// ([`Staged::Ready`]); a DTPM lane feeds the run-time power model,
    /// assembles its proposal's power vector and returns a
    /// [`Staged::Classify`] request for the (batched) predictor.
    ///
    /// # Errors
    ///
    /// Propagates platform and DTPM errors, and drains the lane with
    /// [`SimError::Sensor`] when an invalid reading reaches the decision
    /// boundary unscreened, or when the chain is unreliable and the degraded
    /// fallback is disabled.
    fn stage(&mut self) -> Result<Staged, SimError> {
        // Executor-fault injection for containment testing: fires (panics)
        // only when the run's config carries an armed chaos plan.
        if let Some(chaos) = &self.config.chaos {
            chaos.maybe_panic(self.steps_taken);
        }
        // The control-loop boundary check: with the health monitor armed
        // this never trips (screening substituted already); with it off, a
        // non-finite reading drains the lane with a structured error instead
        // of flowing silently into fan control and throttling decisions.
        if !self.readings.is_valid() {
            return Err(SimError::Sensor(
                "non-finite sensor reading reached the control loop unscreened".into(),
            ));
        }
        let demand = self.workload.demand();
        let proposal = self.default_proposal(&demand);

        // Degraded mode: the chain is unreliable (a channel outlived its
        // staleness budget). The predictive policy must not keep deciding on
        // substituted data — demote it to the reactive throttler at its own
        // constraint, or drain the lane when the fallback is disabled.
        // Non-DTPM kinds have no model in the loop and carry on screened.
        if self.config.kind == ExperimentKind::Dtpm && self.health.degraded() {
            if !self.health.fallback_enabled() {
                return Err(SimError::Sensor(
                    "sensor chain unreliable and the degraded fallback is disabled".into(),
                ));
            }
            let mut state = proposal;
            let throttled = self.reactive.apply(
                self.readings.max_core_temp_c(),
                state.big_frequency,
                self.spec.big_opps(),
            );
            let intervened = throttled != state.big_frequency;
            state.big_frequency = throttled;
            return Ok(Staged::Ready(self.commit(demand, state, None, intervened)));
        }

        match self.config.kind {
            ExperimentKind::DefaultWithFan | ExperimentKind::WithoutFan => {
                Ok(Staged::Ready(self.commit(demand, proposal, None, false)))
            }
            ExperimentKind::Reactive => {
                let mut state = proposal;
                let throttled = self.reactive.apply(
                    self.readings.max_core_temp_c(),
                    state.big_frequency,
                    self.spec.big_opps(),
                );
                let intervened = throttled != state.big_frequency;
                state.big_frequency = throttled;
                Ok(Staged::Ready(self.commit(demand, state, None, intervened)))
            }
            ExperimentKind::Dtpm => {
                // Feed the run-time power model with the latest sensor data
                // (Figure 4.4) before making the decision.
                let active = self.state.active_cluster;
                let active_freq = self.state.cluster_frequency(active);
                let active_volts = self.spec.cluster_opps(active).voltage_for(active_freq)?;
                self.power_model.observe(
                    PowerDomain::from_cluster(active),
                    self.readings.domain_power[PowerDomain::from_cluster(active)],
                    self.readings.max_core_temp_c(),
                    active_volts,
                    active_freq,
                );
                let gpu_volts = self.spec.gpu_opps().voltage_for(self.state.gpu_frequency)?;
                self.power_model.observe(
                    PowerDomain::Gpu,
                    self.readings.domain_power[PowerDomain::Gpu],
                    self.readings.max_core_temp_c(),
                    gpu_volts,
                    self.state.gpu_frequency,
                );

                let policy = self
                    .dtpm_policy
                    .as_ref()
                    .expect("DTPM configuration always constructs a policy");
                let inputs = DtpmInputs {
                    spec: &self.spec,
                    proposed: proposal,
                    core_temps_c: self.readings.core_temps_c,
                    measured_power: self.readings.domain_power,
                };
                let proposed_powers = policy.proposal_powers(&inputs, &self.power_model)?;
                Ok(Staged::Classify(ClassifyRequest {
                    demand,
                    proposal: inputs.proposed,
                    proposed_powers,
                    peak_c: None,
                }))
            }
        }
    }

    /// Phase 2: resolves a staged decision. A classify request whose peak
    /// the batched pre-pass already predicted goes straight to the policy's
    /// affirm-or-actuate resolution; without one, the scalar horizon-map
    /// prediction (bit-identical to the batched path) fills in first.
    ///
    /// # Errors
    ///
    /// Propagates platform and DTPM errors.
    fn complete(&mut self, staged: Staged) -> Result<IntervalDecision, SimError> {
        let request = match staged {
            Staged::Ready(decision) => return Ok(decision),
            Staged::Classify(request) => request,
        };
        let policy = self
            .dtpm_policy
            .as_ref()
            .expect("only DTPM lanes stage classify requests");
        let peak_c = match request.peak_c {
            Some(peak_c) => peak_c,
            None => policy.predictor().predict_peak_with(
                self.readings.core_temps_c,
                &request.proposed_powers,
                policy.horizon_map(),
            )?,
        };
        let inputs = DtpmInputs {
            spec: &self.spec,
            proposed: request.proposal,
            core_temps_c: self.readings.core_temps_c,
            measured_power: self.readings.domain_power,
        };
        let decision =
            policy.resolve(&inputs, &self.power_model, &request.proposed_powers, peak_c)?;
        let intervened = decision.action != dtpm::DtpmAction::Affirmed;
        Ok(self.commit(
            request.demand,
            decision.state,
            Some(decision.predicted_peak_c),
            intervened,
        ))
    }

    /// The shared tail of a decision: fan control (only meaningful in the
    /// default configuration), programming the decided platform state —
    /// clamped by whatever rung the safety ladder currently holds, which
    /// overrides *any* policy — and the [`IntervalDecision`] record.
    fn commit(
        &mut self,
        demand: Demand,
        next_state: PlatformState,
        predicted_peak_c: Option<f64>,
        intervened: bool,
    ) -> IntervalDecision {
        let fan_level: FanLevel = self.fan.update(self.readings.max_core_temp_c());
        self.state = next_state;
        self.state.fan_level = fan_level;
        let enforced = self.ladder.enforce(&mut self.state, &self.spec);
        IntervalDecision {
            demand,
            fan_level,
            predicted_peak_c,
            intervened: intervened || enforced,
        }
    }

    /// Stages and completes this interval's decision in one call, with the
    /// scalar (single-lane) classification — the path the executor's
    /// mid-interval admissions use. Batched execution goes through
    /// [`ControlLoop::stage`] / [`ControlLoop::complete`] instead; the two
    /// are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates platform and DTPM errors.
    fn decide(&mut self) -> Result<IntervalDecision, SimError> {
        let staged = self.stage()?;
        self.complete(staged)
    }

    /// The batched-classify identity of this lane: the policy's shared
    /// horizon map and the ambient temperature its predictor is referenced
    /// to. `None` for non-DTPM kinds.
    fn classify_key(&self) -> Option<(&Arc<HorizonMap>, f64)> {
        self.dtpm_policy
            .as_ref()
            .map(|policy| (policy.horizon_map(), policy.predictor().ambient_c()))
    }

    /// Folds one plant interval back into the loop: workload progress, energy
    /// accounting, the next interval's sensor readings and the trace record.
    fn absorb(&mut self, decision: &IntervalDecision, step: &PlantStep) {
        let control_period = self.config.control_period_s;
        self.workload.advance(step.work_done);
        self.time_s += control_period;
        self.energy_j += step.platform_power_w * control_period;

        // Sample the sensors for the next interval's decisions, through the
        // robustness chain: inject the configured faults over the sampled
        // values, screen what the controller will see, and feed the screened
        // maximum temperature to the watchdog.
        let interval = self.steps_taken + 1;
        let sampled =
            self.sensors
                .sample(step.core_temps_c, &step.domain_power, step.platform_power_w);
        let sampled = match self.faults.as_mut() {
            Some(injector) => injector.apply(interval, self.time_s, sampled),
            None => sampled,
        };
        self.readings = self
            .health
            .screen(interval, self.time_s, sampled, &mut self.incidents);
        self.ladder.observe(
            interval,
            self.time_s,
            self.readings.max_core_temp_c(),
            &mut self.incidents,
        );
        if self.ladder.is_shutdown() {
            self.shutdown = true;
        }

        // Stream the interval through the observers instead of accumulating:
        // the online stats always fold it in (O(1) state), the policy's
        // tracer retains what its mode calls for (everything, every k-th
        // record, or nothing).
        let record = TraceRecord {
            time_s: self.time_s,
            core_temps_c: self.readings.core_temps_c,
            active_cluster: self.state.active_cluster,
            frequency_mhz: self.state.active_frequency().mhz(),
            online_cores: self.state.active_online_core_count(),
            gpu_frequency_mhz: self.state.gpu_frequency.mhz(),
            fan_level: decision.fan_level,
            domain_power: self.readings.domain_power,
            platform_power_w: self.readings.platform_power_w,
            progress: self.workload.progress(),
            predicted_peak_c: decision.predicted_peak_c,
            dtpm_intervened: decision.intervened,
        };
        self.stats.on_interval(&record);
        self.tracer.on_interval(&record);
        // Stream incidents recorded since the last interval (including any
        // from the bootstrap sample) through the tracer's incident hook.
        for incident in &self.incidents.as_slice()[self.published_incidents..] {
            self.tracer.on_incident(incident);
        }
        self.published_incidents = self.incidents.len();

        self.steps_taken += 1;
        if self.workload.is_complete() {
            self.completed = true;
        }
    }

    /// Consumes the loop and produces the run's report: the streamed summary
    /// plus whatever trace the policy retained.
    fn finish(mut self) -> RunReport {
        let trace = self.tracer.finish();
        RunReport {
            summary: RunSummary {
                config: self.config,
                completed: self.completed,
                execution_time_s: self.time_s,
                intervals: self.stats.intervals(),
                energy_j: self.energy_j,
                mean_platform_power_w: self.stats.mean_platform_power_w(),
                stability: self.stats.stability(),
                intervention_rate: self.stats.intervention_rate(),
                little_cluster_residency: self.stats.little_cluster_residency(),
                incidents: self.incidents,
            },
            trace,
        }
    }
}

/// One engine lane's bookkeeping inside [`drive_engine`]: which result slot
/// it reports to, its control loop while a scenario is in flight, and the
/// frozen plant inputs replayed while the lane idles.
struct LaneSlot {
    /// Index into the caller's configuration (and result) order.
    slot: usize,
    /// `None` once the lane has retired its scenario (and no replacement was
    /// admitted from the work queue).
    control: Option<ControlLoop>,
    /// This interval's staged decision, between stage and complete.
    staged: Option<Staged>,
    /// This interval's decision, between complete and absorb.
    decision: Option<IntervalDecision>,
    /// The plant inputs replayed while the lane idles, captured once when
    /// its scenario retires: the final platform state with idle demand and
    /// the fan off (the finished scenario's platform cooling down). An idle
    /// lane's results are already captured and engine lanes are strictly
    /// isolated, so the replayed inputs only keep the engine call well
    /// formed — they cannot perturb the surviving lanes' trajectories.
    frozen: (PlatformState, Demand, FanLevel, f64),
}

impl LaneSlot {
    /// A lane holding a freshly admitted control loop.
    fn holding(slot: usize, control: ControlLoop) -> Self {
        LaneSlot {
            slot,
            frozen: frozen_inputs(&control),
            control: Some(control),
            staged: None,
            decision: None,
        }
    }
}

/// The batched classification pre-pass of [`drive_engine`]'s decide phase.
///
/// Every staged DTPM lane wants the same thing classified — "does my
/// proposal's power vector violate the constraint at the horizon?" — and in
/// a sweep all lanes cloned from one calibration share one horizon map, so
/// the pre-pass assembles their `(temperatures, proposed powers)` into a
/// [`BatchPredictor`] panel and predicts **all lanes with one fused panel
/// application**: the `(Aₙ, Bₙ)` matrices are loaded once per control
/// interval for the whole batch instead of once per lane. Panel predictions
/// are bit-identical per lane to the scalar path, so lanes left out of a
/// batch (a rare mixed-horizon sweep, non-DTPM lanes) simply fall back to
/// the scalar prediction in [`ControlLoop::complete`] with no behavioural
/// difference.
struct DecidePrepass {
    batch: Option<BatchPredictor>,
    /// Lane indices that joined the current interval's batch (reused across
    /// intervals, so the pre-pass allocates nothing in steady state).
    joined: Vec<usize>,
}

impl DecidePrepass {
    fn new() -> Self {
        DecidePrepass {
            batch: None,
            joined: Vec::new(),
        }
    }

    /// Classifies the staged DTPM lanes in one panel prediction, writing
    /// each member lane's predicted peak into its [`ClassifyRequest`].
    fn classify(&mut self, lanes: &mut [LaneSlot]) {
        // One pass loads every staged DTPM lane into the panel, anchoring
        // the batch on the first such lane's (shared) map: lanes whose key
        // matches the anchor join; the rest keep their scalar fallback.
        self.joined.clear();
        let mut anchor: Option<(Arc<HorizonMap>, f64)> = None;
        for (index, lane) in lanes.iter().enumerate() {
            if !matches!(&lane.staged, Some(Staged::Classify(_))) {
                continue;
            }
            let Some((map, ambient_c)) = lane.control.as_ref().and_then(ControlLoop::classify_key)
            else {
                continue;
            };
            match &anchor {
                Some((anchor_map, anchor_ambient)) => {
                    if !Arc::ptr_eq(anchor_map, map) || *anchor_ambient != ambient_c {
                        continue;
                    }
                }
                None => {
                    let width = lanes.len();
                    let stale = self.batch.as_ref().is_none_or(|batch| {
                        !Arc::ptr_eq(batch.map(), map)
                            || batch.ambient_c() != ambient_c
                            || batch.lanes() != width
                    });
                    if stale {
                        // A non-hotspot-shaped map cannot be panelised; every
                        // lane then keeps its scalar fallback (cannot happen
                        // for policy-built maps).
                        self.batch = BatchPredictor::new(Arc::clone(map), ambient_c, width).ok();
                    }
                    if self.batch.is_none() {
                        return;
                    }
                    anchor = Some((Arc::clone(map), ambient_c));
                }
            }
            let batch = self.batch.as_mut().expect("anchored batches exist");
            let control = lane.control.as_ref().expect("staged lanes hold a control");
            let Some(Staged::Classify(request)) = &lane.staged else {
                unreachable!("membership was just checked");
            };
            batch.set_lane(
                index,
                control.readings.core_temps_c,
                &request.proposed_powers,
            );
            self.joined.push(index);
        }
        let Some(batch) = self.batch.as_mut().filter(|_| !self.joined.is_empty()) else {
            return;
        };
        batch.predict();
        for &index in &self.joined {
            let Some(Staged::Classify(request)) = &mut lanes[index].staged else {
                unreachable!("joined lanes hold a classify request");
            };
            request.peak_c = Some(batch.peak_c(index));
        }
    }
}

/// The idle-replay inputs captured when a lane's scenario retires: its final
/// platform state winding down with idle demand and the fan off. Every
/// retire site uses this one helper so retire-on-done and retire-on-error
/// lanes idle identically.
fn frozen_inputs(control: &ControlLoop) -> (PlatformState, Demand, FanLevel, f64) {
    (
        control.state.clone(),
        Demand::idle(),
        FanLevel::Off,
        control.config.ambient_c,
    )
}

/// Renders a contained panic payload as a structured
/// [`SimError::Panicked`], preserving the panic message when it is a string
/// (the overwhelmingly common case: `panic!`, `assert!`, index/overflow
/// panics all carry one).
fn panic_error(payload: &(dyn std::any::Any + Send)) -> SimError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    SimError::Panicked(message)
}

/// One lane's engine inputs for the current interval: the decided inputs
/// while a scenario is in flight, the frozen retire snapshot while it idles.
fn lane_input(lane: &LaneSlot) -> LaneInput<'_> {
    match (&lane.control, &lane.decision) {
        (Some(control), Some(decision)) => LaneInput {
            state: &control.state,
            demand: &decision.demand,
            fan_level: decision.fan_level,
            ambient_c: control.config.ambient_c,
        },
        _ => LaneInput {
            state: &lane.frozen.0,
            demand: &lane.frozen.1,
            fan_level: lane.frozen.2,
            ambient_c: lane.frozen.3,
        },
    }
}

/// The unified control-loop executor: drives one [`ControlLoop`] per engine
/// lane against any [`PlantEngine`] until every scenario has finished and
/// the work queue is dry.
///
/// Per control interval the executor
///
/// 1. **retires** lanes whose scenario is done (publishing the result),
///    **admits** a replacement scenario from `next` into each freed lane
///    (retire → compact → admit; the lane restarts at the new scenario's
///    initial state via [`PlantEngine::admit`]), and resolves every live
///    lane's control decision in two phases: each lane **stages** its
///    decision up to the thermal classification, one batched panel
///    prediction classifies every staged DTPM proposal at once
///    ([`DecidePrepass`]), and each lane **completes** — affirmed lanes (the
///    steady-state common case) finish with zero per-lane mat-vecs, only
///    violating lanes walk the scalar actuation list,
/// 2. advances the engine by one interval with per-lane inputs (idle lanes
///    replay their frozen inputs), and
/// 3. absorbs the per-lane plant steps back into the control loops.
///
/// Control decisions stay strictly per-lane; only the plant integration is
/// delegated to the engine. [`Experiment::run`] is this function over a
/// single-lane [`ScalarEngine`] with an empty queue, [`run_lockstep`] over a
/// [`PanelEngine`] as wide as the configuration list, and the
/// lane-compacting [`ScenarioSweep`] over per-worker engines refilled from
/// a shared scenario queue.
///
/// Every lane's result is reported through `publish` exactly once, keyed by
/// the slot index handed out by `next` (or pre-assigned in `lanes`);
/// individual lane failures never abort the other lanes. An engine-level
/// error (malformed call, lost device) is unattributable to one lane and is
/// reported on every unfinished lane *and* every scenario remaining in the
/// queue, so no result slot is ever left unfilled.
///
/// **Cell-level fault containment.** Every per-lane control-loop call
/// (stage, classify-complete, decide, absorb, finish) runs under
/// `catch_unwind`: a panicking cell retires with a structured
/// [`SimError::Panicked`] — its partially-mutated control loop is discarded
/// whole — while sibling lanes continue untouched (lanes are strictly
/// isolated, so a quarantined lane's idle replay cannot perturb survivors).
/// `policy` additionally arms the cooperative per-cell deadline: a cell
/// still running after `deadline_intervals` absorbed intervals is cancelled
/// at the next interval boundary with [`SimError::Deadline`] instead of
/// hanging its worker.
fn drive_engine<E, N, P>(
    engine: &mut E,
    period_s: f64,
    lanes: &mut [LaneSlot],
    policy: &ResiliencePolicy,
    next: &mut N,
    publish: &mut P,
) where
    E: PlantEngine,
    N: FnMut() -> Option<(usize, ControlLoop)>,
    P: FnMut(usize, Result<RunReport, SimError>),
{
    debug_assert_eq!(engine.lanes(), lanes.len(), "engine width matches lanes");
    let mut steps: Vec<Result<PlantStep, SimError>> = Vec::with_capacity(lanes.len());
    let mut prepass = DecidePrepass::new();
    loop {
        // Phase 1a: retire → admit → stage, per lane.
        for (index, lane) in lanes.iter_mut().enumerate() {
            loop {
                match lane.control.as_mut() {
                    Some(control) if control.is_done() => {
                        lane.frozen = frozen_inputs(control);
                        let control = lane.control.take().expect("control is present");
                        // The engine's per-lane accumulated energy is the
                        // same integral the control loop publishes; hold the
                        // two accountants to each other at retirement
                        // (before any idle intervals accrue on the lane).
                        debug_assert!(
                            (engine.energy_j(index) - control.energy_j).abs()
                                <= 1e-9 * control.energy_j.abs().max(1.0),
                            "engine and control-loop energy bookkeeping diverged"
                        );
                        let report = catch_unwind(AssertUnwindSafe(move || control.finish()))
                            .map_err(|payload| panic_error(payload.as_ref()));
                        publish(lane.slot, report);
                        // Fall through to the admission arm.
                    }
                    Some(control) if policy.exceeds_deadline(control.steps_taken) => {
                        // The cooperative watchdog: the cell overran its
                        // interval budget — cancel it cleanly at this
                        // interval boundary instead of hanging the worker.
                        lane.frozen = frozen_inputs(control);
                        publish(
                            lane.slot,
                            Err(SimError::Deadline {
                                intervals: control.steps_taken,
                            }),
                        );
                        lane.control = None;
                        // Fall through to the admission arm.
                    }
                    Some(control) => {
                        let staged = catch_unwind(AssertUnwindSafe(|| control.stage()))
                            .unwrap_or_else(|payload| Err(panic_error(payload.as_ref())));
                        match staged {
                            Ok(staged) => lane.staged = Some(staged),
                            Err(e) => {
                                lane.frozen = frozen_inputs(control);
                                publish(lane.slot, Err(e));
                                lane.control = None;
                                // Retired on error: try to admit a
                                // replacement scenario right away.
                                continue;
                            }
                        }
                        break;
                    }
                    None => match next() {
                        Some((slot, control)) => {
                            engine.admit(index, control.config.plant);
                            lane.slot = slot;
                            lane.control = Some(control);
                            lane.staged = None;
                            lane.decision = None;
                            // `frozen` still holds the previous occupant's
                            // retire snapshot; every retire path recaptures
                            // it before this lane can idle again.
                            // Loop back so the fresh scenario stages now.
                        }
                        None => break,
                    },
                }
            }
        }

        // Phase 1b: one batched panel prediction classifies every staged
        // DTPM proposal (the horizon matrices are loaded once for all
        // lanes); affirmed lanes will complete without any per-lane
        // mat-vecs.
        prepass.classify(lanes);

        // Phase 1c: complete the staged decisions. A lane failing here is
        // retired like a stage failure, and replacement scenarios admitted
        // mid-interval decide through the (bit-identical) scalar path.
        let mut any_active = false;
        for (index, lane) in lanes.iter_mut().enumerate() {
            let Some(staged) = lane.staged.take() else {
                continue;
            };
            let control = lane.control.as_mut().expect("staged lanes hold a control");
            let completed = catch_unwind(AssertUnwindSafe(|| control.complete(staged)))
                .unwrap_or_else(|payload| Err(panic_error(payload.as_ref())));
            match completed {
                Ok(decision) => {
                    lane.decision = Some(decision);
                    any_active = true;
                    continue;
                }
                Err(e) => {
                    lane.frozen = frozen_inputs(control);
                    publish(lane.slot, Err(e));
                    lane.control = None;
                }
            }
            // Retired on error: admit and decide replacements until one
            // survives its first decision or the queue runs dry.
            while let Some((slot, control)) = next() {
                engine.admit(index, control.config.plant);
                lane.slot = slot;
                let control = lane.control.insert(control);
                let decided = catch_unwind(AssertUnwindSafe(|| control.decide()))
                    .unwrap_or_else(|payload| Err(panic_error(payload.as_ref())));
                match decided {
                    Ok(decision) => {
                        lane.decision = Some(decision);
                        any_active = true;
                        break;
                    }
                    Err(e) => {
                        lane.frozen = frozen_inputs(control);
                        publish(lane.slot, Err(e));
                        lane.control = None;
                    }
                }
            }
        }
        if !any_active {
            break;
        }

        // Phase 2: advance every engine lane one interval (frozen inputs for
        // idle lanes). The single-lane case — the scalar `Experiment::run`
        // hot path — borrows its one input on the stack, keeping that path
        // allocation-free per interval as before the refactor.
        let single_input;
        let multi_inputs;
        let inputs: &[LaneInput<'_>] = if let [lane] = &*lanes {
            single_input = [lane_input(lane)];
            &single_input
        } else {
            multi_inputs = lanes.iter().map(lane_input).collect::<Vec<_>>();
            &multi_inputs
        };
        if let Err(e) = engine.step_interval(inputs, period_s, &mut steps) {
            // An engine-level error (malformed call, lost device) cannot be
            // attributed to one lane; report it on all unfinished lanes. The
            // engine is unusable now, so the queue's remaining scenarios can
            // never run here either — drain it with the same error so every
            // result slot is filled.
            for lane in lanes.iter_mut() {
                if lane.control.take().is_some() {
                    publish(lane.slot, Err(e.clone()));
                }
            }
            while let Some((slot, _control)) = next() {
                publish(slot, Err(e.clone()));
            }
            break;
        }

        // Phase 3: absorb per lane.
        for (lane, step) in lanes.iter_mut().zip(steps.drain(..)) {
            let Some(control) = lane.control.as_mut() else {
                continue;
            };
            let Some(decision) = lane.decision.take() else {
                continue;
            };
            match step {
                Ok(step) => {
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| control.absorb(&decision, &step)))
                    {
                        lane.frozen = frozen_inputs(control);
                        publish(lane.slot, Err(panic_error(payload.as_ref())));
                        lane.control = None;
                    }
                }
                Err(e) => {
                    lane.frozen = frozen_inputs(control);
                    publish(lane.slot, Err(e));
                    lane.control = None;
                }
            }
        }
    }
}

/// The plant engine a run or sweep group steps, selected by
/// [`ExperimentConfig::precision`]: the scalar/panel f64 paths or the
/// mixed-precision f32 panel (optionally with its f64 shadow).
#[derive(Debug)]
enum AnyEngine {
    Scalar(Box<ScalarEngine>),
    Panel(Box<PanelEngine>),
    // Every engine is boxed so the dispatch enum stays pointer-sized: the
    // panel engines carry whole scenario panels (the mixed one at both
    // precisions plus per-lane caches) and dwarf anything unboxed.
    Mixed(Box<MixedPanelEngine>),
}

impl AnyEngine {
    /// Builds the engine `precision` selects for the given lanes; `lanes`
    /// picks between the scalar and panel f64 forms (the mixed engine is
    /// panel-native at every width).
    fn build(
        spec: SocSpec,
        params: &[PlantPowerParams],
        lanes: usize,
        precision: EnginePrecision,
    ) -> AnyEngine {
        match precision {
            EnginePrecision::F64 if lanes == 1 => {
                AnyEngine::Scalar(Box::new(ScalarEngine::new(spec, params)))
            }
            EnginePrecision::F64 => AnyEngine::Panel(Box::new(PanelEngine::new(spec, params))),
            EnginePrecision::F32 => AnyEngine::Mixed(Box::new(MixedPanelEngine::new(spec, params))),
            EnginePrecision::F32Shadow => {
                AnyEngine::Mixed(Box::new(MixedPanelEngine::with_shadow(spec, params)))
            }
        }
    }
}

/// `AnyEngine` forwards the whole plant contract to its selected backend, so
/// the generic executor and sweep bodies stay monomorphised over one type.
impl PlantEngine for AnyEngine {
    fn lanes(&self) -> usize {
        match self {
            AnyEngine::Scalar(e) => e.lanes(),
            AnyEngine::Panel(e) => e.lanes(),
            AnyEngine::Mixed(e) => e.lanes(),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            AnyEngine::Scalar(e) => e.node_count(),
            AnyEngine::Panel(e) => e.node_count(),
            AnyEngine::Mixed(e) => e.node_count(),
        }
    }

    fn admit(&mut self, lane: usize, params: PlantPowerParams) {
        match self {
            AnyEngine::Scalar(e) => e.admit(lane, params),
            AnyEngine::Panel(e) => e.admit(lane, params),
            AnyEngine::Mixed(e) => e.admit(lane, params),
        }
    }

    fn step_interval(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
        steps: &mut Vec<Result<PlantStep, SimError>>,
    ) -> Result<(), SimError> {
        match self {
            AnyEngine::Scalar(e) => e.step_interval(inputs, interval_s, steps),
            AnyEngine::Panel(e) => e.step_interval(inputs, interval_s, steps),
            AnyEngine::Mixed(e) => e.step_interval(inputs, interval_s, steps),
        }
    }

    fn core_temps_c(&self, lane: usize) -> [f64; 4] {
        match self {
            AnyEngine::Scalar(e) => e.core_temps_c(lane),
            AnyEngine::Panel(e) => e.core_temps_c(lane),
            AnyEngine::Mixed(e) => e.core_temps_c(lane),
        }
    }

    fn node_temps_into(&self, lane: usize, out: &mut [f64]) {
        match self {
            AnyEngine::Scalar(e) => e.node_temps_into(lane, out),
            AnyEngine::Panel(e) => e.node_temps_into(lane, out),
            AnyEngine::Mixed(e) => e.node_temps_into(lane, out),
        }
    }

    fn energy_j(&self, lane: usize) -> f64 {
        match self {
            AnyEngine::Scalar(e) => e.energy_j(lane),
            AnyEngine::Panel(e) => e.energy_j(lane),
            AnyEngine::Mixed(e) => e.energy_j(lane),
        }
    }
}

/// The closed-loop simulation of one benchmark run: a control loop wired
/// to a single-lane engine (scalar f64 by default, the mixed-precision
/// panel under [`EnginePrecision::F32`]) and driven by the same generic
/// executor as the batched and sweeping paths.
#[derive(Debug)]
pub struct Experiment {
    control: ControlLoop,
    engine: AnyEngine,
}

impl Experiment {
    /// Builds an experiment from its configuration and the characterised
    /// models (power model + identified thermal predictor). The configuration
    /// is borrowed; the one owned copy lives in the eventual
    /// [`SimulationResult`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-physical timing parameters.
    pub fn new(config: &ExperimentConfig, calibration: &Calibration) -> Result<Self, SimError> {
        let control = ControlLoop::new(config, calibration, TracePolicy::Full)?;
        let engine = AnyEngine::build(control.spec.clone(), &[config.plant], 1, config.precision);
        Ok(Experiment { control, engine })
    }

    /// Replaces the run's trace-retention policy (the default is
    /// [`TracePolicy::Full`]). Under [`TracePolicy::SummaryOnly`] use
    /// [`Experiment::run_report`] — [`Experiment::run`] needs a retained
    /// trace.
    #[must_use]
    pub fn with_recording(mut self, recording: TracePolicy) -> Self {
        self.control.tracer = recording.observer();
        self
    }

    /// Runs the experiment to completion and returns the result.
    ///
    /// # Errors
    ///
    /// Propagates plant, platform and DTPM errors.
    ///
    /// # Panics
    ///
    /// Panics if the experiment was switched to [`TracePolicy::SummaryOnly`]
    /// (no trace to build the result from); use [`Experiment::run_report`].
    pub fn run(self) -> Result<SimulationResult, SimError> {
        self.run_report().map(RunReport::into_simulation_result)
    }

    /// Runs the experiment to completion and returns its streamed report:
    /// the always-present [`RunSummary`] plus whatever trace the recording
    /// policy retained.
    ///
    /// # Errors
    ///
    /// Propagates plant, platform and DTPM errors.
    pub fn run_report(self) -> Result<RunReport, SimError> {
        let Experiment {
            control,
            mut engine,
        } = self;
        let period_s = control.config.control_period_s;
        let mut lanes = [LaneSlot::holding(0, control)];
        let mut out = None;
        drive_engine(
            &mut engine,
            period_s,
            &mut lanes,
            &ResiliencePolicy::default(),
            &mut || None,
            &mut |_, result| out = Some(result),
        );
        out.expect("a single-lane run publishes exactly one result")
    }
}

/// Runs many independent experiment configurations across worker threads
/// with a lane-compacting scheduler.
///
/// Every configuration is a self-contained closed-loop simulation (own plant,
/// sensors, workload and seed), so a sweep is embarrassingly parallel: the
/// runner shares one [`Calibration`] across `std::thread::scope` workers that
/// pull scenarios from a shared atomic work queue. With
/// [`ScenarioSweep::with_lanes`] each worker drives a [`PanelEngine`] of that
/// width and *recycles* its lanes: when a scenario finishes, the lane is
/// retired, re-initialised and refilled with the next queued scenario
/// (retire → compact → admit via [`PlantEngine::admit`]), so a ragged mix of
/// short and long scenarios no longer serialises on the slowest member of a
/// statically tiled lane-group — the batch stays dense until the queue runs
/// dry. Results come back in input order; each scenario's trajectory is
/// independent of which lane or worker it landed on (within the batched
/// engine's ≤ 1e-9 °C equivalence bar — bit-identical for one-lane sweeps).
///
/// Scenarios must share a control period to step in lockstep; a sweep over
/// mixed periods is partitioned into per-period groups that are processed
/// one after another, each with the full worker pool.
///
/// # Example
///
/// ```no_run
/// use platform_sim::{CalibrationCampaign, ExperimentConfig, ExperimentKind, ScenarioSweep};
/// use workload::BenchmarkId;
///
/// # fn main() -> Result<(), platform_sim::SimError> {
/// let calibration = CalibrationCampaign::default().run(7)?;
/// let configs: Vec<ExperimentConfig> = (0..16)
///     .map(|seed| {
///         ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Templerun)
///             .with_seed(seed)
///     })
///     .collect();
/// let results = ScenarioSweep::new(configs).run(&calibration);
/// assert_eq!(results.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSweep {
    configs: Vec<ExperimentConfig>,
    threads: usize,
    lanes: usize,
    recording: TracePolicy,
    resilience: ResiliencePolicy,
}

impl ScenarioSweep {
    /// Creates a sweep over the given configurations using one worker per
    /// available CPU (capped at the number of configurations), scalar
    /// (one-lane) execution and full trace retention.
    pub fn new(configs: Vec<ExperimentConfig>) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ScenarioSweep {
            threads: parallelism.min(configs.len()).max(1),
            configs,
            lanes: 1,
            recording: TracePolicy::Full,
            resilience: ResiliencePolicy::default(),
        }
    }

    /// Overrides the worker-thread count (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets what each run retains per interval: full traces (the default),
    /// decimated coarse traces, or streamed summaries only — the knob that
    /// decouples a campaign's memory footprint from its scenario count.
    /// [`TracePolicy::SummaryOnly`] requires streaming through
    /// [`ScenarioSweep::run_into`]; [`ScenarioSweep::run`] builds its
    /// [`SimulationResult`]s from retained traces.
    pub fn with_recording(mut self, recording: TracePolicy) -> Self {
        self.recording = recording;
        self
    }

    /// Sets the batch width: every worker drives a [`PanelEngine`] of this
    /// many lanes through the structure-of-arrays
    /// [`crate::batch::BatchPlant`], refilling freed lanes from the shared
    /// scenario queue, so total parallelism is `threads × lanes`. One lane
    /// (the default) is the scalar per-scenario engine.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// The configurations in this sweep.
    pub fn configs(&self) -> &[ExperimentConfig] {
        &self.configs
    }

    /// The worker-thread count the sweep will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The batch width (scenarios advanced per instruction stream).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The per-run trace-retention policy [`ScenarioSweep::run_into`] uses.
    pub fn recording(&self) -> TracePolicy {
        self.recording
    }

    /// Sets the containment policy: retry budget for panicking/overrunning
    /// scenarios and the cooperative per-cell interval deadline (default:
    /// no retries, no deadline — panic containment itself is always on).
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// The containment policy the sweep will apply.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.resilience
    }

    /// Runs every configuration and returns one result per configuration, in
    /// input order. Individual failures do not abort the sweep.
    ///
    /// This is the trivial-sink instantiation of the streaming pipeline: the
    /// sweep runs under its trace-retaining [`ScenarioSweep::with_recording`]
    /// policy into a [`CollectSink`] and the collected reports become
    /// [`SimulationResult`]s — under the default [`TracePolicy::Full`],
    /// memory scales as scenarios × intervals (a
    /// [`TracePolicy::Decimated`] sweep's results carry the coarse traces).
    /// Campaigns that only need per-run summaries should stream through
    /// [`ScenarioSweep::run_into`] with [`TracePolicy::SummaryOnly`]
    /// instead, which retains O(1) per scenario.
    ///
    /// # Panics
    ///
    /// Panics if the sweep was configured with [`TracePolicy::SummaryOnly`]:
    /// there would be no traces to build the results from — stream through
    /// [`ScenarioSweep::run_into`].
    pub fn run(&self, calibration: &Calibration) -> Vec<Result<SimulationResult, SimError>> {
        assert!(
            self.recording != TracePolicy::SummaryOnly,
            "ScenarioSweep::run builds SimulationResults from retained traces; \
             stream a TracePolicy::SummaryOnly sweep through run_into instead"
        );
        let mut sink = CollectSink::new(self.configs.len());
        self.run_groups(calibration, self.recording, &mut sink);
        sink.into_reports()
            .into_iter()
            .map(|report| report.map(RunReport::into_simulation_result))
            .collect()
    }

    /// Runs every configuration, pushing each scenario's [`RunReport`] into
    /// `sink` as its lane retires — tagged with the scenario's input-order
    /// index, in *arrival* order (scenarios on other workers finish
    /// whenever they finish). What each report carries is governed by
    /// [`ScenarioSweep::with_recording`]; with
    /// [`TracePolicy::SummaryOnly`] the sweep's memory footprint is O(1) per
    /// in-flight lane plus whatever the sink keeps, independent of run
    /// lengths — scenario count is no longer bounded by trace memory.
    ///
    /// The sink is shared by all workers behind a mutex; it is locked once
    /// per scenario completion (not per interval), so sink contention is
    /// negligible against simulation work.
    pub fn run_into<S>(&self, calibration: &Calibration, sink: &mut S)
    where
        S: ResultSink + Send + ?Sized,
    {
        self.run_groups(calibration, self.recording, sink);
    }

    /// Shared body of [`ScenarioSweep::run`] / [`ScenarioSweep::run_into`]:
    /// partition into shared-period groups and stream each group through the
    /// lane-compacting scheduler.
    fn run_groups<S>(&self, calibration: &Calibration, recording: TracePolicy, sink: &mut S)
    where
        S: ResultSink + Send + ?Sized,
    {
        if self.configs.is_empty() {
            return;
        }
        // Lockstep needs a shared control period and one engine per group
        // needs a shared precision: partition the scenario indices into
        // per-(period, precision) groups (almost always exactly one). One
        // worker pool sweeps the groups in order, draining each group's
        // shared queue before flowing into the next, so a sweep over many
        // distinct periods still keeps the whole pool busy — workers that
        // find a group's queue already drained skip ahead immediately.
        let mut groups: Vec<((u64, EnginePrecision), Vec<usize>)> = Vec::new();
        for (index, config) in self.configs.iter().enumerate() {
            let bits = (config.control_period_s.to_bits(), config.precision);
            match groups.iter_mut().find(|(key, _)| *key == bits) {
                Some((_, group)) => group.push(index),
                None => groups.push((bits, vec![index])),
            }
        }
        let group_meta: Vec<(f64, EnginePrecision, usize)> = groups
            .iter()
            .map(|((_, precision), group)| {
                (
                    self.configs[group[0]].control_period_s,
                    *precision,
                    group.len(),
                )
            })
            .collect();
        let provider = |group: usize, k: usize| -> (usize, ExperimentConfig) {
            let slot = groups[group].1[k];
            (slot, self.configs[slot].clone())
        };
        let sink = std::sync::Mutex::new(sink);
        sweep_stream(
            self.threads,
            self.lanes,
            &group_meta,
            recording,
            &provider,
            calibration,
            &self.resilience,
            &sink,
        );
    }
}

/// Destination of a streaming sweep's per-scenario reports.
///
/// [`ResultSink::accept`] is called exactly once per scenario, tagged with
/// the scenario's input-order index, as lanes retire (arrival order is not
/// input order across workers). Sinks aggregate however they like: collect
/// everything ([`CollectSink`]), fold summaries into running statistics,
/// write rows to disk — the pipeline itself retains nothing.
pub trait ResultSink {
    /// Accepts scenario `index`'s report (or its failure). Individual
    /// failures do not abort a sweep, so sinks see every index exactly once.
    fn accept(&mut self, index: usize, outcome: Result<RunReport, SimError>);
}

/// The trivial sink: collects every report into its input-order slot.
#[derive(Debug, Default)]
pub struct CollectSink {
    slots: Vec<Option<Result<RunReport, SimError>>>,
}

impl CollectSink {
    /// A sink with one empty slot per expected scenario.
    pub fn new(count: usize) -> CollectSink {
        CollectSink {
            slots: (0..count).map(|_| None).collect(),
        }
    }

    /// Consumes the sink into one report per scenario, in input order.
    ///
    /// # Panics
    ///
    /// Panics if any slot was never filled (the sweep it was handed to did
    /// not cover every index).
    pub fn into_reports(self) -> Vec<Result<RunReport, SimError>> {
        self.slots
            .into_iter()
            .map(|slot| slot.expect("every sweep slot is filled"))
            .collect()
    }
}

impl ResultSink for CollectSink {
    fn accept(&mut self, index: usize, outcome: Result<RunReport, SimError>) {
        assert!(
            self.slots[index].replace(outcome).is_none(),
            "every sweep slot is written exactly once"
        );
    }
}

/// The null sink: discards every delivery. Useful as the inner sink of a
/// wrapper that does all the aggregation itself (e.g. a
/// [`crate::CheckpointSink`] whose checkpoint fold is the result).
impl ResultSink for () {
    fn accept(&mut self, _index: usize, _outcome: Result<RunReport, SimError>) {}
}

/// The shared streaming sweep body: `threads` workers sweep the
/// shared-period `groups` (each a `(control period, engine precision,
/// scenario count)` triple) in order, pulling within-group indices from one
/// atomic cursor per group
/// and materialising each scenario through `provider(group, k)` lazily —
/// nothing about a scenario exists before a worker claims it. Scenarios are
/// driven through lane-compacting engines of `lanes` lanes and every report
/// is pushed into the shared sink as its lane retires. A worker that finds
/// a group's queue already drained flows into the next group immediately,
/// so a multi-period sweep never idles the pool on one group's ragged tail.
/// Both [`ScenarioSweep`] (providers indexed into its config list) and the
/// campaign runner (a single group over the grid-cell expansion) are
/// instantiations.
///
/// The sink is delivered to behind poison-recovering locking with the
/// `accept` call itself under `catch_unwind`: a sink that panics on one
/// result neither poisons the mutex (deadlocking or aborting sibling
/// workers) nor unwinds a worker — the failed delivery is reported to
/// stderr and the sweep carries on. `policy` arms the executor's per-cell
/// containment (see [`drive_engine`]) and, with a non-zero retry budget,
/// bounded deterministic retry: a cell that failed retryably
/// ([`ResiliencePolicy::is_retryable`]) is re-admitted from scratch — its
/// configuration re-derived identically, no RNG state involved — up to
/// `max_retries` times before its final error is delivered (poison-cell
/// quarantine).
#[allow(clippy::too_many_arguments)] // one call-site-shared body, not an API
pub(crate) fn sweep_stream<F, S>(
    threads: usize,
    lanes: usize,
    groups: &[(f64, EnginePrecision, usize)],
    recording: TracePolicy,
    provider: &F,
    calibration: &Calibration,
    policy: &ResiliencePolicy,
    sink: &std::sync::Mutex<&mut S>,
) where
    F: Fn(usize, usize) -> (usize, ExperimentConfig) + Sync,
    S: ResultSink + Send + ?Sized,
{
    /// A retryably-failed scenario awaiting re-admission: its result slot,
    /// the configuration to re-derive it from, and which attempt the next
    /// execution will be.
    struct RetryEntry {
        slot: usize,
        config: ExperimentConfig,
        attempt: u32,
    }

    let total: usize = groups.iter().map(|(_, _, count)| count).sum();
    if total == 0 {
        return;
    }
    let cursors: Vec<std::sync::atomic::AtomicUsize> = groups
        .iter()
        .map(|_| std::sync::atomic::AtomicUsize::new(0))
        .collect();
    // Per-group retry queues (retries must re-run inside their own lockstep
    // group: the engine's period and precision are group properties). Empty
    // and untouched when the policy's retry budget is zero.
    let retries: Vec<std::sync::Mutex<Vec<RetryEntry>>> = groups
        .iter()
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    /// Retired results a worker buffers before taking the sink lock:
    /// batching amortises the mutex handoff across deliveries, so a wide
    /// pool of fast cells no longer serialises on the sink. Small enough
    /// that sink-side effects (checkpoint cadence, worker heartbeats) lag
    /// completion by at most a few cells.
    const SINK_BATCH: usize = 8;
    let worker = || {
        // Retired results awaiting delivery. Each entry is handed to the
        // sink exactly once — at the next batch flush or at worker exit —
        // so the ResultSink contract (every index, exactly once) and the
        // merge layer's order-independence are untouched; only the lock
        // cadence changes.
        let outbox = std::cell::RefCell::new(
            Vec::<(usize, Result<RunReport, SimError>)>::with_capacity(SINK_BATCH),
        );
        // Delivers the buffered results to the shared sink under one lock
        // acquisition. Poison recovery + catch_unwind keep a panicking sink
        // from taking the sweep down: the unwind is stopped while the guard
        // is still held, so the mutex is never poisoned in the first place,
        // and recovery makes even an externally-poisoned mutex (a sink
        // panic outside this path) non-fatal to siblings.
        let flush = || {
            let batch: Vec<(usize, Result<RunReport, SimError>)> = {
                let mut outbox = outbox.borrow_mut();
                if outbox.is_empty() {
                    return;
                }
                outbox.drain(..).collect()
            };
            let mut sink_panics: Vec<String> = Vec::new();
            {
                let mut guard = sink
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for (slot, result) in batch {
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| guard.accept(slot, result)))
                    {
                        sink_panics.push(format!(
                            "result sink panicked accepting slot {slot} (result discarded): {}",
                            panic_error(payload.as_ref())
                        ));
                    }
                }
            }
            for message in sink_panics {
                eprintln!("{message}");
            }
        };
        // Queues one final result for delivery, flushing a full batch.
        let deliver = |slot: usize, result: Result<RunReport, SimError>| {
            let full = {
                let mut outbox = outbox.borrow_mut();
                outbox.push((slot, result));
                outbox.len() >= SINK_BATCH
            };
            if full {
                flush();
            }
        };
        // Scenarios this worker currently has in flight, by result slot —
        // the configs a retry re-derives cells from. Only maintained when
        // retry is armed, so the default policy costs nothing.
        let in_flight = std::cell::RefCell::new(std::collections::HashMap::<
            usize,
            (ExperimentConfig, u32),
        >::new());
        for (group, (&(period_s, precision, count), cursor)) in
            groups.iter().zip(&cursors).enumerate()
        {
            // Keep draining this group while retry work reappears: any
            // worker that enqueues a retry re-checks its own queue after
            // its engine drains, so no entry is ever orphaned.
            loop {
                // Pulls the next admissible scenario — retries first, then
                // the group's shared cursor — publishing construction
                // failures in place.
                let mut next = || loop {
                    if policy.max_retries > 0 {
                        let entry = retries[group]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .pop();
                        if let Some(RetryEntry {
                            slot,
                            mut config,
                            attempt,
                        }) = entry
                        {
                            if let Some(chaos) = config.chaos.as_mut() {
                                chaos.attempt = attempt;
                            }
                            match ControlLoop::new(&config, calibration, recording) {
                                Ok(control) => {
                                    in_flight.borrow_mut().insert(slot, (config, attempt));
                                    return Some((slot, control));
                                }
                                Err(e) => {
                                    deliver(slot, Err(e));
                                    continue;
                                }
                            }
                        }
                    }
                    let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= count {
                        return None;
                    }
                    let (slot, config) = provider(group, k);
                    match ControlLoop::new(&config, calibration, recording) {
                        Ok(control) => {
                            if policy.max_retries > 0 {
                                in_flight.borrow_mut().insert(slot, (config, 0));
                            }
                            return Some((slot, control));
                        }
                        Err(e) => deliver(slot, Err(e)),
                    }
                };
                // Routes a retired result: retryable failures with budget
                // left go back on the group's retry queue (the cell is
                // re-derived from its config — deterministic, seed-stable);
                // everything else is final and delivered.
                let mut publish = |slot: usize, result: Result<RunReport, SimError>| {
                    if policy.max_retries > 0 {
                        let entry = in_flight.borrow_mut().remove(&slot);
                        if let Err(error) = &result {
                            if let Some((config, attempt)) = entry {
                                if ResiliencePolicy::is_retryable(error)
                                    && attempt < policy.max_retries
                                {
                                    retries[group]
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                                        .push(RetryEntry {
                                            slot,
                                            config,
                                            attempt: attempt + 1,
                                        });
                                    return;
                                }
                            }
                        }
                    }
                    deliver(slot, result);
                };

                // Claim the initial lane-group; the engine is sized to what
                // the queue could actually provide, so a near-empty queue
                // never creates idle-from-birth lanes, and a drained queue
                // lets the worker flow straight into the next group.
                let mut claimed = Vec::with_capacity(lanes);
                while claimed.len() < lanes {
                    match next() {
                        Some(admitted) => claimed.push(admitted),
                        None => break,
                    }
                }
                if claimed.is_empty() {
                    break;
                }
                let spec = SocSpec::odroid_xu_e();
                let params: Vec<PlantPowerParams> = claimed
                    .iter()
                    .map(|(_, control)| control.config.plant)
                    .collect();
                let mut lane_slots: Vec<LaneSlot> = claimed
                    .into_iter()
                    .map(|(slot, control)| LaneSlot::holding(slot, control))
                    .collect();
                let mut engine = AnyEngine::build(spec, &params, lanes, precision);
                drive_engine(
                    &mut engine,
                    period_s,
                    &mut lane_slots,
                    policy,
                    &mut next,
                    &mut publish,
                );
                if policy.max_retries == 0 {
                    break;
                }
            }
        }
        // Everything this worker retired reaches the sink before the worker
        // (and therefore the sweep) returns.
        flush();
    };
    let pool = threads.min(total).max(1);
    if pool == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(worker);
            }
        });
    }
}

fn run_one(
    config: &ExperimentConfig,
    calibration: &Calibration,
) -> Result<SimulationResult, SimError> {
    Experiment::new(config, calibration)?.run()
}

/// Runs the given configurations in lockstep on one [`PanelEngine`]: each
/// scenario keeps its own control loop (sensors, governors, policy, trace —
/// decisions stay strictly per-lane) while the plant integration advances all
/// lanes per instruction stream, one scenario per panel column. The stepping
/// logic itself is the shared `drive_engine` executor — the same code that
/// runs a scalar [`Experiment`] — instantiated over the batched engine with
/// as many lanes as configurations.
///
/// Results come back in input order; individual failures do not abort the
/// batch. Scenarios finishing early stay in the batch as frozen lanes until
/// the slowest lane completes (a [`ScenarioSweep`] avoids that tail by
/// refilling freed lanes from its scenario queue). All configurations must
/// share one `control_period_s` and one engine precision; mixed periods or
/// precisions cannot step on one engine and fall back to scalar per-scenario
/// runs.
pub fn run_lockstep(
    configs: &[ExperimentConfig],
    calibration: &Calibration,
) -> Vec<Result<SimulationResult, SimError>> {
    if configs.is_empty() {
        return Vec::new();
    }
    let period_s = configs[0].control_period_s;
    let precision = configs[0].precision;
    if configs
        .iter()
        .any(|config| config.control_period_s != period_s || config.precision != precision)
    {
        return configs
            .iter()
            .map(|config| run_one(config, calibration))
            .collect();
    }

    let mut slots: Vec<Option<Result<RunReport, SimError>>> =
        (0..configs.len()).map(|_| None).collect();
    let mut lanes: Vec<LaneSlot> = Vec::new();
    let mut lane_params = Vec::new();
    for (slot, config) in configs.iter().enumerate() {
        match ControlLoop::new(config, calibration, TracePolicy::Full) {
            Ok(control) => {
                lanes.push(LaneSlot::holding(slot, control));
                lane_params.push(config.plant);
            }
            Err(e) => slots[slot] = Some(Err(e)),
        }
    }

    if !lanes.is_empty() {
        // The f64 path keeps the panel engine even for one lane (bit-identical
        // to the scalar engine there); precision selects the mixed backend.
        let mut engine = match precision {
            EnginePrecision::F64 => AnyEngine::Panel(Box::new(PanelEngine::new(
                SocSpec::odroid_xu_e(),
                &lane_params,
            ))),
            _ => AnyEngine::build(
                SocSpec::odroid_xu_e(),
                &lane_params,
                lane_params.len(),
                precision,
            ),
        };
        drive_engine(
            &mut engine,
            period_s,
            &mut lanes,
            &ResiliencePolicy::default(),
            &mut || None,
            &mut |slot, result| slots[slot] = Some(result),
        );
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.expect("every lockstep slot is filled")
                .map(RunReport::into_simulation_result)
        })
        .collect()
}

//! Sensor fault injection: deterministic, serde-able fault plans applied
//! over the sampled sensor chain.
//!
//! The controller only ever sees what [`crate::SensorSuite`] reports, so the
//! natural place to model sensor failure is a wrapper over the sampled
//! readings: a [`FaultPlan`] declares per-channel time windows of stuck-at,
//! dropped (NaN), offset-drift, spike and delayed-reading faults, and a
//! [`FaultInjector`] replays the plan over each interval's readings. Three
//! properties are load-bearing:
//!
//! * **Determinism.** Everything is a pure function of the plan, its seed and
//!   the interval index ([`crate::campaign::splitmix64`] hashes decide spike
//!   timing — no shared RNG state, no draw-order coupling with the sensor
//!   noise stream), so the same plan replays bit-identically regardless of
//!   which sweep lane, worker or shard the scenario lands on.
//! * **Isolation.** An injector is owned by one control loop and touches only
//!   that lane's readings; sibling lanes in a batched sweep cannot observe
//!   it (pinned by `tests/compaction.rs`).
//! * **Declarativity.** A plan is a small serde value, so fault scenarios are
//!   grid cells like any other: [`crate::campaign::SweepSpec`] exposes a
//!   fault axis whose cells differ only in their plan.
//!
//! Faults corrupt the *measured* chain, never the plant: the silicon keeps
//! integrating the truth while the controller sees garbage — which is
//! exactly the failure mode the safety ladder and sensor-health monitor
//! ([`crate::safety`]) exist to survive.

use serde::{Deserialize, Serialize};
use soc_model::PowerDomain;

use crate::campaign::splitmix64;
use crate::sensors::SensorReadings;
use crate::SimError;

/// One addressable channel of the measured sensor chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorChannel {
    /// One of the four per-core temperature sensors (index 0..4).
    CoreTemp(usize),
    /// One of the per-domain INA231 power monitors.
    DomainPower(PowerDomain),
    /// The external platform power meter.
    PlatformPower,
}

impl SensorChannel {
    /// Every channel of the sensor chain, in a fixed canonical order.
    pub const ALL: [SensorChannel; 9] = [
        SensorChannel::CoreTemp(0),
        SensorChannel::CoreTemp(1),
        SensorChannel::CoreTemp(2),
        SensorChannel::CoreTemp(3),
        SensorChannel::DomainPower(PowerDomain::BigCpu),
        SensorChannel::DomainPower(PowerDomain::LittleCpu),
        SensorChannel::DomainPower(PowerDomain::Gpu),
        SensorChannel::DomainPower(PowerDomain::Memory),
        SensorChannel::PlatformPower,
    ];

    /// Whether this channel reports a temperature (°C) rather than a power
    /// (W) — the sensor-health monitor picks its plausibility envelope by
    /// this.
    pub fn is_temperature(self) -> bool {
        matches!(self, SensorChannel::CoreTemp(_))
    }

    /// Reads this channel's value out of a set of readings.
    pub fn read(self, readings: &SensorReadings) -> f64 {
        match self {
            SensorChannel::CoreTemp(core) => readings.core_temps_c[core],
            SensorChannel::DomainPower(domain) => readings.domain_power[domain],
            SensorChannel::PlatformPower => readings.platform_power_w,
        }
    }

    /// Writes this channel's value into a set of readings.
    pub fn write(self, readings: &mut SensorReadings, value: f64) {
        match self {
            SensorChannel::CoreTemp(core) => readings.core_temps_c[core] = value,
            SensorChannel::DomainPower(domain) => readings.domain_power[domain] = value,
            SensorChannel::PlatformPower => readings.platform_power_w = value,
        }
    }
}

impl std::fmt::Display for SensorChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorChannel::CoreTemp(core) => write!(f, "core-temp-{core}"),
            SensorChannel::DomainPower(domain) => write!(f, "power-{domain:?}"),
            SensorChannel::PlatformPower => write!(f, "platform-meter"),
        }
    }
}

/// What a faulty channel reports while its window is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The reading freezes at the value it had when the window opened (a
    /// stuck register / wedged driver). Looks plausible — only the
    /// flatline detector can tell.
    StuckAt,
    /// The reading is lost: the channel reports NaN (an I²C read that came
    /// back empty).
    Dropped,
    /// An offset that drifts linearly over the window (calibration walk,
    /// thermal EMF): `reading + initial + drift_per_s · (t − start)`.
    OffsetDrift {
        /// Offset at the start of the window, in the channel's unit.
        initial: f64,
        /// Drift rate, unit per second.
        drift_per_s: f64,
    },
    /// Pseudo-random spikes: roughly one interval in `period_intervals`
    /// (decided by a [`splitmix64`] hash of the plan seed and the interval
    /// index — deterministic, replayable) reads `magnitude` too high or too
    /// low.
    Spike {
        /// Spike amplitude, in the channel's unit (sign is hash-chosen).
        magnitude: f64,
        /// Mean interval count between spikes (clamped to ≥ 1).
        period_intervals: usize,
    },
    /// The channel reports the value it sampled `intervals` control
    /// intervals ago (a stale mailbox / queued DMA). Until enough history
    /// exists the oldest sample available is reported.
    Delayed {
        /// Reporting delay in whole control intervals.
        intervals: usize,
    },
}

/// One fault: a channel, a kind, and the `[start_s, end_s)` window (in
/// simulation time) during which it is active. `end_s = f64::INFINITY` holds
/// the fault for the rest of the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// The channel this fault corrupts.
    pub channel: SensorChannel,
    /// What the channel reports while faulted.
    pub kind: FaultKind,
    /// Window start, seconds (inclusive).
    pub start_s: f64,
    /// Window end, seconds (exclusive).
    pub end_s: f64,
}

impl FaultWindow {
    /// Whether the window covers simulation time `time_s`.
    pub fn is_active(&self, time_s: f64) -> bool {
        time_s >= self.start_s && time_s < self.end_s
    }
}

/// A declarative, serde-able sensor fault scenario: a list of fault windows
/// plus the seed that fixes every hash-derived choice (spike timing and
/// signs). See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for hash-derived fault behaviour (spike timing/sign).
    pub seed: u64,
    /// The fault windows, applied in order (later windows see the output of
    /// earlier ones when they overlap on a channel).
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            windows: Vec::new(),
        }
    }

    /// Appends a fault window.
    #[must_use]
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// Whether the plan contains no windows at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Validates every window of the plan: windows must be well-formed
    /// (`start_s` finite and non-negative, `end_s > start_s` — open-ended
    /// `end_s = ∞` is fine), fault parameters must be finite (offsets,
    /// drift rates, spike magnitudes), and channels must exist (core index
    /// < 4). A malformed plan is rejected here, at construction or
    /// deserialisation time, with a descriptive [`SimError::FaultPlan`] —
    /// not discovered as silent NaN injection mid-campaign. Every run gate
    /// ([`crate::Experiment::new`], sweeps, campaigns) validates the
    /// configured plan before building its control loop.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultPlan`] naming the first offending window and
    /// what is wrong with it.
    pub fn validate(&self) -> Result<(), SimError> {
        for (index, window) in self.windows.iter().enumerate() {
            let reject = |what: String| {
                Err(SimError::FaultPlan(format!(
                    "window {index} ({}): {what}",
                    window.channel
                )))
            };
            if let SensorChannel::CoreTemp(core) = window.channel {
                if core >= 4 {
                    return reject(format!("core-temp index {core} out of range (0..4)"));
                }
            }
            if !window.start_s.is_finite() || window.start_s < 0.0 {
                return reject(format!(
                    "window start {} must be finite and non-negative",
                    window.start_s
                ));
            }
            if window.end_s.is_nan() || window.end_s <= window.start_s {
                return reject(format!(
                    "window [{}, {}) is inverted or zero-length",
                    window.start_s, window.end_s
                ));
            }
            match window.kind {
                FaultKind::StuckAt | FaultKind::Dropped | FaultKind::Delayed { .. } => {}
                FaultKind::OffsetDrift {
                    initial,
                    drift_per_s,
                } => {
                    if !initial.is_finite() || !drift_per_s.is_finite() {
                        return reject(format!(
                            "offset-drift parameters ({initial}, {drift_per_s}/s) must be finite"
                        ));
                    }
                }
                FaultKind::Spike { magnitude, .. } => {
                    if !magnitude.is_finite() {
                        return reject(format!("spike magnitude {magnitude} must be finite"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Per-window mutable state of an in-flight injection.
#[derive(Debug, Clone, Default)]
struct WindowState {
    /// The latched value of a stuck-at window (`None` outside the window, so
    /// a window that re-opens re-latches).
    stuck: Option<f64>,
    /// Rolling history of the channel's pre-fault values for a delayed
    /// window (front = oldest retained sample).
    history: std::collections::VecDeque<f64>,
}

/// Applies a [`FaultPlan`] over each interval's sampled readings.
///
/// Owned by one control loop; state is a pure function of the plan and the
/// sequence of `(interval, time, readings)` triples it has seen, so replay is
/// bit-identical for a given scenario regardless of scheduling.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    states: Vec<WindowState>,
}

impl FaultInjector {
    /// An injector replaying the given plan from the start of a run.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let states = plan
            .windows
            .iter()
            .map(|_| WindowState::default())
            .collect();
        FaultInjector { plan, states }
    }

    /// The plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Applies the plan to one interval's readings. `interval` is the
    /// control-interval index (0 = the bootstrap sample), `time_s` the
    /// simulation time of the sample.
    pub fn apply(
        &mut self,
        interval: usize,
        time_s: f64,
        mut readings: SensorReadings,
    ) -> SensorReadings {
        for (index, (window, state)) in self
            .plan
            .windows
            .iter()
            .zip(self.states.iter_mut())
            .enumerate()
        {
            let value = window.channel.read(&readings);
            // Delayed windows record history continuously (also outside the
            // window), so a window opening mid-run has samples to serve.
            if let FaultKind::Delayed { intervals } = window.kind {
                state.history.push_back(value);
                while state.history.len() > intervals + 1 {
                    state.history.pop_front();
                }
            }
            if !window.is_active(time_s) {
                state.stuck = None;
                continue;
            }
            let faulted = match window.kind {
                FaultKind::StuckAt => *state.stuck.get_or_insert(value),
                FaultKind::Dropped => f64::NAN,
                FaultKind::OffsetDrift {
                    initial,
                    drift_per_s,
                } => value + initial + drift_per_s * (time_s - window.start_s),
                FaultKind::Spike {
                    magnitude,
                    period_intervals,
                } => {
                    let hash = splitmix64(
                        self.plan
                            .seed
                            .wrapping_add((index as u64) << 32)
                            .wrapping_add(interval as u64),
                    );
                    if hash.is_multiple_of(period_intervals.max(1) as u64) {
                        let sign = if hash >> 63 == 0 { 1.0 } else { -1.0 };
                        value + sign * magnitude
                    } else {
                        value
                    }
                }
                FaultKind::Delayed { .. } => {
                    *state.history.front().expect("history holds this sample")
                }
            };
            window.channel.write(&mut readings, faulted);
        }
        readings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::DomainPower;

    fn reading(temps: [f64; 4], platform_w: f64) -> SensorReadings {
        SensorReadings {
            core_temps_c: temps,
            domain_power: DomainPower::new(2.0, 0.1, 0.3, 0.4),
            platform_power_w: platform_w,
        }
    }

    #[test]
    fn channels_read_and_write_every_lane() {
        let mut r = reading([50.0, 51.0, 52.0, 53.0], 6.0);
        for (i, channel) in SensorChannel::ALL.into_iter().enumerate() {
            channel.write(&mut r, 100.0 + i as f64);
        }
        for (i, channel) in SensorChannel::ALL.into_iter().enumerate() {
            assert_eq!(channel.read(&r), 100.0 + i as f64, "{channel}");
        }
        assert!(SensorChannel::CoreTemp(2).is_temperature());
        assert!(!SensorChannel::PlatformPower.is_temperature());
    }

    #[test]
    fn stuck_at_latches_the_window_opening_value_and_relatches() {
        let plan = FaultPlan::new(1).with_window(FaultWindow {
            channel: SensorChannel::CoreTemp(0),
            kind: FaultKind::StuckAt,
            start_s: 0.2,
            end_s: 0.4,
        });
        let mut injector = FaultInjector::new(plan);
        let out = injector.apply(1, 0.1, reading([50.0; 4], 6.0));
        assert_eq!(out.core_temps_c[0], 50.0, "before the window: untouched");
        let out = injector.apply(2, 0.2, reading([51.0; 4], 6.0));
        assert_eq!(out.core_temps_c[0], 51.0, "latches the opening value");
        let out = injector.apply(3, 0.3, reading([57.0; 4], 6.0));
        assert_eq!(out.core_temps_c[0], 57.0 - 6.0, "stays stuck at 51");
        let out = injector.apply(4, 0.4, reading([58.0; 4], 6.0));
        assert_eq!(out.core_temps_c[0], 58.0, "window closed (exclusive end)");
        // Sibling channels untouched throughout.
        assert_eq!(out.core_temps_c[1], 58.0);
    }

    #[test]
    fn dropped_reads_nan_and_only_in_the_window() {
        let plan = FaultPlan::new(2).with_window(FaultWindow {
            channel: SensorChannel::PlatformPower,
            kind: FaultKind::Dropped,
            start_s: 1.0,
            end_s: f64::INFINITY,
        });
        let mut injector = FaultInjector::new(plan);
        assert_eq!(
            injector
                .apply(0, 0.0, reading([50.0; 4], 6.0))
                .platform_power_w,
            6.0
        );
        let out = injector.apply(10, 1.0, reading([50.0; 4], 6.0));
        assert!(out.platform_power_w.is_nan());
        assert!(out.core_temps_c.iter().all(|t| *t == 50.0));
    }

    #[test]
    fn offset_drift_grows_linearly_from_the_window_start() {
        let plan = FaultPlan::new(3).with_window(FaultWindow {
            channel: SensorChannel::CoreTemp(2),
            kind: FaultKind::OffsetDrift {
                initial: 2.0,
                drift_per_s: 1.5,
            },
            start_s: 1.0,
            end_s: 10.0,
        });
        let mut injector = FaultInjector::new(plan);
        let out = injector.apply(10, 1.0, reading([50.0; 4], 6.0));
        assert_eq!(out.core_temps_c[2], 52.0);
        let out = injector.apply(30, 3.0, reading([50.0; 4], 6.0));
        assert_eq!(out.core_temps_c[2], 52.0 + 1.5 * 2.0);
    }

    #[test]
    fn spikes_are_seed_deterministic_and_roughly_periodic() {
        let window = FaultWindow {
            channel: SensorChannel::CoreTemp(0),
            kind: FaultKind::Spike {
                magnitude: 20.0,
                period_intervals: 5,
            },
            start_s: 0.0,
            end_s: f64::INFINITY,
        };
        let run = |seed: u64| -> Vec<f64> {
            let mut injector = FaultInjector::new(FaultPlan::new(seed).with_window(window));
            (0..200)
                .map(|k| {
                    injector
                        .apply(k, k as f64 * 0.1, reading([50.0; 4], 6.0))
                        .core_temps_c[0]
                })
                .collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed replays the same spikes");
        let spikes = a.iter().filter(|t| **t != 50.0).count();
        assert!(
            (10..=80).contains(&spikes),
            "~1 in 5 of 200 intervals should spike, got {spikes}"
        );
        assert!(a.iter().all(|t| *t == 50.0 || *t == 70.0 || *t == 30.0));
        let c = run(8);
        assert_ne!(a, c, "a different seed moves the spikes");
    }

    #[test]
    fn delayed_channel_reports_old_samples() {
        let plan = FaultPlan::new(4).with_window(FaultWindow {
            channel: SensorChannel::CoreTemp(1),
            kind: FaultKind::Delayed { intervals: 3 },
            start_s: 0.5,
            end_s: f64::INFINITY,
        });
        let mut injector = FaultInjector::new(plan);
        // History accumulates before the window opens.
        for k in 0..5 {
            let out = injector.apply(k, k as f64 * 0.1, reading([40.0 + k as f64; 4], 6.0));
            assert_eq!(
                out.core_temps_c[1],
                40.0 + k as f64,
                "pre-window pass-through"
            );
        }
        // At t=0.5 (k=5) the window is active: report the sample from 3
        // intervals ago (k=2).
        let out = injector.apply(5, 0.5, reading([45.0; 4], 6.0));
        assert_eq!(out.core_temps_c[1], 42.0);
        let out = injector.apply(6, 0.6, reading([46.0; 4], 6.0));
        assert_eq!(out.core_temps_c[1], 43.0);
    }

    #[test]
    fn validation_accepts_well_formed_plans() {
        assert!(FaultPlan::new(0).validate().is_ok(), "empty plan is fine");
        let plan = FaultPlan::new(1)
            .with_window(FaultWindow {
                channel: SensorChannel::CoreTemp(3),
                kind: FaultKind::OffsetDrift {
                    initial: -2.0,
                    drift_per_s: 0.5,
                },
                start_s: 0.0,
                end_s: f64::INFINITY,
            })
            .with_window(FaultWindow {
                channel: SensorChannel::PlatformPower,
                kind: FaultKind::Spike {
                    magnitude: 10.0,
                    period_intervals: 5,
                },
                start_s: 1.0,
                end_s: 2.0,
            });
        assert!(plan.validate().is_ok(), "open-ended windows are fine");
    }

    #[test]
    fn validation_rejects_malformed_windows_descriptively() {
        let base = |kind, start_s, end_s| FaultWindow {
            channel: SensorChannel::CoreTemp(0),
            kind,
            start_s,
            end_s,
        };
        let cases = [
            (base(FaultKind::Dropped, 1.0, 1.0), "zero-length"),
            (base(FaultKind::Dropped, 2.0, 1.0), "inverted"),
            (base(FaultKind::Dropped, f64::NAN, 5.0), "finite"),
            (base(FaultKind::Dropped, -1.0, 5.0), "non-negative"),
            (
                base(FaultKind::Dropped, 0.0, f64::NAN),
                "inverted or zero-length",
            ),
            (
                base(
                    FaultKind::OffsetDrift {
                        initial: f64::INFINITY,
                        drift_per_s: 0.0,
                    },
                    0.0,
                    1.0,
                ),
                "offset-drift",
            ),
            (
                base(
                    FaultKind::OffsetDrift {
                        initial: 0.0,
                        drift_per_s: f64::NAN,
                    },
                    0.0,
                    1.0,
                ),
                "offset-drift",
            ),
            (
                base(
                    FaultKind::Spike {
                        magnitude: f64::NAN,
                        period_intervals: 3,
                    },
                    0.0,
                    1.0,
                ),
                "spike magnitude",
            ),
            (
                FaultWindow {
                    channel: SensorChannel::CoreTemp(7),
                    kind: FaultKind::Dropped,
                    start_s: 0.0,
                    end_s: 1.0,
                },
                "out of range",
            ),
        ];
        for (window, needle) in cases {
            let err = FaultPlan::new(0)
                .with_window(window)
                .validate()
                .expect_err("malformed window must be rejected");
            let msg = err.to_string();
            assert!(
                msg.contains("invalid fault plan") && msg.contains(needle),
                "error {msg:?} should mention {needle:?}"
            );
        }
        // The offending window is named by position.
        let plan = FaultPlan::new(0)
            .with_window(base(FaultKind::Dropped, 0.0, 1.0))
            .with_window(base(FaultKind::Dropped, 5.0, 4.0));
        assert!(plan
            .validate()
            .unwrap_err()
            .to_string()
            .contains("window 1"));
    }

    #[test]
    fn plans_compare_and_clone_structurally() {
        let plan = FaultPlan::new(99)
            .with_window(FaultWindow {
                channel: SensorChannel::DomainPower(PowerDomain::BigCpu),
                kind: FaultKind::Spike {
                    magnitude: 5.0,
                    period_intervals: 10,
                },
                start_s: 2.0,
                end_s: 8.0,
            })
            .with_window(FaultWindow {
                channel: SensorChannel::CoreTemp(3),
                kind: FaultKind::Delayed { intervals: 7 },
                start_s: 0.0,
                end_s: f64::INFINITY,
            });
        assert_eq!(plan.clone(), plan);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
        assert_eq!(FaultInjector::new(plan.clone()).plan(), &plan);
    }
}

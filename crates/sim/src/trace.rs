//! Per-interval trace logging and CSV export.

use std::io::{BufWriter, Write};
use std::path::Path;

use numeric::Summary;
use power_model::DomainPower;
use serde::{Deserialize, Serialize};
use soc_model::{ClusterKind, FanLevel};

use crate::SimError;

/// One logged control interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time at the end of the interval, seconds.
    pub time_s: f64,
    /// Measured big-core temperatures, °C.
    pub core_temps_c: [f64; 4],
    /// Which CPU cluster was active.
    pub active_cluster: ClusterKind,
    /// Frequency of the active cluster, MHz.
    pub frequency_mhz: u32,
    /// Number of online cores in the active cluster.
    pub online_cores: usize,
    /// GPU frequency, MHz.
    pub gpu_frequency_mhz: u32,
    /// Fan level during the interval.
    pub fan_level: FanLevel,
    /// Measured per-domain power, watts.
    pub domain_power: DomainPower,
    /// Total platform power (external meter), watts.
    pub platform_power_w: f64,
    /// Benchmark progress at the end of the interval, 0..1.
    pub progress: f64,
    /// Peak temperature the DTPM policy predicted for the proposed
    /// configuration (only meaningful in the DTPM configuration).
    pub predicted_peak_c: Option<f64>,
    /// Whether the DTPM policy overrode the default decision this interval.
    pub dtpm_intervened: bool,
}

impl TraceRecord {
    /// Maximum measured core temperature of the interval.
    pub fn max_core_temp_c(&self) -> f64 {
        self.core_temps_c
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A complete experiment trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// The logged records in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of logged intervals.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time series of the maximum core temperature, °C.
    pub fn max_temp_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.max_core_temp_c()).collect()
    }

    /// Time series of the active-cluster frequency, MHz.
    pub fn frequency_series(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.frequency_mhz as f64)
            .collect()
    }

    /// Time series of total platform power, watts.
    pub fn platform_power_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.platform_power_w).collect()
    }

    /// Summary statistics of the maximum core temperature.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn temperature_summary(&self) -> Summary {
        Summary::of(&self.max_temp_series())
    }

    /// Mean platform power over the trace, watts; 0 for an empty trace.
    pub fn mean_platform_power_w(&self) -> f64 {
        numeric::stats::mean(&self.platform_power_series())
    }

    /// Fraction of intervals in which the DTPM policy intervened.
    pub fn intervention_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.dtpm_intervened).count() as f64 / self.records.len() as f64
    }

    /// Fraction of intervals spent on the little cluster.
    pub fn little_cluster_residency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|r| r.active_cluster == ClusterKind::Little)
            .count() as f64
            / self.records.len() as f64
    }

    /// Writes the trace as CSV (one row per control interval).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] if the file cannot be written.
    pub fn write_csv(&self, path: &Path) -> Result<(), SimError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Buffer the row-at-a-time writes: a long trace is tens of thousands
        // of small formatted writes, which would otherwise each hit the OS.
        let mut file = BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            file,
            "time_s,temp0_c,temp1_c,temp2_c,temp3_c,max_temp_c,cluster,freq_mhz,online_cores,\
             gpu_freq_mhz,fan,big_w,little_w,gpu_w,mem_w,platform_w,progress,predicted_peak_c,dtpm_intervened"
        )?;
        for r in &self.records {
            writeln!(
                file,
                "{:.1},{:.2},{:.2},{:.2},{:.2},{:.2},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{},{}",
                r.time_s,
                r.core_temps_c[0],
                r.core_temps_c[1],
                r.core_temps_c[2],
                r.core_temps_c[3],
                r.max_core_temp_c(),
                r.active_cluster,
                r.frequency_mhz,
                r.online_cores,
                r.gpu_frequency_mhz,
                r.fan_level,
                r.domain_power.big_w,
                r.domain_power.little_w,
                r.domain_power.gpu_w,
                r.domain_power.memory_w,
                r.platform_power_w,
                r.progress,
                r.predicted_peak_c
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_default(),
                r.dtpm_intervened
            )?;
        }
        // Surface flush errors here: `BufWriter`'s drop swallows them.
        file.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(time_s: f64, temp: f64, freq: u32, power: f64) -> TraceRecord {
        TraceRecord {
            time_s,
            core_temps_c: [temp, temp - 1.0, temp - 0.5, temp - 1.5],
            active_cluster: ClusterKind::Big,
            frequency_mhz: freq,
            online_cores: 4,
            gpu_frequency_mhz: 177,
            fan_level: FanLevel::Off,
            domain_power: DomainPower::new(power, 0.05, 0.1, 0.4),
            platform_power_w: power + 2.3,
            progress: time_s / 100.0,
            predicted_peak_c: None,
            dtpm_intervened: false,
        }
    }

    #[test]
    fn series_and_summaries() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        for k in 0..50 {
            trace.push(record(k as f64 * 0.1, 50.0 + k as f64 * 0.1, 1600, 3.0));
        }
        assert_eq!(trace.len(), 50);
        assert_eq!(trace.max_temp_series().len(), 50);
        let summary = trace.temperature_summary();
        assert!(summary.max > summary.min);
        assert!((trace.mean_platform_power_w() - 5.3).abs() < 1e-9);
        assert_eq!(trace.intervention_rate(), 0.0);
        assert_eq!(trace.little_cluster_residency(), 0.0);
        assert_eq!(trace.frequency_series()[0], 1600.0);
    }

    #[test]
    fn intervention_and_residency_rates() {
        let mut trace = Trace::new();
        let mut r = record(0.0, 55.0, 1600, 3.0);
        r.dtpm_intervened = true;
        trace.push(r);
        let mut r = record(0.1, 56.0, 1200, 2.0);
        r.active_cluster = ClusterKind::Little;
        trace.push(r);
        assert_eq!(trace.intervention_rate(), 0.5);
        assert_eq!(trace.little_cluster_residency(), 0.5);
    }

    #[test]
    fn empty_trace_rates_are_zero() {
        let trace = Trace::new();
        assert_eq!(trace.mean_platform_power_w(), 0.0);
        assert_eq!(trace.intervention_rate(), 0.0);
        assert_eq!(trace.little_cluster_residency(), 0.0);
    }

    #[test]
    fn csv_export_writes_all_rows() {
        let mut trace = Trace::new();
        for k in 0..10 {
            trace.push(record(k as f64 * 0.1, 52.0, 1500, 2.5));
        }
        let dir = std::env::temp_dir().join("dtpm_trace_test");
        let path = dir.join("trace.csv");
        trace.write_csv(&path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 11); // header + 10 rows
        assert!(contents.lines().next().unwrap().starts_with("time_s,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_round_trips_record_count_and_shape() {
        // A long trace exercises the buffered writer across flush boundaries;
        // the exported file must round-trip the record count exactly and keep
        // every row aligned with the header's column count.
        let mut trace = Trace::new();
        for k in 0..4096 {
            let mut r = record(k as f64 * 0.1, 50.0 + (k % 17) as f64 * 0.3, 1600, 3.1);
            if k % 5 == 0 {
                r.predicted_peak_c = Some(61.5);
            }
            trace.push(r);
        }
        let dir = std::env::temp_dir().join("dtpm_trace_roundtrip_test");
        let path = dir.join("trace.csv");
        trace.write_csv(&path).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        let mut lines = contents.lines();
        let header = lines.next().expect("header row");
        let columns = header.split(',').count();
        let mut rows = 0usize;
        for line in lines {
            assert_eq!(
                line.split(',').count(),
                columns,
                "row {rows} column count diverged from the header"
            );
            rows += 1;
        }
        assert_eq!(
            rows,
            trace.len(),
            "exported CSV must round-trip record count"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

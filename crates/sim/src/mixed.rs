//! Mixed-precision batched plant: f32 panel state with f64 anchoring.
//!
//! [`MixedBatchPlant`] is the single-precision twin of
//! [`BatchPlant`](crate::batch::BatchPlant): the same structure-of-arrays
//! layout and the same per-interval control contract, but every panel the
//! micro-step hot loops stream — temperatures, node powers, the
//! `P = base + coef·I` linearisation and the leakage currents — is stored at
//! f32 width, so each AVX2 vector carries 8 lanes instead of 4 (NEON: 4
//! instead of 2) and the per-micro-step memory traffic halves.
//!
//! Precision is split, not sacrificed, along the lines the error analysis
//! actually cares about:
//!
//! * **the temperature baseline stays f64** — the f32 panels never hold
//!   absolute temperatures. Each lane's node temperatures are carried as
//!   `T = T0 + x`, where the baseline `T0` is an f64 vector advanced once
//!   per control interval and `x` is the f32 *intra-interval deviation*
//!   (zero at every interval start, at most a few tenths of a kelvin by
//!   interval end). Integrating `x⁺ = R·x + S·p + c + (R − I)·T0` instead of
//!   `T⁺ = R·T + …` keeps the f32 rounding magnitudes at the size of the
//!   per-step *increments*, not the ~25–95 °C state, so micro-step rounding
//!   cannot random-walk the slow thermal modes out of budget — the
//!   `c + (R − I)·T0` drive is computed in exact f64 from the undemoted
//!   transition at every rebaseline and demoted as a constant bias panel
//!   that the transition apply consumes directly;
//! * **per-interval setup stays f64** — `compute_interval_ops`, the power
//!   linearisation coefficients and the RK4 transition matrices are computed
//!   in f64 exactly as in the f64 batch and demoted *once per control
//!   interval* ([`thermal_model::BatchStepTransitionF32::from_f64`]);
//! * **leakage anchors stay f64** — the `libm` exponential anchor of the
//!   [`power_model::LeakagePanelF32`] is evaluated in f64 every re-anchor
//!   and demoted, so f32 rounding only ever touches the short inter-anchor
//!   drift spans;
//! * **reductions stay f64** — per-domain power accumulation and the energy
//!   integral promote each f32 node power to f64 before summing, so
//!   interval-average powers do not lose precision to long f32 sums.
//!
//! What remains at f32 is exactly the bandwidth-bound integrator inner
//! loops, validated against a ≤ 1e-3 °C trajectory budget (see
//! `tests/mixed_precision.rs` and the `mixed_precision` bench).

use numeric::{Panel, PanelF32};
use power_model::{DomainPower, LeakagePanelF32, LeakageParams};
use soc_model::{PlatformState, SocSpec};
use thermal_model::{BatchStepTransition, BatchStepTransitionF32, ExynosThermalNetwork};
use workload::Demand;

use crate::engine::LaneInput;
use crate::plant::{
    compute_interval_ops, online_cores, scaled, throughput_units_per_s, IntervalOps,
    PlantPowerParams, PlantStep,
};
use crate::SimError;

/// Number of leakage-current rows the batch evaluates per micro-step (see
/// [`crate::batch::BatchPlant`]).
const LEAK_ROWS: usize = 6;

/// Control intervals a baseline (and its `c + (R − I)·T0` drive) stays valid
/// for before the accumulated f32 deviation is folded back into the f64
/// baseline and the drive recomputed. Amortises the per-rebaseline f64 work
/// (one `n × n` mat-vec per lane plus the panel demotions) without touching
/// the error budget: the deviation grows to at most a few kelvin over eight
/// 100 ms intervals, so its f32 rounding stays well under ~1e-6 K per
/// operation — more than two orders below the documented 1e-3 °C trajectory
/// budget (validated in `tests/mixed_precision.rs`).
const REBASELINE_INTERVALS: usize = 8;

/// A cached transition together with the (fan boost, ambient) key it was
/// built for: the exact f64 form (needed at every rebaseline to fold the f64
/// baseline into the delta drive) and its demoted f32 twin the micro-step
/// hot loop consumes.
#[derive(Debug, Clone)]
struct TransitionEntry {
    fan_bits: u64,
    ambient_bits: u64,
    full: BatchStepTransition,
    demoted: BatchStepTransitionF32,
}

/// K physical plants advanced in lockstep at f32 panel width with f64
/// anchoring (see the module docs). The public surface mirrors
/// [`crate::batch::BatchPlant`] so [`crate::MixedPanelEngine`] can drive it
/// through the same [`crate::PlantEngine`] seam.
#[derive(Debug, Clone)]
pub struct MixedBatchPlant {
    spec: SocSpec,
    thermal: ExynosThermalNetwork,
    lanes: usize,
    plant_dt_s: f64,
    params: Vec<PlantPowerParams>,
    /// f64 per-lane node-temperature baseline `T0`, °C; row-major
    /// `node_count × lanes`, advanced at every rebaseline (at most every
    /// [`REBASELINE_INTERVALS`] control intervals). The authoritative
    /// temperature state — f32 never holds absolute temperatures.
    baseline: Vec<f64>,
    /// f32 demotion of the baseline, refreshed at every rebaseline; feeds
    /// the absolute-temperature leakage reads (`T ≈ f32(T0) + x`).
    baseline_f32: PanelF32,
    /// Temperature deviation from the baseline `x = T − T0`; `node_count ×
    /// lanes`, f32, zero at every rebaseline.
    delta: PanelF32,
    /// Delta drive `c + (R − I)·T0` (ambient drive plus baseline drift),
    /// computed in exact f64 at every rebaseline and demoted;
    /// `node_count × lanes`. Consumed as the transition apply's bias panel.
    drive: PanelF32,
    /// Per-lane f64 accumulator row for the vectorised drive mat-vec.
    drive_scratch: Vec<f64>,
    /// Node power injections, W; `node_count × lanes`, f32.
    powers: PanelF32,
    /// Integrator scratch; `node_count × lanes`, f32.
    step_tmp: PanelF32,
    /// Per-interval power linearisation `P = base + coef · I`, demoted from
    /// the f64 interval setup; both `node_count × lanes`, f32.
    base: PanelF32,
    coef: PanelF32,
    /// Batched f32 leakage models (f64-anchored) and their current values;
    /// `LEAK_ROWS × lanes`.
    leak: LeakagePanelF32,
    currents: PanelF32,
    /// Per-micro-step gather of the leakage-relevant node temperatures;
    /// `LEAK_ROWS × lanes`.
    leak_temps: PanelF32,
    /// Whether node rows `0..LEAK_ROWS` line up with the leakage rows,
    /// enabling the fused assembly span.
    aligned_leak_rows: bool,
    /// Per-domain power accumulators (big, little, gpu, memory); `4 × lanes`,
    /// kept in f64 — reductions never run at f32.
    accum: Panel,
    /// Per-lane big-cluster uncore power that lands in no node injection
    /// (see [`crate::batch::BatchPlant`]).
    uncore_orphan_w: Vec<f64>,
    /// Temperature-panel row feeding each leakage row.
    leak_temp_rows: [usize; LEAK_ROWS],
    /// Leakage row feeding each node's power assembly (`usize::MAX` = none).
    node_leak_row: Vec<usize>,
    /// Accumulator row (big/little/gpu/memory) each node's power feeds
    /// (`usize::MAX` = none, e.g. the case node).
    node_domain: Vec<usize>,
    /// The `(state, demand)` each lane's linearisation (and cached
    /// throughput) was last computed for. The interval setup — power
    /// linearisation, uncore orphan, throughput — is a pure function of
    /// `(spec, params, state, demand)`, so when a lane's inputs repeat the
    /// stored coefficients are still exact and the whole f64 setup is
    /// skipped. `None` after construction, admission or a failed setup.
    setup_cache: Vec<Option<(PlatformState, Demand)>>,
    /// Per-lane `throughput_units_per_s` for the cached setup.
    throughput_cache: Vec<f64>,
    transitions: Vec<TransitionEntry>,
    lane_transition: Vec<usize>,
    /// The `(fan boost, ambient)` key each lane's current drive was computed
    /// with; a mismatch against the interval's transition key forces a
    /// rebaseline. `u64::MAX` pairs (the initial / post-admission state)
    /// match no real key.
    drive_keys: Vec<(u64, u64)>,
    /// Control intervals advanced since the last rebaseline.
    intervals_since_rebaseline: usize,
    /// Micro-steps since the leakage anchors were last refreshed.
    steps_since_anchor: usize,
    /// Per-lane column scratch for the diverged-transition fallback.
    col_scratch: Vec<f32>,
}

impl MixedBatchPlant {
    /// Creates a batch of `params.len()` lanes, each starting at its
    /// configured initial temperature.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn new(spec: SocSpec, params: &[PlantPowerParams]) -> Self {
        assert!(!params.is_empty(), "a batch plant needs at least one lane");
        let thermal = ExynosThermalNetwork::odroid_xu_e();
        let node_count = thermal.node_count();
        let lanes = params.len();

        let mut baseline = vec![0.0f64; node_count * lanes];
        let mut leak = LeakagePanelF32::filled(
            LEAK_ROWS,
            lanes,
            &scaled(LeakageParams::exynos5410_big(), params[0].leakage_mismatch),
            params[0].initial_temp_c,
        );
        for (lane, p) in params.iter().enumerate() {
            for node in 0..node_count {
                baseline[node * lanes + lane] = p.initial_temp_c;
            }
            let big = scaled(LeakageParams::exynos5410_big(), p.leakage_mismatch);
            let little = scaled(LeakageParams::exynos5410_little(), p.leakage_mismatch);
            let gpu = scaled(LeakageParams::exynos5410_gpu(), p.leakage_mismatch);
            for row in 0..4 {
                leak.set_model(row, lane, &big, p.initial_temp_c);
            }
            leak.set_model(4, lane, &little, p.initial_temp_c);
            leak.set_model(5, lane, &gpu, p.initial_temp_c);
        }

        let core_nodes = thermal.big_core_nodes();
        let leak_temp_rows = [
            core_nodes[0].0,
            core_nodes[1].0,
            core_nodes[2].0,
            core_nodes[3].0,
            thermal.case_node().0,
            thermal.gpu_node().0,
        ];
        let mut node_leak_row = vec![usize::MAX; node_count];
        for (row, core) in core_nodes.iter().enumerate() {
            node_leak_row[core.0] = row;
        }
        node_leak_row[thermal.little_node().0] = 4;
        node_leak_row[thermal.gpu_node().0] = 5;
        let aligned_leak_rows = node_leak_row.iter().enumerate().all(|(node, &row)| {
            if node < LEAK_ROWS {
                row == node
            } else {
                row == usize::MAX
            }
        });
        let mut node_domain = vec![usize::MAX; node_count];
        for core in core_nodes.iter() {
            node_domain[core.0] = 0;
        }
        node_domain[thermal.little_node().0] = 1;
        node_domain[thermal.gpu_node().0] = 2;
        node_domain[thermal.memory_node().0] = 3;

        MixedBatchPlant {
            spec,
            lanes,
            plant_dt_s: 0.01,
            params: params.to_vec(),
            baseline,
            baseline_f32: PanelF32::zeros(node_count, lanes),
            delta: PanelF32::zeros(node_count, lanes),
            drive: PanelF32::zeros(node_count, lanes),
            drive_scratch: vec![0.0; lanes],
            powers: PanelF32::zeros(node_count, lanes),
            step_tmp: PanelF32::zeros(node_count, lanes),
            base: PanelF32::zeros(node_count, lanes),
            coef: PanelF32::zeros(node_count, lanes),
            leak,
            currents: PanelF32::zeros(LEAK_ROWS, lanes),
            leak_temps: PanelF32::zeros(LEAK_ROWS, lanes),
            aligned_leak_rows,
            accum: Panel::zeros(4, lanes),
            uncore_orphan_w: vec![0.0; lanes],
            leak_temp_rows,
            node_leak_row,
            node_domain,
            setup_cache: vec![None; lanes],
            throughput_cache: vec![0.0; lanes],
            transitions: Vec::new(),
            lane_transition: vec![0; lanes],
            drive_keys: vec![(u64::MAX, u64::MAX); lanes],
            intervals_since_rebaseline: 0,
            steps_since_anchor: 0,
            col_scratch: vec![0.0; node_count],
            thermal,
        }
    }

    /// Number of scenario lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of thermal nodes per lane.
    pub fn node_count(&self) -> usize {
        self.delta.rows()
    }

    /// Lane `lane`'s current true temperature of node `node`, °C: the f64
    /// baseline plus the f32 deviation accumulated since the last
    /// rebaseline. This sum is exactly what the next rebaseline folds into
    /// the baseline, so reads and state advancement always agree.
    #[inline]
    fn node_temp(&self, node: usize, lane: usize) -> f64 {
        self.baseline[node * self.lanes + lane] + f64::from(self.delta.get(node, lane))
    }

    /// Writes lane `lane`'s current true temperature of every thermal node
    /// (°C) into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `out` does not cover
    /// [`MixedBatchPlant::node_count`] nodes.
    pub fn node_temps_into(&self, lane: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.delta.rows(), "node output length");
        for (node, slot) in out.iter_mut().enumerate() {
            *slot = self.node_temp(node, lane);
        }
    }

    /// Lane `lane`'s current true hotspot (big-core) temperatures, °C.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn core_temps_c(&self, lane: usize) -> [f64; 4] {
        let cores = self.thermal.big_core_nodes();
        [
            self.node_temp(cores[0].0, lane),
            self.node_temp(cores[1].0, lane),
            self.node_temp(cores[2].0, lane),
            self.node_temp(cores[3].0, lane),
        ]
    }

    /// Re-initialises lane `lane` for a new scenario mid-batch (see
    /// [`crate::batch::BatchPlant::admit_lane`]): new power parameters,
    /// freshly anchored leakage models, every node at the new initial
    /// temperature; all other lanes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn admit_lane(&mut self, lane: usize, params: PlantPowerParams) {
        assert!(lane < self.lanes, "lane index out of bounds");
        let big = scaled(LeakageParams::exynos5410_big(), params.leakage_mismatch);
        let little = scaled(LeakageParams::exynos5410_little(), params.leakage_mismatch);
        let gpu = scaled(LeakageParams::exynos5410_gpu(), params.leakage_mismatch);
        for row in 0..4 {
            self.leak.set_model(row, lane, &big, params.initial_temp_c);
        }
        self.leak.set_model(4, lane, &little, params.initial_temp_c);
        self.leak.set_model(5, lane, &gpu, params.initial_temp_c);
        for node in 0..self.delta.rows() {
            self.baseline[node * self.lanes + lane] = params.initial_temp_c;
            self.delta.set(node, lane, 0.0);
        }
        // The lane's drive no longer matches its baseline: force a
        // rebaseline on the next interval. The setup cache keys on
        // `(state, demand)` with `params` fixed, so admission invalidates it.
        self.drive_keys[lane] = (u64::MAX, u64::MAX);
        self.setup_cache[lane] = None;
        self.params[lane] = params;
    }

    /// Looks up (or builds in f64, demotes and caches) the transition for
    /// one (fan boost, ambient) key.
    fn ensure_transition(&mut self, boost_w_per_k: f64, ambient_c: f64) -> Result<usize, SimError> {
        let key = (boost_w_per_k.to_bits(), ambient_c.to_bits());
        if let Some(found) = self
            .transitions
            .iter()
            .position(|t| (t.fan_bits, t.ambient_bits) == key)
        {
            return Ok(found);
        }
        let boost = self.thermal.fan_boost(boost_w_per_k);
        let full =
            self.thermal
                .network()
                .batch_step_transition(boost, ambient_c, self.plant_dt_s)?;
        let demoted = BatchStepTransitionF32::from_f64(&full);
        self.transitions.push(TransitionEntry {
            fan_bits: key.0,
            ambient_bits: key.1,
            full,
            demoted,
        });
        Ok(self.transitions.len() - 1)
    }

    /// Writes lane `lane`'s per-node power linearisation `P = base + coef·I`
    /// for one control interval: the coefficients are computed in f64 exactly
    /// as by the f64 batch and demoted here, once per interval.
    fn fill_lane_linearisation(&mut self, lane: usize, ops: &IntervalOps, online_mask: &[bool; 4]) {
        let params = &self.params[lane];
        let core_nodes = self.thermal.big_core_nodes();
        let mut slot = 0;
        for (core, node) in core_nodes.iter().enumerate() {
            let (b, k) = if ops.active_is_big {
                if online_mask[core] {
                    let dynamic = ops.slot_dynamic[slot];
                    slot += 1;
                    (dynamic + ops.uncore_share, ops.volts * 0.25)
                } else {
                    (0.0, ops.volts * 0.25 * params.gated_leakage_fraction)
                }
            } else {
                (0.0, ops.idle_volts * 0.25 * params.gated_leakage_fraction)
            };
            self.base.set(node.0, lane, b as f32);
            self.coef.set(node.0, lane, k as f32);
        }
        let little = self.thermal.little_node().0;
        if ops.active_is_big {
            self.base.set(little, lane, 0.0);
            self.coef.set(
                little,
                lane,
                (ops.idle_volts * params.gated_leakage_fraction) as f32,
            );
        } else {
            self.base.set(little, lane, ops.little_base as f32);
            self.coef.set(little, lane, ops.volts as f32);
        }
        let gpu = self.thermal.gpu_node().0;
        self.base.set(gpu, lane, ops.gpu_dynamic as f32);
        self.coef.set(gpu, lane, ops.gpu_volts as f32);
        let memory = self.thermal.memory_node().0;
        self.base.set(memory, lane, ops.mem_power as f32);
        self.coef.set(memory, lane, 0.0);
        let case = self.thermal.case_node().0;
        self.base.set(case, lane, 0.0);
        self.coef.set(case, lane, 0.0);
    }

    /// Zeroes lane `lane`'s power injection (failed interval setup).
    fn zero_lane(&mut self, lane: usize) {
        for node in 0..self.base.rows() {
            self.base.set(node, lane, 0.0);
            self.coef.set(node, lane, 0.0);
        }
    }

    /// Advances every lane by one control interval (allocating convenience
    /// wrapper over [`MixedBatchPlant::step_interval_into`]).
    ///
    /// # Errors
    ///
    /// See [`MixedBatchPlant::step_interval_into`].
    pub fn step_interval(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
    ) -> Result<Vec<Result<PlantStep, SimError>>, SimError> {
        let mut steps = Vec::with_capacity(self.lanes);
        self.step_interval_into(inputs, interval_s, &mut steps)?;
        Ok(steps)
    }

    /// Advances every lane by one control interval with per-lane inputs held
    /// constant, replacing `steps` with one [`PlantStep`] result per lane —
    /// the same contract as
    /// [`crate::batch::BatchPlant::step_interval_into`], at f32 panel width.
    ///
    /// # Errors
    ///
    /// Returns a batch-level error only for malformed calls: a lane-input
    /// count that does not match [`MixedBatchPlant::lanes`] or a
    /// non-positive interval. `steps` is left empty in that case.
    pub fn step_interval_into(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
        steps: &mut Vec<Result<PlantStep, SimError>>,
    ) -> Result<(), SimError> {
        steps.clear();
        if inputs.len() != self.lanes {
            return Err(SimError::InvalidConfig(
                "lane input count must match the batch width",
            ));
        }
        if !(interval_s > 0.0) {
            return Err(SimError::InvalidConfig("control interval must be positive"));
        }
        let micro_steps = (interval_s / self.plant_dt_s).round().max(1.0) as usize;

        // Bounded exactly like the f64 batch: eviction is only safe between
        // intervals, while `lane_transition` holds no live indices.
        if self.transitions.len() >= 32 {
            self.transitions.clear();
        }

        // Per-lane interval setup in f64: power linearisation + transition
        // key (demoted on store). The linearisation, uncore orphan and
        // throughput are pure functions of `(spec, params, state, demand)`,
        // so a lane whose inputs repeat the previous computation keeps the
        // stored coefficients untouched — in sweep steady state this skips
        // the whole f64 setup per lane.
        let mut lane_errors: Vec<Option<SimError>> = Vec::with_capacity(self.lanes);
        for (lane, input) in inputs.iter().enumerate() {
            let cached = self.setup_cache[lane]
                .as_ref()
                .is_some_and(|(s, d)| s == input.state && d == input.demand);
            if cached {
                lane_errors.push(None);
            } else {
                let (online_buf, online_mask, online_count) =
                    online_cores(input.state, input.state.active_cluster);
                let ops = compute_interval_ops(
                    &self.spec,
                    &self.params[lane],
                    input.state,
                    input.demand,
                    &online_buf[..online_count],
                );
                match ops {
                    Ok(ops) => {
                        self.fill_lane_linearisation(lane, &ops, &online_mask);
                        self.uncore_orphan_w[lane] = if ops.active_is_big && online_count == 0 {
                            ops.uncore
                        } else {
                            0.0
                        };
                        self.throughput_cache[lane] =
                            throughput_units_per_s(&self.spec, input.state, input.demand);
                        self.setup_cache[lane] = Some((input.state.clone(), *input.demand));
                        lane_errors.push(None);
                    }
                    Err(e) => {
                        self.zero_lane(lane);
                        self.uncore_orphan_w[lane] = 0.0;
                        self.setup_cache[lane] = None;
                        lane_errors.push(Some(e));
                    }
                }
            }
            let boost = self.spec.fan().conductance_boost_w_per_k(input.fan_level);
            let index = self.ensure_transition(boost, input.ambient_c)?;
            self.lane_transition[lane] = index;
        }
        let uniform = self
            .lane_transition
            .iter()
            .all(|&i| i == self.lane_transition[0]);
        self.prefill_constant_power_rows();

        // Rebaseline when any lane's transition key changed (fan / ambient /
        // admission) or the amortisation horizon ran out: fold the f32
        // deviations back into the f64 baseline, demote the new `T0` for the
        // leakage reads and recompute the constant delta drive `(R − I)·T0`
        // from each lane's *undemoted* transition — all in f64, so the
        // micro-step rounding only ever touches increment-sized values.
        let keys_current =
            self.lane_transition
                .iter()
                .zip(&self.drive_keys)
                .all(|(&index, &key)| {
                    let t = &self.transitions[index];
                    (t.fan_bits, t.ambient_bits) == key
                });
        if !keys_current || self.intervals_since_rebaseline >= REBASELINE_INTERVALS {
            self.rebaseline(uniform);
        }
        self.intervals_since_rebaseline += 1;

        self.accum.fill(0.0);
        for _ in 0..micro_steps {
            self.micro_step(uniform);
        }

        // Constant-power rows (no leakage source) hold the same injection
        // for the whole interval, so their contribution to the per-domain
        // sums is `micro_steps × P` — added once here instead of every
        // micro-step.
        {
            let MixedBatchPlant {
                powers,
                accum,
                node_domain,
                node_leak_row,
                ..
            } = &mut *self;
            let k = micro_steps as f64;
            for (node, &dom) in node_domain.iter().enumerate() {
                if dom == usize::MAX || node_leak_row[node] != usize::MAX {
                    continue;
                }
                let p = powers.row(node);
                for (a, &v) in accum.row_mut(dom).iter_mut().zip(p) {
                    *a += k * f64::from(v);
                }
            }
        }

        let scale = 1.0 / micro_steps as f64;
        steps.extend(inputs.iter().enumerate().map(|(lane, input)| {
            if let Some(e) = lane_errors[lane].take() {
                return Err(e);
            }
            let domain_power = DomainPower::new(
                self.accum.get(0, lane) * scale + self.uncore_orphan_w[lane],
                self.accum.get(1, lane) * scale,
                self.accum.get(2, lane) * scale,
                self.accum.get(3, lane) * scale,
            );
            let fan_power = self.spec.fan().power_w(input.fan_level);
            let platform_power_w =
                domain_power.total() + self.params[lane].board_base_w + fan_power;
            let work_done = self.throughput_cache[lane] * interval_s;
            Ok(PlantStep {
                domain_power,
                core_temps_c: self.core_temps_c(lane),
                platform_power_w,
                work_done,
            })
        }));
        Ok(())
    }

    /// Folds the accumulated f32 deviation into the f64 baseline, demotes
    /// the new baseline for the leakage reads and recomputes each lane's
    /// `c + (R − I)·T0` delta drive in exact f64. Runs at most once every
    /// [`REBASELINE_INTERVALS`] control intervals (earlier when a lane's
    /// transition key changes or a lane is admitted).
    fn rebaseline(&mut self, uniform: bool) {
        let n = self.delta.rows();
        let lanes = self.lanes;

        // Fold `x` into `T0` and zero the deviation panel; both rows are
        // contiguous lane spans, so the promote-and-add vectorises.
        for node in 0..n {
            let row = self.delta.row_mut(node);
            let base = &mut self.baseline[node * lanes..(node + 1) * lanes];
            for (b, x) in base.iter_mut().zip(row.iter_mut()) {
                *b += f64::from(*x);
                *x = 0.0;
            }
        }

        let MixedBatchPlant {
            baseline,
            baseline_f32,
            drive,
            drive_scratch,
            transitions,
            lane_transition,
            ..
        } = self;
        if uniform {
            // One transition for every lane: compute the drive row-by-row as
            // a lane-contiguous f64 mat-vec,
            // `drive_i = c_i + Σ_j r_ij · T0_j − T0_i` (the transition's own
            // ambient drive `c` folded in, so the micro-step's bias panel
            // carries the whole constant term), then demote the drive and
            // the baseline in full-row passes.
            let full = &transitions[lane_transition[0]].full;
            let r = full.r().as_slice();
            let amb = full.ambient_drive();
            for node in 0..n {
                let acc = &mut drive_scratch[..lanes];
                for (a, &t) in acc.iter_mut().zip(&baseline[node * lanes..]) {
                    *a = amb[node] - t;
                }
                for (j, &rij) in r[node * n..(node + 1) * n].iter().enumerate() {
                    let src = &baseline[j * lanes..(j + 1) * lanes];
                    for (a, &t) in acc.iter_mut().zip(src) {
                        *a += rij * t;
                    }
                }
                for (slot, &a) in drive.row_mut(node).iter_mut().zip(acc.iter()) {
                    *slot = a as f32;
                }
                let t0 = &baseline[node * lanes..(node + 1) * lanes];
                for (slot, &t) in baseline_f32.row_mut(node).iter_mut().zip(t0) {
                    *slot = t as f32;
                }
            }
        } else {
            for lane in 0..lanes {
                let full = &transitions[lane_transition[lane]].full;
                let r = full.r().as_slice();
                let amb = full.ambient_drive();
                for node in 0..n {
                    let t0 = baseline[node * lanes + lane];
                    baseline_f32.set(node, lane, t0 as f32);
                    let mut acc = amb[node] - t0;
                    for (j, rij) in r[node * n..(node + 1) * n].iter().enumerate() {
                        acc += rij * baseline[j * lanes + lane];
                    }
                    drive.set(node, lane, acc as f32);
                }
            }
        }

        for (key, &index) in self.drive_keys.iter_mut().zip(&self.lane_transition) {
            let t = &self.transitions[index];
            *key = (t.fan_bits, t.ambient_bits);
        }
        self.intervals_since_rebaseline = 0;
    }

    /// Fills the power rows of nodes without a leakage source once per
    /// interval.
    fn prefill_constant_power_rows(&mut self) {
        for node in 0..self.powers.rows() {
            if self.node_leak_row[node] == usize::MAX {
                let MixedBatchPlant { powers, base, .. } = self;
                powers.row_mut(node).copy_from_slice(base.row(node));
            }
        }
    }

    /// One batched f32 micro-step: leakage currents, node-power assembly,
    /// f64 domain accumulation and the panel transition. Allocation-free.
    fn micro_step(&mut self, uniform: bool) {
        let lanes = self.lanes;
        let MixedBatchPlant {
            baseline_f32,
            delta,
            drive,
            powers,
            step_tmp,
            base,
            coef,
            leak,
            currents,
            leak_temps,
            accum,
            leak_temp_rows,
            node_leak_row,
            node_domain,
            aligned_leak_rows,
            transitions,
            lane_transition,
            steps_since_anchor,
            col_scratch,
            ..
        } = self;

        // Leakage currents at absolute temperatures `T ≈ f32(T0) + x`. On
        // anchor steps the relevant node rows are gathered into one
        // contiguous panel (the f64 re-anchor wants a materialised view);
        // every other step fuses the gather into the currents evaluation, so
        // the intermediate temperature panel is never written or re-read.
        // Both paths reconstruct `T` with the same single f32 add, so the
        // currents are bit-identical either way.
        if *steps_since_anchor == 0 {
            for (row, &temp_row) in leak_temp_rows.iter().enumerate() {
                let dst = leak_temps.row_mut(row);
                let t0 = &baseline_f32.row(temp_row)[..dst.len()];
                let x = &delta.row(temp_row)[..dst.len()];
                for (slot, i) in dst.iter_mut().zip(0..) {
                    *slot = t0[i] + x[i];
                }
            }
            leak.anchor_all(leak_temps.as_slice());
            leak.currents_into(leak_temps.as_slice(), currents.as_mut_slice());
        } else {
            leak.currents_into_gathered(
                baseline_f32.as_slice(),
                delta.as_slice(),
                lanes,
                &leak_temp_rows[..],
                currents.as_mut_slice(),
            );
        }
        *steps_since_anchor = (*steps_since_anchor + 1) % LeakagePanelF32::REANCHOR_STEPS;

        // Node power assembly: P = base + coef · I(src), at f32 width.
        if *aligned_leak_rows {
            let span = LEAK_ROWS * lanes;
            numeric::simd::fused_mul_add_span_elem(
                &base.as_slice()[..span],
                &coef.as_slice()[..span],
                &currents.as_slice()[..span],
                &mut powers.as_mut_slice()[..span],
            );
        } else {
            for (node, &src) in node_leak_row.iter().enumerate() {
                if src == usize::MAX {
                    continue;
                }
                numeric::simd::fused_mul_add_span_elem(
                    base.row(node),
                    coef.row(node),
                    currents.row(src),
                    powers.row_mut(node),
                );
            }
        }

        // Per-domain power accumulation: each f32 node power is promoted to
        // f64 before summing, so the interval averages never accumulate f32
        // rounding. Only leakage-backed rows change within the interval —
        // constant rows are folded in once per interval by the caller.
        for (node, &dom) in node_domain.iter().enumerate() {
            if dom == usize::MAX || node_leak_row[node] == usize::MAX {
                continue;
            }
            let p = &powers.row(node)[..lanes];
            for (a, &v) in accum.row_mut(dom).iter_mut().zip(p) {
                *a += f64::from(v);
            }
        }

        // Advance the deviation panel at f32 width: one blocked mat-mat when
        // every lane shares the transition, the bit-identical strided
        // fallback otherwise. The drive panel carries the whole constant
        // term `c + (R − I)·T0` per lane and rides in as the kernel's bias
        // (an accumulator-init vector load), so
        // `x⁺ = R·x + S·p + c + (R − I)·T0` completes in the single apply
        // pass.
        if uniform {
            let transition = &transitions[lane_transition[0]].demoted;
            transition.apply_panel_bias(delta, powers, drive, step_tmp);
        } else {
            for lane in 0..lanes {
                let transition = &transitions[lane_transition[lane]].demoted;
                transition.apply_lane_bias(delta, powers, drive, lane, col_scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPlant;
    use soc_model::{FanLevel, PlatformState};
    use workload::Demand;

    fn demand() -> Demand {
        Demand {
            cpu_streams: 3.0,
            activity_factor: 0.85,
            gpu_utilization: 0.3,
            memory_intensity: 0.5,
            frequency_scalability: 0.9,
        }
    }

    #[test]
    fn mixed_batch_tracks_f64_batch_within_budget() {
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut full = BatchPlant::new(spec.clone(), &[params, params]);
        let mut mixed = MixedBatchPlant::new(spec.clone(), &[params, params]);
        assert_eq!(mixed.lanes(), 2);
        assert_eq!(mixed.node_count(), full.node_count());
        let state = PlatformState::default_for(&spec);
        let d = demand();
        let inputs = [
            LaneInput {
                state: &state,
                demand: &d,
                fan_level: FanLevel::Off,
                ambient_c: 28.0,
            },
            LaneInput {
                state: &state,
                demand: &d,
                fan_level: FanLevel::Full,
                ambient_c: 31.0,
            },
        ];
        let mut worst = 0.0f64;
        for i in 0..600 {
            let full_steps = full.step_interval(&inputs, 0.1).unwrap();
            let mixed_steps = mixed.step_interval(&inputs, 0.1).unwrap();
            for lane in 0..2 {
                let a = full_steps[lane].as_ref().unwrap();
                let b = mixed_steps[lane].as_ref().unwrap();
                assert_eq!(a.work_done, b.work_done);
                let rel = ((a.platform_power_w - b.platform_power_w) / a.platform_power_w).abs();
                assert!(
                    rel < 1e-4,
                    "interval {i} lane {lane}: power rel error {rel:.3e}"
                );
            }
            for lane in 0..2 {
                for (x, y) in full.core_temps_c(lane).iter().zip(mixed.core_temps_c(lane)) {
                    worst = worst.max((x - y).abs());
                }
            }
        }
        assert!(
            worst < 1e-3,
            "worst trajectory divergence {worst:.3e} °C exceeds the budget"
        );
    }

    #[test]
    fn mixed_batch_admit_and_reject_mirror_the_f64_batch() {
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut mixed = MixedBatchPlant::new(spec.clone(), &[params, params]);
        let state = PlatformState::default_for(&spec);
        let d = demand();
        let input = LaneInput {
            state: &state,
            demand: &d,
            fan_level: FanLevel::Off,
            ambient_c: 28.0,
        };
        assert!(mixed.step_interval(&[input], 0.1).is_err());
        assert!(mixed.step_interval(&[input, input], 0.0).is_err());

        for _ in 0..30 {
            mixed.step_interval(&[input, input], 0.1).unwrap();
        }
        let untouched = mixed.core_temps_c(0);
        let fresh = PlantPowerParams {
            leakage_mismatch: 0.97,
            initial_temp_c: 38.5,
            ..PlantPowerParams::default()
        };
        mixed.admit_lane(1, fresh);
        assert_eq!(mixed.core_temps_c(1), [38.5; 4]);
        assert_eq!(mixed.core_temps_c(0), untouched);
        let mut nodes = vec![0.0; mixed.node_count()];
        mixed.node_temps_into(1, &mut nodes);
        assert!(nodes.iter().all(|&t| t == 38.5));
        // The admitted lane must step finitely straight away (fresh anchor).
        let steps = mixed.step_interval(&[input, input], 0.1).unwrap();
        assert!(steps.iter().all(Result::is_ok));
        assert!(mixed.core_temps_c(1).iter().all(|t| t.is_finite()));
    }
}

//! The coordinator↔worker message protocol: a handful of small enums
//! encoded with the [`super::codec`] field encoders inside length-prefixed
//! frames ([`super::transport::write_frame`]).
//!
//! Messages are *not* individually checksummed — the transport's framing
//! already bounds each payload, and the standalone-blob CRC discipline is
//! reserved for payloads that touch disk. A structurally malformed message
//! is a protocol error ([`crate::SimError::Io`]) and tears down the
//! connection; the coordinator treats that like any other worker death and
//! re-leases the outstanding range.

use numeric::codec::{ByteReader, ByteWriter};

use crate::calibrate::CalibrationCampaign;
use crate::campaign::SweepSpec;
use crate::error::SimError;
use crate::resilience::{CellOutcome, ResiliencePolicy};

use super::codec;

/// Everything a worker needs to execute leases against a grid: the shared
/// sweep, the calibration recipe it re-derives locally, and the execution
/// knobs the coordinator pins so every worker runs cells identically.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WorkerSetup {
    /// The campaign grid every lease indexes into.
    pub spec: SweepSpec,
    /// The calibration campaign the worker re-runs locally (cheaper to
    /// recompute than to serialise, and exactly reproducible).
    pub calibration: CalibrationCampaign,
    /// Seed for the calibration campaign's PRBS excitation.
    pub calibration_seed: u64,
    /// Worker-local shard threads per lease.
    pub threads: usize,
    /// SIMD batch lanes per thread.
    pub lanes: usize,
    /// Cell-level containment policy, identical on every worker.
    pub resilience: ResiliencePolicy,
}

/// A coordinator-to-worker message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ToWorker {
    /// Opens the session: ships the grid and execution knobs. The worker
    /// answers [`ToCoordinator::Ready`] once its calibration is derived.
    Hello(Box<WorkerSetup>),
    /// Leases cells `[start, end)` of the grid to this worker under an
    /// opaque lease id (echoed in every heartbeat and completion).
    Lease {
        lease: u64,
        start: usize,
        end: usize,
    },
    /// Ends the session; the worker exits its serve loop.
    Shutdown,
}

/// A worker-to-coordinator message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ToCoordinator {
    /// The worker derived its calibration and accepts leases.
    Ready,
    /// Liveness: `completed` cells of lease `lease` have retired so far.
    /// Sent once per retired cell (modulo the sink's delivery batching).
    Heartbeat { lease: u64, completed: usize },
    /// Lease `lease` finished; every owned cell's terminal outcome, keyed
    /// by grid index so the coordinator can dedup re-leased ranges.
    LeaseDone {
        lease: u64,
        outcomes: Vec<(usize, CellOutcome)>,
    },
}

fn malformed(what: &str) -> SimError {
    SimError::Io(format!("malformed protocol message: {what}"))
}

impl ToWorker {
    /// Serialises the message as one frame payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            ToWorker::Hello(setup) => {
                w.put_u8(0);
                codec::put_spec(&mut w, &setup.spec);
                codec::put_calibration_campaign(&mut w, &setup.calibration);
                w.put_u64(setup.calibration_seed);
                w.put_usize(setup.threads);
                w.put_usize(setup.lanes);
                codec::put_resilience(&mut w, &setup.resilience);
            }
            ToWorker::Lease { lease, start, end } => {
                w.put_u8(1);
                w.put_u64(*lease);
                w.put_usize(*start);
                w.put_usize(*end);
            }
            ToWorker::Shutdown => w.put_u8(2),
        }
        w.into_bytes()
    }

    /// Decodes one frame payload.
    pub(crate) fn decode(bytes: &[u8]) -> Result<ToWorker, SimError> {
        let mut r = ByteReader::new(bytes);
        let message = match r.take_u8().map_err(codec::codec_error)? {
            0 => ToWorker::Hello(Box::new(WorkerSetup {
                spec: codec::take_spec(&mut r)?,
                calibration: codec::take_calibration_campaign(&mut r)?,
                calibration_seed: r.take_u64().map_err(codec::codec_error)?,
                threads: r.take_usize().map_err(codec::codec_error)?,
                lanes: r.take_usize().map_err(codec::codec_error)?,
                resilience: codec::take_resilience(&mut r)?,
            })),
            1 => ToWorker::Lease {
                lease: r.take_u64().map_err(codec::codec_error)?,
                start: r.take_usize().map_err(codec::codec_error)?,
                end: r.take_usize().map_err(codec::codec_error)?,
            },
            2 => ToWorker::Shutdown,
            _ => return Err(malformed("unknown coordinator message tag")),
        };
        r.finish().map_err(codec::codec_error)?;
        Ok(message)
    }
}

impl ToCoordinator {
    /// Serialises the message as one frame payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            ToCoordinator::Ready => w.put_u8(0),
            ToCoordinator::Heartbeat { lease, completed } => {
                w.put_u8(1);
                w.put_u64(*lease);
                w.put_usize(*completed);
            }
            ToCoordinator::LeaseDone { lease, outcomes } => {
                w.put_u8(2);
                w.put_u64(*lease);
                w.put_usize(outcomes.len());
                for (index, outcome) in outcomes {
                    w.put_usize(*index);
                    codec::put_outcome(&mut w, outcome);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes one frame payload.
    pub(crate) fn decode(bytes: &[u8]) -> Result<ToCoordinator, SimError> {
        let mut r = ByteReader::new(bytes);
        let message = match r.take_u8().map_err(codec::codec_error)? {
            0 => ToCoordinator::Ready,
            1 => ToCoordinator::Heartbeat {
                lease: r.take_u64().map_err(codec::codec_error)?,
                completed: r.take_usize().map_err(codec::codec_error)?,
            },
            2 => {
                let lease = r.take_u64().map_err(codec::codec_error)?;
                let count = r.take_usize().map_err(codec::codec_error)?;
                let mut outcomes = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let index = r.take_usize().map_err(codec::codec_error)?;
                    outcomes.push((index, codec::take_outcome(&mut r)?));
                }
                ToCoordinator::LeaseDone { lease, outcomes }
            }
            _ => return Err(malformed("unknown worker message tag")),
        };
        r.finish().map_err(codec::codec_error)?;
        Ok(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentKind;
    use crate::resilience::{CellFailure, CellStats};
    use workload::BenchmarkId;

    #[test]
    fn messages_round_trip() {
        let setup = WorkerSetup {
            spec: SweepSpec::new(
                vec![ExperimentKind::Dtpm],
                vec![BenchmarkId::Crc32, BenchmarkId::Fft],
            )
            .with_replicates(2)
            .with_campaign_seed(7),
            calibration: CalibrationCampaign {
                prbs_duration_s: 120.0,
                run_furnace: false,
                ..Default::default()
            },
            calibration_seed: 37,
            threads: 2,
            lanes: 4,
            resilience: ResiliencePolicy::default().with_max_retries(1),
        };
        for message in [
            ToWorker::Hello(Box::new(setup)),
            ToWorker::Lease {
                lease: 9,
                start: 1,
                end: 3,
            },
            ToWorker::Shutdown,
        ] {
            assert_eq!(ToWorker::decode(&message.encode()).expect("ok"), message);
        }
        let outcomes = vec![
            (
                0,
                CellOutcome::Completed(CellStats {
                    completed: true,
                    execution_time_s: 4.0,
                    intervals: 40,
                    energy_j: 16.0,
                    mean_platform_power_w: 4.0,
                    mean_temp_c: 51.0,
                    peak_temp_c: 58.0,
                    intervention_rate: 0.0,
                    escalations: 0,
                    sensor_faults: 0,
                    shut_down: false,
                }),
            ),
            (
                1,
                CellOutcome::Failed(CellFailure {
                    index: 1,
                    error: "cell panicked (contained): chaos".to_owned(),
                }),
            ),
        ];
        for message in [
            ToCoordinator::Ready,
            ToCoordinator::Heartbeat {
                lease: 9,
                completed: 2,
            },
            ToCoordinator::LeaseDone { lease: 9, outcomes },
        ] {
            assert_eq!(
                ToCoordinator::decode(&message.encode()).expect("ok"),
                message
            );
        }
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(ToWorker::decode(&[]).is_err());
        assert!(ToWorker::decode(&[99]).is_err());
        assert!(ToCoordinator::decode(&[99]).is_err());
        // Trailing bytes after a well-formed message are a protocol error.
        let mut frame = ToCoordinator::Ready.encode();
        frame.push(0);
        assert!(ToCoordinator::decode(&frame).is_err());
    }
}

//! The worker side of distributed campaigns: a serve loop that re-derives
//! its calibration from the shipped recipe, executes leased cell ranges
//! with the ordinary in-process machinery
//! ([`crate::CampaignRunner::run_indices_into`]), and streams per-cell
//! outcomes back over the transport.
//!
//! The loop is deliberately stateless between leases: every cell's seed and
//! configuration derive from the shared [`crate::SweepSpec`], so a worker
//! that dies mid-lease loses nothing the coordinator cannot re-lease to a
//! peer — and because the per-cell bits are transport-independent, the
//! re-run produces the identical outcome.
//!
//! [`WorkerChaos`] exists for the chaos tests and the straggler bench: it
//! makes a worker die or stall after a configurable number of retired
//! cells, exercising the coordinator's re-lease and dedup paths with real
//! transports.

use std::io::Write;
use std::thread;
use std::time::Duration;

use crate::error::SimError;
use crate::experiment::{ResultSink, RunReport};
use crate::resilience::CellOutcome;

use super::protocol::{ToCoordinator, ToWorker, WorkerSetup};
use super::transport::{read_frame, write_frame, Transport};

/// Fault injection for the worker itself (as opposed to the simulated
/// sensors): controlled death and stalling, counted over the worker's whole
/// lifetime, for exercising lease recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerChaos {
    /// Die silently (drop the transport without a goodbye) once this many
    /// cells have been delivered. `Some(0)` dies on the first retirement.
    pub die_after_cells: Option<usize>,
    /// Sleep [`WorkerChaos::stall_for`] once, just before delivering the
    /// cell that crosses this count — long enough and the coordinator
    /// re-leases the range, then dedups the late completion.
    pub stall_after_cells: Option<usize>,
    /// How long the one-shot stall sleeps.
    pub stall_for: Duration,
}

/// Options for [`serve_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOptions {
    /// Worker-level fault injection; default is none.
    pub chaos: WorkerChaos,
}

/// Lifetime chaos bookkeeping: cells retired across all leases.
#[derive(Debug)]
struct ChaosState {
    plan: WorkerChaos,
    delivered: usize,
    stalled: bool,
    dead: bool,
}

impl ChaosState {
    fn new(plan: WorkerChaos) -> ChaosState {
        ChaosState {
            plan,
            delivered: 0,
            stalled: false,
            dead: false,
        }
    }

    /// Called per retiring cell, before delivery; returns whether the cell
    /// (and everything after it) should be swallowed.
    fn on_retire(&mut self) -> bool {
        if let Some(limit) = self.plan.die_after_cells {
            if self.delivered >= limit {
                self.dead = true;
            }
        }
        if self.dead {
            return true;
        }
        if let Some(limit) = self.plan.stall_after_cells {
            if self.delivered >= limit && !self.stalled {
                self.stalled = true;
                thread::sleep(self.plan.stall_for);
            }
        }
        self.delivered += 1;
        false
    }
}

/// The [`ResultSink`] a worker drives one lease through: collects per-cell
/// outcomes for the final [`ToCoordinator::LeaseDone`] and emits a
/// heartbeat per retired cell so the coordinator can tell a slow lease from
/// a dead worker. Heartbeats ride the sink's delivery batching (up to a
/// handful of cells per flush) — lease timeouts must allow for that slack.
struct LeaseSink<'a> {
    lease: u64,
    writer: &'a mut (dyn Write + Send),
    chaos: &'a mut ChaosState,
    outcomes: Vec<(usize, CellOutcome)>,
    io_error: Option<std::io::Error>,
}

impl ResultSink for LeaseSink<'_> {
    fn accept(&mut self, index: usize, outcome: Result<RunReport, SimError>) {
        let outcome = CellOutcome::from_run(index, outcome);
        if self.chaos.on_retire() || self.io_error.is_some() {
            return;
        }
        self.outcomes.push((index, outcome));
        let heartbeat = ToCoordinator::Heartbeat {
            lease: self.lease,
            completed: self.outcomes.len(),
        };
        if let Err(e) = write_frame(self.writer, &heartbeat.encode()) {
            self.io_error = Some(e);
        }
    }
}

/// Serves leases over `transport` until the coordinator says
/// `Shutdown` or closes the connection. This is the whole
/// worker: the `dtpm-worker` binary is a thin argument parser around it.
///
/// # Errors
///
/// Returns [`SimError::Io`] on transport or protocol failures and
/// propagates calibration errors from the shipped recipe.
pub fn serve(transport: Box<dyn Transport>) -> Result<(), SimError> {
    serve_with(transport, WorkerOptions::default())
}

/// [`serve`] with options (chaos injection for tests and benches).
///
/// # Errors
///
/// As [`serve`].
pub fn serve_with(transport: Box<dyn Transport>, options: WorkerOptions) -> Result<(), SimError> {
    let (mut writer, mut reader) = transport.split()?;
    let frame = read_frame(&mut reader)?
        .ok_or_else(|| SimError::Io("transport closed before Hello".to_owned()))?;
    let setup: Box<WorkerSetup> = match ToWorker::decode(&frame)? {
        ToWorker::Hello(setup) => setup,
        other => {
            return Err(SimError::Io(format!(
                "expected Hello to open the session, got {other:?}"
            )))
        }
    };
    // Re-derive the calibration locally: the recipe is tiny on the wire and
    // the characterisation pipeline is deterministic, so every worker holds
    // the same model bits the coordinator would.
    let calibration = setup.calibration.run(setup.calibration_seed)?;
    write_frame(&mut writer, &ToCoordinator::Ready.encode())?;

    let mut chaos = ChaosState::new(options.chaos);
    loop {
        let Some(frame) = read_frame(&mut reader)? else {
            // Coordinator hung up; nothing left to do.
            return Ok(());
        };
        match ToWorker::decode(&frame)? {
            ToWorker::Lease { lease, start, end } => {
                let indices: Vec<usize> = (start..end).collect();
                let mut sink = LeaseSink {
                    lease,
                    writer: writer.as_mut(),
                    chaos: &mut chaos,
                    outcomes: Vec::with_capacity(indices.len()),
                    io_error: None,
                };
                setup
                    .spec
                    .runner()
                    .with_threads(setup.threads)
                    .with_lanes(setup.lanes)
                    .with_resilience(setup.resilience)
                    .run_indices_into(&indices, &calibration, &mut sink);
                let LeaseSink {
                    outcomes, io_error, ..
                } = sink;
                if chaos.dead {
                    // Injected death: vanish without a goodbye — dropping
                    // the transport is what the coordinator sees.
                    return Ok(());
                }
                if io_error.is_some() {
                    // The coordinator hung up mid-lease (campaign complete,
                    // or this worker was abandoned as a straggler). Not an
                    // error on this side: the session is simply over.
                    return Ok(());
                }
                let done = ToCoordinator::LeaseDone { lease, outcomes };
                if write_frame(&mut writer, &done.encode()).is_err() {
                    return Ok(());
                }
            }
            ToWorker::Shutdown => return Ok(()),
            ToWorker::Hello(_) => {
                return Err(SimError::Io("unexpected mid-session Hello".to_owned()))
            }
        }
    }
}

//! Framed byte transports between the campaign coordinator and its worker
//! processes: one [`Transport`] trait over localhost TCP, child-process
//! stdio, and an in-process byte pipe, all carrying the same
//! length-prefixed binary frames.
//!
//! The framing is deliberately minimal — a little-endian `u32` length
//! prefix and the payload, nothing else — because payload structure,
//! versioning and integrity belong to the codec layer
//! ([`super::codec`]). Frames are size-capped ([`MAX_FRAME_LEN`]) so a
//! corrupt or hostile prefix cannot trigger an unbounded allocation.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc;

/// Hard cap on a single frame's payload size (64 MiB). Campaign payloads
/// are far smaller — a lease is tens of bytes, a lease result a few KiB —
/// so anything near the cap indicates corruption, and the cap bounds what
/// a corrupt length prefix can allocate.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one length-prefixed frame (`u32` little-endian length, then the
/// payload) and flushes, so a frame is visible to the peer as soon as the
/// call returns.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidInput` if the payload
/// exceeds [`MAX_FRAME_LEN`].
pub fn write_frame(writer: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds the size cap",
        ));
    }
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean
/// end-of-stream (the peer closed between frames); end-of-stream *inside*
/// a frame is an `UnexpectedEof` error — a torn frame is never silently
/// shortened.
///
/// # Errors
///
/// Returns the underlying I/O error, `UnexpectedEof` on a torn frame, or
/// `InvalidData` if the prefix exceeds [`MAX_FRAME_LEN`].
pub fn read_frame(reader: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "frame length prefix torn by end of stream",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix exceeds the size cap",
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A bidirectional byte channel to one peer, splittable into independently
/// owned write and read halves (the coordinator reads each worker from a
/// dedicated pump thread while its driver thread writes leases).
pub trait Transport: Send {
    /// A short human-readable peer label for diagnostics.
    fn label(&self) -> String;

    /// Splits the transport into its write and read halves. Dropping the
    /// write half signals end-of-stream to the peer where the medium
    /// supports it (pipes, child stdin); for TCP both halves share one
    /// socket and the stream closes when both are dropped.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (e.g. a failed socket clone).
    fn split(self: Box<Self>) -> io::Result<(Box<dyn Write + Send>, Box<dyn Read + Send>)>;
}

/// A [`Transport`] over a TCP stream — the cross-host wiring. The stream is
/// set to `TCP_NODELAY` (frames are small and latency-sensitive).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Connects to a listening peer (the worker side of a TCP wiring, or
    /// the coordinator connecting to pre-started workers).
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        TcpTransport::from_stream(TcpStream::connect(addr)?)
    }

    /// Wraps an accepted or connected stream.
    ///
    /// # Errors
    ///
    /// Returns the error from configuring the socket.
    pub fn from_stream(stream: TcpStream) -> io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_owned());
        Ok(TcpTransport {
            stream,
            peer: format!("tcp:{peer}"),
        })
    }
}

impl Transport for TcpTransport {
    fn label(&self) -> String {
        self.peer.clone()
    }

    fn split(self: Box<Self>) -> io::Result<(Box<dyn Write + Send>, Box<dyn Read + Send>)> {
        let reader = self.stream.try_clone()?;
        Ok((Box::new(self.stream), Box::new(reader)))
    }
}

/// A [`Transport`] over a spawned child process's stdio — the coordinator
/// side of the `dtpm-worker` subprocess wiring. The read half owns the
/// [`Child`]: when it is dropped (the pump thread exits on end-of-stream)
/// the child is killed if still running and always reaped, so no worker
/// outlives its coordinator as a zombie.
#[derive(Debug)]
pub struct ChildTransport {
    child: Child,
    label: String,
}

impl ChildTransport {
    /// Spawns `command` with piped stdin/stdout (stderr is inherited, so
    /// worker diagnostics reach the coordinator's terminal) and wraps the
    /// pipes as a transport.
    ///
    /// # Errors
    ///
    /// Returns the spawn error.
    pub fn spawn(command: &mut Command) -> io::Result<ChildTransport> {
        let child = command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let label = format!("child:{}", child.id());
        Ok(ChildTransport { child, label })
    }
}

/// The read half of a [`ChildTransport`]: reads the child's stdout and
/// owns the child's lifecycle.
#[derive(Debug)]
struct ChildReader {
    stdout: ChildStdout,
    child: Child,
}

impl Read for ChildReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stdout.read(buf)
    }
}

impl Drop for ChildReader {
    fn drop(&mut self) {
        // Kill is best-effort (the child has usually exited already —
        // dropping the write half closed its stdin); wait always reaps.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Transport for ChildTransport {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn split(mut self: Box<Self>) -> io::Result<(Box<dyn Write + Send>, Box<dyn Read + Send>)> {
        let stdin: ChildStdin = self
            .child
            .stdin
            .take()
            .ok_or_else(|| io::Error::other("child stdin was not piped"))?;
        let stdout: ChildStdout = self
            .child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("child stdout was not piped"))?;
        Ok((
            Box::new(stdin),
            Box::new(ChildReader {
                stdout,
                child: self.child,
            }),
        ))
    }
}

/// A [`Transport`] over this process's own stdin/stdout — the worker side
/// of the subprocess wiring (`dtpm-worker` run as a child of a
/// coordinator).
#[derive(Debug, Default)]
pub struct StdioTransport;

impl StdioTransport {
    /// The process-stdio transport.
    pub fn new() -> StdioTransport {
        StdioTransport
    }
}

impl Transport for StdioTransport {
    fn label(&self) -> String {
        "stdio".to_owned()
    }

    fn split(self: Box<Self>) -> io::Result<(Box<dyn Write + Send>, Box<dyn Read + Send>)> {
        Ok((Box::new(io::stdout()), Box::new(io::stdin())))
    }
}

/// The write half of a [`MemoryTransport`]: each `write` ships its bytes
/// as one message on the channel.
#[derive(Debug)]
struct PipeWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer pipe closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The read half of a [`MemoryTransport`]: a byte stream over the
/// channel's message chunks (a sender hang-up is a clean end-of-stream).
#[derive(Debug)]
struct PipeReader {
    rx: mpsc::Receiver<Vec<u8>>,
    chunk: Vec<u8>,
    pos: usize,
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos >= self.chunk.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.chunk = chunk;
                    self.pos = 0;
                }
                Err(mpsc::RecvError) => return Ok(0),
            }
        }
        let n = (self.chunk.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.chunk[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// An in-process [`Transport`]: a pair of byte pipes over `mpsc` channels.
/// The test and bench wiring — a "worker process" is then just a thread
/// running [`super::worker::serve`], with exactly the frame/codec path of
/// the real transports and none of the process management.
#[derive(Debug)]
pub struct MemoryTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    label: String,
}

impl MemoryTransport {
    /// A connected pair of endpoints: whatever one writes, the other reads.
    /// Dropping either endpoint's write half ends the other's read stream.
    pub fn pair() -> (MemoryTransport, MemoryTransport) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (
            MemoryTransport {
                tx: a_tx,
                rx: a_rx,
                label: "memory:a".to_owned(),
            },
            MemoryTransport {
                tx: b_tx,
                rx: b_rx,
                label: "memory:b".to_owned(),
            },
        )
    }
}

impl Transport for MemoryTransport {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn split(self: Box<Self>) -> io::Result<(Box<dyn Write + Send>, Box<dyn Read + Send>)> {
        Ok((
            Box::new(PipeWriter { tx: self.tx }),
            Box::new(PipeReader {
                rx: self.rx,
                chunk: Vec::new(),
                pos: 0,
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_memory_pair() {
        let (a, b) = MemoryTransport::pair();
        let (mut a_tx, mut a_rx) = Box::new(a).split().expect("split");
        let (mut b_tx, mut b_rx) = Box::new(b).split().expect("split");
        write_frame(&mut a_tx, b"hello").expect("write");
        write_frame(&mut a_tx, &[]).expect("empty frame");
        assert_eq!(
            read_frame(&mut b_rx).expect("read"),
            Some(b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut b_rx).expect("read"), Some(Vec::new()));
        write_frame(&mut b_tx, &[7u8; 1000]).expect("write back");
        assert_eq!(read_frame(&mut a_rx).expect("read"), Some(vec![7u8; 1000]));
        // Dropping the write half is a clean end-of-stream for the peer.
        drop(a_tx);
        assert_eq!(read_frame(&mut b_rx).expect("eof"), None);
    }

    #[test]
    fn torn_and_oversized_frames_are_rejected() {
        // A torn length prefix.
        let mut short: &[u8] = &[1, 0];
        assert_eq!(
            read_frame(&mut short).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // A torn payload.
        let mut torn: &[u8] = &[5, 0, 0, 0, b'a', b'b'];
        assert_eq!(
            read_frame(&mut torn).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // A prefix past the cap never allocates.
        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        let mut huge: &[u8] = &huge;
        assert_eq!(
            read_frame(&mut huge).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Clean EOF between frames is None, not an error.
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).expect("clean eof"), None);
        // Writer-side cap.
        let mut sink = Vec::new();
        let oversized = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut sink, &oversized).is_err());
    }

    #[test]
    fn tcp_transport_round_trips_on_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let transport = TcpTransport::from_stream(stream).expect("wrap");
            let (mut tx, mut rx) = Box::new(transport).split().expect("split");
            let frame = read_frame(&mut rx).expect("read").expect("frame");
            write_frame(&mut tx, &frame).expect("echo");
        });
        let client = TcpTransport::connect(addr).expect("connect");
        assert!(client.label().starts_with("tcp:"));
        let (mut tx, mut rx) = Box::new(client).split().expect("split");
        write_frame(&mut tx, b"ping").expect("write");
        assert_eq!(read_frame(&mut rx).expect("read"), Some(b"ping".to_vec()));
        server.join().expect("server thread");
    }
}

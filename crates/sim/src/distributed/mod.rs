//! Distributed campaign execution: worker processes, binary shard
//! transport, and straggler-proof micro-shard leasing.
//!
//! PR 9's resilience layer built the in-process half of sharded campaigns —
//! [`crate::resilience::ShardSpec`] slices, the order-independent
//! [`MergeSink`](crate::resilience::MergeSink) fold, checkpoint wire
//! encoding. This module adds the
//! missing half the ROADMAP's "sharded campaigns across processes/hosts"
//! item names: a real transport that ships work out to worker *processes*
//! and folds result blobs back deterministically.
//!
//! # Architecture
//!
//! ```text
//!  Coordinator (this process)                Worker process (×N)
//!  ───────────────────────────              ─────────────────────
//!  SweepSpec + lease queue    ── Hello ──►  re-derive Calibration
//!  one driver thread / worker ◄─ Ready ──   from shipped seed
//!         │
//!         ├─────────────────── Lease ────►  run_indices_into(...)
//!         │                 ◄─ Heartbeat ─  (one per retired cell)
//!   fold dedup ◄──────────── LeaseDone ──   per-cell outcomes
//!         │
//!         └───────────────── Shutdown ───►  exit
//! ```
//!
//! * **One [`Transport`] trait, three wirings.** Localhost TCP
//!   ([`TcpTransport`]), child-process stdio ([`ChildTransport`] spawning
//!   the `dtpm-worker` binary, [`StdioTransport`] inside it), and an
//!   in-process byte pipe ([`MemoryTransport`]) for tests and benches. All
//!   three carry the same length-prefixed binary frames
//!   ([`write_frame`]/[`read_frame`]).
//! * **Micro-shard leasing, not static splits.** The coordinator leases
//!   small index ranges from the remaining-cell queue as workers report in,
//!   so a slow worker naturally takes fewer cells — the shard-level
//!   analogue of the lane-compacting scheduler, and the fix for static
//!   `split`'s convoy on ragged grids. A lease whose worker misses its
//!   heartbeat deadline or dies is put back on the queue and re-leased; a
//!   worker that merely stalled and finishes late is folded through
//!   **cell-index dedup**, so a twice-landed shard counts once.
//! * **One canonical fold.** Workers return *per-cell* outcomes, and the
//!   coordinator offers them to a single
//!   [`MergeSink`](crate::resilience::MergeSink) over the whole grid
//!   — the identical canonical-order fold an in-process run uses — so the
//!   distributed aggregate is bit-identical to the single-process one, no
//!   matter which worker ran which cell, how leases interleaved, or how
//!   many re-leases a straggler caused (proven by the chaos proptests in
//!   `tests/distributed.rs`).
//! * **Binary payloads** ([`codec`]): shard/result/checkpoint payloads
//!   travel as compact little-endian binary (floats as exact bit patterns,
//!   the text format's discipline) with CRC32-sealed standalone blobs —
//!   dispatch overhead is codec-bound, not text-format-bound. The PR 9 text
//!   encoding remains the human-readable checkpoint format.
//!
//! Calibration is *not* serialised: workers re-derive it from the shipped
//! [`crate::CalibrationCampaign`] parameters and seed, which is both small
//! and exactly reproducible (the characterisation pipeline is
//! deterministic).
//!
//! # Lease sizing
//!
//! [`Coordinator::with_lease_cells`] sets the cells per lease; the default
//! targets ~8 leases per worker so the tail is fine-grained without
//! drowning the wire in round trips. Shrink it toward 1 when cell runtimes
//! are wildly ragged (faster straggler recovery, more frames); grow it when
//! cells are uniform and tiny (fewer round trips). The heartbeat deadline
//! ([`Coordinator::with_lease_timeout`]) must comfortably exceed the wall
//! time of a few cells — workers heartbeat per retired cell (batched with
//! the result sink's delivery, so allow a handful of cells of slack).

pub mod codec;
pub mod coordinator;
mod protocol;
pub mod transport;
pub mod worker;

pub use codec::{
    decode_checkpoint, decode_shard, decode_sink, encode_checkpoint, encode_shard, encode_sink,
};
pub use coordinator::{Coordinator, DistributedReport, LeaseStats, WorkerPool};
pub use transport::{
    read_frame, write_frame, ChildTransport, MemoryTransport, StdioTransport, TcpTransport,
    Transport, MAX_FRAME_LEN,
};
pub use worker::{serve, serve_with, WorkerChaos, WorkerOptions};

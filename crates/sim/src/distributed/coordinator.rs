//! The coordinator side of distributed campaigns: micro-shard leasing over
//! a pool of worker transports, straggler recovery by re-lease, and the
//! single canonical fold that makes the distributed aggregate bit-identical
//! to an in-process run.
//!
//! # Leasing protocol
//!
//! The remaining-cell queue starts as the grid chopped into micro-shards of
//! [`Coordinator::with_lease_cells`] cells. Each idle worker is handed the
//! next range; a worker that retires cells heartbeats per cell, pushing its
//! deadline forward. A lease whose deadline passes is **released**: its
//! range goes back on the front of the queue (another worker picks it up
//! next) and the worker enters *suspect* state — one more silent deadline
//! window and it is abandoned for good. A suspect worker that was merely
//! stalled and completes late is welcomed back: its outcomes fold through
//! cell-level dedup (cells another worker already delivered count once) and
//! it returns to the rotation.
//!
//! Because every cell's outcome is deterministic and the fold is the
//! canonical in-order [`MergeSink`], none of this machinery can change the
//! answer — only who computes it and when. `tests/distributed.rs` proves
//! the aggregate stays bit-identical under injected deaths and stalls.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

use crate::calibrate::CalibrationCampaign;
use crate::campaign::SweepSpec;
use crate::error::SimError;
use crate::resilience::{CampaignAggregate, CellOutcome, MergeSink, ResiliencePolicy};

use super::protocol::{ToCoordinator, ToWorker, WorkerSetup};
use super::transport::{read_frame, write_frame, Transport};

/// Configures and connects a distributed campaign run. Build with
/// [`Coordinator::new`], adjust the knobs, then [`Coordinator::connect`]
/// a set of worker transports into a [`WorkerPool`].
#[derive(Debug, Clone)]
pub struct Coordinator {
    spec: SweepSpec,
    calibration: CalibrationCampaign,
    calibration_seed: u64,
    lease_cells: Option<usize>,
    lease_timeout: Duration,
    ready_timeout: Duration,
    worker_threads: usize,
    worker_lanes: usize,
    resilience: ResiliencePolicy,
}

impl Coordinator {
    /// A coordinator over `spec`'s grid with default knobs: single-threaded
    /// workers, automatic lease sizing, a 30 s heartbeat deadline, and a
    /// 300 s handshake deadline (workers re-derive their calibration during
    /// the handshake).
    pub fn new(spec: SweepSpec) -> Coordinator {
        Coordinator {
            spec,
            calibration: CalibrationCampaign::default(),
            calibration_seed: 1,
            lease_cells: None,
            lease_timeout: Duration::from_secs(30),
            ready_timeout: Duration::from_secs(300),
            worker_threads: 1,
            worker_lanes: 1,
            resilience: ResiliencePolicy::default(),
        }
    }

    /// The calibration recipe and seed every worker re-derives its model
    /// from. Must match the calibration an in-process comparison run uses,
    /// or the cells (and therefore the aggregate) legitimately differ.
    #[must_use]
    pub fn with_calibration(mut self, calibration: CalibrationCampaign, seed: u64) -> Self {
        self.calibration = calibration;
        self.calibration_seed = seed;
        self
    }

    /// Cells per micro-shard lease. Default targets ~8 leases per worker,
    /// clamped to `[1, 32]` — see the module docs on sizing.
    #[must_use]
    pub fn with_lease_cells(mut self, lease_cells: usize) -> Self {
        self.lease_cells = Some(lease_cells.max(1));
        self
    }

    /// The heartbeat deadline: a lease silent this long is released and
    /// re-queued. Workers heartbeat per retired cell (batched with sink
    /// delivery), so set this to comfortably more than a few cells' wall
    /// time.
    #[must_use]
    pub fn with_lease_timeout(mut self, lease_timeout: Duration) -> Self {
        self.lease_timeout = lease_timeout;
        self
    }

    /// The handshake deadline: how long a worker may take to answer Hello
    /// with Ready (it derives its calibration in between).
    #[must_use]
    pub fn with_ready_timeout(mut self, ready_timeout: Duration) -> Self {
        self.ready_timeout = ready_timeout;
        self
    }

    /// Shard threads each worker runs its leases with.
    #[must_use]
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads.max(1);
        self
    }

    /// SIMD batch lanes each worker runs with.
    #[must_use]
    pub fn with_worker_lanes(mut self, lanes: usize) -> Self {
        self.worker_lanes = lanes.max(1);
        self
    }

    /// The cell-level containment policy every worker applies.
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// Opens a session on every transport: ships Hello (grid, calibration
    /// recipe, execution knobs) to all workers, then waits for each Ready.
    /// Hellos go out before any Ready is awaited, so workers derive their
    /// calibrations concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty pool and
    /// [`SimError::Io`] if any worker fails the handshake — a partial pool
    /// at startup is a configuration problem, unlike a worker lost
    /// mid-campaign (which the lease loop absorbs).
    pub fn connect(self, transports: Vec<Box<dyn Transport>>) -> Result<WorkerPool, SimError> {
        if transports.is_empty() {
            return Err(SimError::InvalidConfig(
                "distributed campaign needs at least one worker transport",
            ));
        }
        let setup = WorkerSetup {
            spec: self.spec.clone(),
            calibration: self.calibration,
            calibration_seed: self.calibration_seed,
            threads: self.worker_threads,
            lanes: self.worker_lanes,
            resilience: self.resilience,
        };
        let hello = ToWorker::Hello(Box::new(setup)).encode();
        let (events_tx, events) = mpsc::channel();
        let mut workers = Vec::with_capacity(transports.len());
        for (id, transport) in transports.into_iter().enumerate() {
            let label = transport.label();
            let (mut writer, reader) = transport.split()?;
            write_frame(&mut writer, &hello)
                .map_err(|e| SimError::Io(format!("worker {label}: hello failed: {e}")))?;
            spawn_pump(id, reader, events_tx.clone());
            workers.push(WorkerState {
                label,
                writer,
                alive: true,
                ready: false,
                lease: None,
            });
        }
        drop(events_tx);

        // Collect one Ready per worker under the handshake deadline.
        let deadline = Instant::now() + self.ready_timeout;
        while workers.iter().any(|w| !w.ready) {
            let wait = deadline.saturating_duration_since(Instant::now());
            let (id, event) = events.recv_timeout(wait).map_err(|_| {
                let missing: Vec<&str> = workers
                    .iter()
                    .filter(|w| !w.ready)
                    .map(|w| w.label.as_str())
                    .collect();
                SimError::Io(format!(
                    "worker handshake timed out or channel closed; not ready: {}",
                    missing.join(", ")
                ))
            })?;
            match event {
                Event::Message(ToCoordinator::Ready) => workers[id].ready = true,
                Event::Message(other) => {
                    return Err(SimError::Io(format!(
                        "worker {}: expected Ready, got {other:?}",
                        workers[id].label
                    )))
                }
                Event::Closed => {
                    return Err(SimError::Io(format!(
                        "worker {} closed its transport during the handshake",
                        workers[id].label
                    )))
                }
                Event::Failed(e) => {
                    return Err(SimError::Io(format!(
                        "worker {} failed during the handshake: {e}",
                        workers[id].label
                    )))
                }
            }
        }

        Ok(WorkerPool {
            spec: self.spec,
            lease_cells: self.lease_cells,
            lease_timeout: self.lease_timeout,
            workers,
            events,
        })
    }
}

/// One event from a worker's pump thread.
enum Event {
    Message(ToCoordinator),
    /// Clean EOF: the worker closed its transport.
    Closed,
    /// Transport or protocol failure.
    Failed(SimError),
}

/// Reads frames off `reader` forever, decoding and forwarding to the
/// coordinator loop. Detached: exits on EOF/error, or when the receiver is
/// dropped after the campaign completes.
fn spawn_pump(
    id: usize,
    mut reader: Box<dyn std::io::Read + Send>,
    events: Sender<(usize, Event)>,
) {
    thread::spawn(move || loop {
        let event = match read_frame(&mut reader) {
            Ok(Some(frame)) => match ToCoordinator::decode(&frame) {
                Ok(message) => Event::Message(message),
                Err(e) => Event::Failed(e),
            },
            Ok(None) => Event::Closed,
            Err(e) => Event::Failed(SimError::from(e)),
        };
        let terminal = !matches!(event, Event::Message(_));
        if events.send((id, event)).is_err() || terminal {
            return;
        }
    });
}

/// An outstanding lease on one worker.
#[derive(Debug)]
struct LeaseState {
    id: u64,
    start: usize,
    end: usize,
    deadline: Instant,
    /// Missed one deadline already: released (range re-queued), one more
    /// silent window and the worker is abandoned.
    suspect: bool,
}

struct WorkerState {
    label: String,
    writer: Box<dyn Write + Send>,
    alive: bool,
    ready: bool,
    lease: Option<LeaseState>,
}

/// Telemetry from one distributed run: how the leases played out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Workers in the pool at connect time.
    pub workers: usize,
    /// Leases issued (including re-issues of released ranges).
    pub leases: usize,
    /// Leases released on a missed deadline and re-queued.
    pub releases: usize,
    /// Cells that arrived more than once (late stragglers overlapping a
    /// re-lease) and were deduplicated — folded exactly once.
    pub duplicate_cells: usize,
    /// Workers abandoned mid-campaign (death or repeated silence).
    pub lost_workers: usize,
}

/// The result of a distributed campaign: the canonical whole-grid fold and
/// the lease telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedReport {
    fold: MergeSink,
    stats: LeaseStats,
}

impl DistributedReport {
    /// The completed whole-grid merge fold — bit-identical to the
    /// [`MergeSink`] an in-process [`crate::CampaignRunner`] run over the
    /// same grid and calibration produces.
    pub fn fold(&self) -> &MergeSink {
        &self.fold
    }

    /// Consumes the report, returning the fold.
    pub fn into_fold(self) -> MergeSink {
        self.fold
    }

    /// The campaign-level aggregate statistics.
    pub fn aggregate(&self) -> &CampaignAggregate {
        self.fold.aggregate()
    }

    /// How the leases played out.
    pub fn stats(&self) -> LeaseStats {
        self.stats
    }
}

/// A connected pool of ready workers; [`WorkerPool::run`] executes the
/// campaign.
pub struct WorkerPool {
    spec: SweepSpec,
    lease_cells: Option<usize>,
    lease_timeout: Duration,
    workers: Vec<WorkerState>,
    events: Receiver<(usize, Event)>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("cells", &self.spec.cells())
            .field("lease_cells", &self.lease_cells)
            .field("lease_timeout", &self.lease_timeout)
            .field(
                "workers",
                &self.workers.iter().map(|w| &w.label).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// The micro-shard size: explicit if set, otherwise ~8 leases per
    /// worker clamped to `[1, 32]`.
    fn lease_size(&self, cells: usize) -> usize {
        self.lease_cells
            .unwrap_or_else(|| (cells / (self.workers.len() * 8)).clamp(1, 32))
    }

    /// Runs the campaign to completion: leases micro-shards, recovers from
    /// stragglers and deaths by re-leasing, folds every cell exactly once,
    /// and shuts the workers down.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] if every worker is lost before the grid
    /// completes. Individual worker losses are absorbed (counted in
    /// [`LeaseStats::lost_workers`]).
    pub fn run(mut self) -> Result<DistributedReport, SimError> {
        let cells = self.spec.cells();
        let lease_size = self.lease_size(cells.max(1));
        let mut queue: VecDeque<(usize, usize)> = (0..cells)
            .step_by(lease_size)
            .map(|start| (start, (start + lease_size).min(cells)))
            .collect();
        let mut fold = MergeSink::new(0..cells);
        // Ranges released on a missed deadline, by lease id: a late
        // completion of one is still folded (dedup'd) and, if the range is
        // still queued, the redundant re-run is cancelled.
        let mut released: HashMap<u64, (usize, usize)> = HashMap::new();
        let mut stats = LeaseStats {
            workers: self.workers.len(),
            ..LeaseStats::default()
        };
        let mut next_lease: u64 = 1;
        let lease_timeout = self.lease_timeout;

        while !fold.is_complete() {
            // Hand ranges to every idle live worker.
            for worker in self
                .workers
                .iter_mut()
                .filter(|w| w.alive && w.lease.is_none())
            {
                let Some((start, end)) = queue.pop_front() else {
                    break;
                };
                let id = next_lease;
                next_lease += 1;
                let message = ToWorker::Lease {
                    lease: id,
                    start,
                    end,
                };
                if let Err(e) = write_frame(&mut worker.writer, &message.encode()) {
                    eprintln!(
                        "dtpm distributed: worker {} lost on lease write: {e}",
                        worker.label
                    );
                    worker.alive = false;
                    stats.lost_workers += 1;
                    queue.push_front((start, end));
                    continue;
                }
                stats.leases += 1;
                worker.lease = Some(LeaseState {
                    id,
                    start,
                    end,
                    deadline: Instant::now() + lease_timeout,
                    suspect: false,
                });
            }

            if !self.workers.iter().any(|w| w.alive) {
                return Err(SimError::Io(format!(
                    "all {} workers lost with {} cells unfolded",
                    stats.workers,
                    cells - fold.folded()
                )));
            }

            // Sleep until the next outstanding deadline (or a message).
            let wait = self
                .workers
                .iter()
                .filter_map(|w| w.lease.as_ref())
                .map(|l| l.deadline.saturating_duration_since(Instant::now()))
                .min()
                .unwrap_or(lease_timeout);
            match self.events.recv_timeout(wait) {
                Ok((id, Event::Message(message))) => {
                    Self::on_message(
                        &mut self.workers[id],
                        message,
                        &mut fold,
                        &mut queue,
                        &mut released,
                        &mut stats,
                        lease_timeout,
                    );
                }
                Ok((id, event)) => {
                    let worker = &mut self.workers[id];
                    if worker.alive {
                        if let Event::Failed(e) = &event {
                            eprintln!("dtpm distributed: worker {} failed: {e}", worker.label);
                        }
                        worker.alive = false;
                        stats.lost_workers += 1;
                        if let Some(lease) = worker.lease.take() {
                            stats.releases += 1;
                            // A suspect lease's range was already re-queued.
                            if !lease.suspect {
                                queue.push_front((lease.start, lease.end));
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    for worker in self.workers.iter_mut().filter(|w| w.alive) {
                        let Some(lease) = worker.lease.as_mut() else {
                            continue;
                        };
                        if lease.deadline > now {
                            continue;
                        }
                        if lease.suspect {
                            // Second silent window: abandon the worker. Its
                            // range is already back in the queue.
                            eprintln!(
                                "dtpm distributed: worker {} abandoned after repeated silence",
                                worker.label
                            );
                            worker.lease = None;
                            worker.alive = false;
                            stats.lost_workers += 1;
                        } else {
                            // First miss: release the range for a peer, keep
                            // listening for a late completion.
                            stats.releases += 1;
                            lease.suspect = true;
                            lease.deadline = now + lease_timeout;
                            queue.push_front((lease.start, lease.end));
                            released.insert(lease.id, (lease.start, lease.end));
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(SimError::Io(format!(
                        "all worker transports closed with {} cells unfolded",
                        cells - fold.folded()
                    )));
                }
            }
        }

        // Grid complete: wave the workers goodbye (best effort).
        let shutdown = ToWorker::Shutdown.encode();
        for worker in self.workers.iter_mut().filter(|w| w.alive) {
            let _ = write_frame(&mut worker.writer, &shutdown);
        }
        Ok(DistributedReport { fold, stats })
    }

    /// Applies one worker message to the lease state and fold.
    fn on_message(
        worker: &mut WorkerState,
        message: ToCoordinator,
        fold: &mut MergeSink,
        queue: &mut VecDeque<(usize, usize)>,
        released: &mut HashMap<u64, (usize, usize)>,
        stats: &mut LeaseStats,
        lease_timeout: Duration,
    ) {
        match message {
            ToCoordinator::Heartbeat { lease, .. } => {
                if let Some(state) = worker.lease.as_mut() {
                    if state.id == lease {
                        state.deadline = Instant::now() + lease_timeout;
                        // A released range stays released — the peer re-run
                        // is already paid for — but the worker is clearly
                        // alive, so keep extending its window instead of
                        // abandoning it.
                    }
                }
            }
            ToCoordinator::LeaseDone { lease, outcomes } => {
                let current = worker.lease.as_ref().is_some_and(|state| state.id == lease);
                if current {
                    worker.lease = None;
                }
                // Late completion of a released lease: cancel the redundant
                // re-run if its range is still queued.
                if let Some(range) = released.remove(&lease) {
                    if let Some(at) = queue.iter().position(|&r| r == range) {
                        queue.remove(at);
                    }
                }
                for (index, outcome) in outcomes {
                    Self::fold_outcome(fold, index, outcome, stats);
                }
            }
            ToCoordinator::Ready => {
                // Spurious after the handshake; ignore.
            }
        }
    }

    /// Folds one cell outcome with dedup: a cell that already landed (via a
    /// re-leased range) counts once, and the duplicate is telemetry.
    fn fold_outcome(
        fold: &mut MergeSink,
        index: usize,
        outcome: CellOutcome,
        stats: &mut LeaseStats,
    ) {
        if !fold.range().contains(&index) {
            return;
        }
        if fold.is_cell_complete(index) {
            stats.duplicate_cells += 1;
            return;
        }
        fold.offer(index, outcome);
    }
}

//! The binary wire codec for distributed campaign payloads: compact
//! little-endian encodings of the shard/result/checkpoint value types,
//! built on [`numeric::codec`]'s primitives.
//!
//! Two usage tiers share the field encoders below:
//!
//! * **Protocol messages** (`super::protocol`) embed the field encoders
//!   directly inside length-prefixed frames — the transport's framing
//!   bounds the payload, so no per-message checksum is added.
//! * **Standalone blobs** ([`encode_shard`], [`encode_sink`],
//!   [`encode_checkpoint`]) are self-describing: a 4-byte type magic, the
//!   payload, and a trailing CRC32 over everything before it — the format
//!   for payloads that touch disk or cross an untrusted boundary. Their
//!   decoders verify the checksum *first* ([`crate::SimError::Corrupted`]
//!   on mismatch), then the magic, then the structure.
//!
//! The discipline matches the PR 9 text format exactly where it matters:
//! floats travel as their 64-bit patterns, so decode∘encode is the
//! identity on every value including NaN payloads, negative zero and
//! infinities — "distributed" and "in-process" describe the same bits. The
//! text encoding remains the human-readable checkpoint format; this codec
//! is the machine-to-machine fast path (see the `distributed_campaign`
//! bench).
//!
//! Enum variants are encoded as stable tag bytes through exhaustive
//! matches, so adding a variant without extending the codec is a compile
//! error, not a silent wire break.

use std::collections::BTreeMap;

use dtpm::DtpmConfig;
use numeric::codec::{crc32, ByteReader, ByteWriter, CodecError};
use numeric::stats::Welford;
use soc_model::PowerDomain;
use workload::BenchmarkId;

use crate::calibrate::CalibrationCampaign;
use crate::campaign::{DtpmVariant, SweepSpec};
use crate::engine::EnginePrecision;
use crate::error::SimError;
use crate::experiment::ExperimentKind;
use crate::faults::{FaultKind, FaultPlan, FaultWindow, SensorChannel};
use crate::plant::PlantPowerParams;
use crate::resilience::{
    CampaignAggregate, CampaignCheckpoint, CellBitmap, CellFailure, CellOutcome, CellStats,
    ChaosPlan, MergeSink, ResiliencePolicy, ShardSpec,
};

/// Converts a primitive-codec failure into the crate error type.
pub(crate) fn codec_error(e: CodecError) -> SimError {
    SimError::Io(e.to_string())
}

/// A structural decode failure above the primitive layer.
fn malformed(what: &str) -> SimError {
    SimError::Io(format!("malformed binary payload: {what}"))
}

// ---------------------------------------------------------------------------
// Enum tags (exhaustive matches: a new variant fails to compile here).

fn put_kind(w: &mut ByteWriter, kind: ExperimentKind) {
    w.put_u8(match kind {
        ExperimentKind::DefaultWithFan => 0,
        ExperimentKind::WithoutFan => 1,
        ExperimentKind::Reactive => 2,
        ExperimentKind::Dtpm => 3,
    });
}

fn take_kind(r: &mut ByteReader<'_>) -> Result<ExperimentKind, SimError> {
    Ok(match r.take_u8().map_err(codec_error)? {
        0 => ExperimentKind::DefaultWithFan,
        1 => ExperimentKind::WithoutFan,
        2 => ExperimentKind::Reactive,
        3 => ExperimentKind::Dtpm,
        _ => return Err(malformed("unknown experiment kind tag")),
    })
}

fn put_benchmark(w: &mut ByteWriter, benchmark: BenchmarkId) {
    w.put_u8(match benchmark {
        BenchmarkId::Blowfish => 0,
        BenchmarkId::Sha => 1,
        BenchmarkId::Dijkstra => 2,
        BenchmarkId::Patricia => 3,
        BenchmarkId::Basicmath => 4,
        BenchmarkId::MatrixMult => 5,
        BenchmarkId::Bitcount => 6,
        BenchmarkId::Qsort => 7,
        BenchmarkId::Crc32 => 8,
        BenchmarkId::Gsm => 9,
        BenchmarkId::Fft => 10,
        BenchmarkId::Jpeg => 11,
        BenchmarkId::AngryBirds => 12,
        BenchmarkId::Templerun => 13,
        BenchmarkId::Youtube => 14,
        BenchmarkId::FftMt => 15,
        BenchmarkId::LuMt => 16,
    });
}

fn take_benchmark(r: &mut ByteReader<'_>) -> Result<BenchmarkId, SimError> {
    Ok(match r.take_u8().map_err(codec_error)? {
        0 => BenchmarkId::Blowfish,
        1 => BenchmarkId::Sha,
        2 => BenchmarkId::Dijkstra,
        3 => BenchmarkId::Patricia,
        4 => BenchmarkId::Basicmath,
        5 => BenchmarkId::MatrixMult,
        6 => BenchmarkId::Bitcount,
        7 => BenchmarkId::Qsort,
        8 => BenchmarkId::Crc32,
        9 => BenchmarkId::Gsm,
        10 => BenchmarkId::Fft,
        11 => BenchmarkId::Jpeg,
        12 => BenchmarkId::AngryBirds,
        13 => BenchmarkId::Templerun,
        14 => BenchmarkId::Youtube,
        15 => BenchmarkId::FftMt,
        16 => BenchmarkId::LuMt,
        _ => return Err(malformed("unknown benchmark tag")),
    })
}

fn put_domain(w: &mut ByteWriter, domain: PowerDomain) {
    w.put_u8(match domain {
        PowerDomain::BigCpu => 0,
        PowerDomain::LittleCpu => 1,
        PowerDomain::Gpu => 2,
        PowerDomain::Memory => 3,
    });
}

fn take_domain(r: &mut ByteReader<'_>) -> Result<PowerDomain, SimError> {
    Ok(match r.take_u8().map_err(codec_error)? {
        0 => PowerDomain::BigCpu,
        1 => PowerDomain::LittleCpu,
        2 => PowerDomain::Gpu,
        3 => PowerDomain::Memory,
        _ => return Err(malformed("unknown power domain tag")),
    })
}

fn put_channel(w: &mut ByteWriter, channel: SensorChannel) {
    match channel {
        SensorChannel::CoreTemp(core) => {
            w.put_u8(0);
            w.put_usize(core);
        }
        SensorChannel::DomainPower(domain) => {
            w.put_u8(1);
            put_domain(w, domain);
        }
        SensorChannel::PlatformPower => w.put_u8(2),
    }
}

fn take_channel(r: &mut ByteReader<'_>) -> Result<SensorChannel, SimError> {
    Ok(match r.take_u8().map_err(codec_error)? {
        0 => SensorChannel::CoreTemp(r.take_usize().map_err(codec_error)?),
        1 => SensorChannel::DomainPower(take_domain(r)?),
        2 => SensorChannel::PlatformPower,
        _ => return Err(malformed("unknown sensor channel tag")),
    })
}

fn put_fault_kind(w: &mut ByteWriter, kind: &FaultKind) {
    match kind {
        FaultKind::StuckAt => w.put_u8(0),
        FaultKind::Dropped => w.put_u8(1),
        FaultKind::OffsetDrift {
            initial,
            drift_per_s,
        } => {
            w.put_u8(2);
            w.put_f64(*initial);
            w.put_f64(*drift_per_s);
        }
        FaultKind::Spike {
            magnitude,
            period_intervals,
        } => {
            w.put_u8(3);
            w.put_f64(*magnitude);
            w.put_usize(*period_intervals);
        }
        FaultKind::Delayed { intervals } => {
            w.put_u8(4);
            w.put_usize(*intervals);
        }
    }
}

fn take_fault_kind(r: &mut ByteReader<'_>) -> Result<FaultKind, SimError> {
    Ok(match r.take_u8().map_err(codec_error)? {
        0 => FaultKind::StuckAt,
        1 => FaultKind::Dropped,
        2 => FaultKind::OffsetDrift {
            initial: r.take_f64().map_err(codec_error)?,
            drift_per_s: r.take_f64().map_err(codec_error)?,
        },
        3 => FaultKind::Spike {
            magnitude: r.take_f64().map_err(codec_error)?,
            period_intervals: r.take_usize().map_err(codec_error)?,
        },
        4 => FaultKind::Delayed {
            intervals: r.take_usize().map_err(codec_error)?,
        },
        _ => return Err(malformed("unknown fault kind tag")),
    })
}

fn put_precision(w: &mut ByteWriter, precision: EnginePrecision) {
    w.put_u8(match precision {
        EnginePrecision::F64 => 0,
        EnginePrecision::F32 => 1,
        EnginePrecision::F32Shadow => 2,
    });
}

fn take_precision(r: &mut ByteReader<'_>) -> Result<EnginePrecision, SimError> {
    Ok(match r.take_u8().map_err(codec_error)? {
        0 => EnginePrecision::F64,
        1 => EnginePrecision::F32,
        2 => EnginePrecision::F32Shadow,
        _ => return Err(malformed("unknown engine precision tag")),
    })
}

// ---------------------------------------------------------------------------
// Struct field encoders.

fn put_fault_plan(w: &mut ByteWriter, plan: &FaultPlan) {
    w.put_u64(plan.seed);
    w.put_usize(plan.windows.len());
    for window in &plan.windows {
        put_channel(w, window.channel);
        put_fault_kind(w, &window.kind);
        w.put_f64(window.start_s);
        w.put_f64(window.end_s);
    }
}

fn take_fault_plan(r: &mut ByteReader<'_>) -> Result<FaultPlan, SimError> {
    let seed = r.take_u64().map_err(codec_error)?;
    let count = r.take_usize().map_err(codec_error)?;
    let mut windows = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        windows.push(FaultWindow {
            channel: take_channel(r)?,
            kind: take_fault_kind(r)?,
            start_s: r.take_f64().map_err(codec_error)?,
            end_s: r.take_f64().map_err(codec_error)?,
        });
    }
    Ok(FaultPlan { seed, windows })
}

fn put_chaos(w: &mut ByteWriter, plan: &ChaosPlan) {
    match plan.panic_at_interval {
        Some(interval) => {
            w.put_bool(true);
            w.put_usize(interval);
        }
        None => w.put_bool(false),
    }
    w.put_u32(plan.heal_after_attempts);
    w.put_u32(plan.attempt);
}

fn take_chaos(r: &mut ByteReader<'_>) -> Result<ChaosPlan, SimError> {
    let panic_at_interval = if r.take_bool().map_err(codec_error)? {
        Some(r.take_usize().map_err(codec_error)?)
    } else {
        None
    };
    Ok(ChaosPlan {
        panic_at_interval,
        heal_after_attempts: r.take_u32().map_err(codec_error)?,
        attempt: r.take_u32().map_err(codec_error)?,
    })
}

fn put_plant(w: &mut ByteWriter, plant: &PlantPowerParams) {
    for x in [
        plant.big_core_ceff_f,
        plant.big_uncore_ceff_f,
        plant.little_core_ceff_f,
        plant.little_uncore_ceff_f,
        plant.gpu_ceff_f,
        plant.memory_base_w,
        plant.memory_active_w,
        plant.board_base_w,
        plant.leakage_mismatch,
        plant.gated_leakage_fraction,
        plant.initial_temp_c,
    ] {
        w.put_f64(x);
    }
}

fn take_plant(r: &mut ByteReader<'_>) -> Result<PlantPowerParams, SimError> {
    let mut take = || r.take_f64().map_err(codec_error);
    Ok(PlantPowerParams {
        big_core_ceff_f: take()?,
        big_uncore_ceff_f: take()?,
        little_core_ceff_f: take()?,
        little_uncore_ceff_f: take()?,
        gpu_ceff_f: take()?,
        memory_base_w: take()?,
        memory_active_w: take()?,
        board_base_w: take()?,
        leakage_mismatch: take()?,
        gated_leakage_fraction: take()?,
        initial_temp_c: take()?,
    })
}

fn put_dtpm(w: &mut ByteWriter, dtpm: &DtpmConfig) {
    w.put_f64(dtpm.temperature_constraint_c);
    w.put_usize(dtpm.prediction_horizon_steps);
    w.put_f64(dtpm.hot_core_delta_c);
    w.put_usize(dtpm.min_big_cores);
    w.put_f64(dtpm.prediction_margin_c);
}

fn take_dtpm(r: &mut ByteReader<'_>) -> Result<DtpmConfig, SimError> {
    Ok(DtpmConfig {
        temperature_constraint_c: r.take_f64().map_err(codec_error)?,
        prediction_horizon_steps: r.take_usize().map_err(codec_error)?,
        hot_core_delta_c: r.take_f64().map_err(codec_error)?,
        min_big_cores: r.take_usize().map_err(codec_error)?,
        prediction_margin_c: r.take_f64().map_err(codec_error)?,
    })
}

/// Encodes a [`SweepSpec`]'s every axis and shared scalar.
pub(crate) fn put_spec(w: &mut ByteWriter, spec: &SweepSpec) {
    w.put_usize(spec.kinds.len());
    for &kind in &spec.kinds {
        put_kind(w, kind);
    }
    w.put_usize(spec.benchmarks.len());
    for &benchmark in &spec.benchmarks {
        put_benchmark(w, benchmark);
    }
    w.put_usize(spec.ambients_c.len());
    for &ambient in &spec.ambients_c {
        w.put_f64(ambient);
    }
    w.put_usize(spec.dtpm_variants.len());
    for variant in &spec.dtpm_variants {
        w.put_usize(variant.horizon_steps);
        w.put_f64(variant.constraint_c);
    }
    w.put_usize(spec.fault_plans.len());
    for plan in &spec.fault_plans {
        match plan {
            Some(plan) => {
                w.put_bool(true);
                put_fault_plan(w, plan);
            }
            None => w.put_bool(false),
        }
    }
    w.put_usize(spec.replicates);
    w.put_u64(spec.campaign_seed);
    put_dtpm(w, &spec.base_dtpm);
    w.put_f64(spec.control_period_s);
    w.put_f64(spec.max_duration_s);
    put_plant(w, &spec.plant);
    w.put_bool(spec.ideal_sensors);
    put_precision(w, spec.precision);
    w.put_usize(spec.chaos_cells.len());
    for (index, plan) in &spec.chaos_cells {
        w.put_usize(*index);
        put_chaos(w, plan);
    }
}

/// Decodes a [`SweepSpec`] written by [`put_spec`], bit-exactly.
pub(crate) fn take_spec(r: &mut ByteReader<'_>) -> Result<SweepSpec, SimError> {
    let kind_count = r.take_usize().map_err(codec_error)?;
    let mut kinds = Vec::with_capacity(kind_count.min(1024));
    for _ in 0..kind_count {
        kinds.push(take_kind(r)?);
    }
    let benchmark_count = r.take_usize().map_err(codec_error)?;
    let mut benchmarks = Vec::with_capacity(benchmark_count.min(1024));
    for _ in 0..benchmark_count {
        benchmarks.push(take_benchmark(r)?);
    }
    let ambient_count = r.take_usize().map_err(codec_error)?;
    let mut ambients_c = Vec::with_capacity(ambient_count.min(1024));
    for _ in 0..ambient_count {
        ambients_c.push(r.take_f64().map_err(codec_error)?);
    }
    let variant_count = r.take_usize().map_err(codec_error)?;
    let mut dtpm_variants = Vec::with_capacity(variant_count.min(1024));
    for _ in 0..variant_count {
        dtpm_variants.push(DtpmVariant {
            horizon_steps: r.take_usize().map_err(codec_error)?,
            constraint_c: r.take_f64().map_err(codec_error)?,
        });
    }
    let plan_count = r.take_usize().map_err(codec_error)?;
    let mut fault_plans = Vec::with_capacity(plan_count.min(1024));
    for _ in 0..plan_count {
        fault_plans.push(if r.take_bool().map_err(codec_error)? {
            Some(take_fault_plan(r)?)
        } else {
            None
        });
    }
    let replicates = r.take_usize().map_err(codec_error)?;
    let campaign_seed = r.take_u64().map_err(codec_error)?;
    let base_dtpm = take_dtpm(r)?;
    let control_period_s = r.take_f64().map_err(codec_error)?;
    let max_duration_s = r.take_f64().map_err(codec_error)?;
    let plant = take_plant(r)?;
    let ideal_sensors = r.take_bool().map_err(codec_error)?;
    let precision = take_precision(r)?;
    let chaos_count = r.take_usize().map_err(codec_error)?;
    let mut chaos_cells = Vec::with_capacity(chaos_count.min(1024));
    for _ in 0..chaos_count {
        let index = r.take_usize().map_err(codec_error)?;
        chaos_cells.push((index, take_chaos(r)?));
    }
    Ok(SweepSpec {
        kinds,
        benchmarks,
        ambients_c,
        dtpm_variants,
        fault_plans,
        replicates,
        campaign_seed,
        base_dtpm,
        control_period_s,
        max_duration_s,
        plant,
        ideal_sensors,
        precision,
        chaos_cells,
    })
}

/// Encodes the calibration-campaign parameters a worker re-derives its
/// [`crate::Calibration`] from.
pub(crate) fn put_calibration_campaign(w: &mut ByteWriter, campaign: &CalibrationCampaign) {
    w.put_f64(campaign.ambient_c);
    w.put_f64(campaign.control_period_s);
    w.put_f64(campaign.prbs_duration_s);
    w.put_usize(campaign.prbs_hold_intervals);
    w.put_bool(campaign.run_furnace);
    w.put_f64(campaign.train_fraction);
    put_plant(w, &campaign.plant);
    w.put_bool(campaign.ideal_sensors);
}

/// Decodes a [`CalibrationCampaign`] written by
/// [`put_calibration_campaign`].
pub(crate) fn take_calibration_campaign(
    r: &mut ByteReader<'_>,
) -> Result<CalibrationCampaign, SimError> {
    Ok(CalibrationCampaign {
        ambient_c: r.take_f64().map_err(codec_error)?,
        control_period_s: r.take_f64().map_err(codec_error)?,
        prbs_duration_s: r.take_f64().map_err(codec_error)?,
        prbs_hold_intervals: r.take_usize().map_err(codec_error)?,
        run_furnace: r.take_bool().map_err(codec_error)?,
        train_fraction: r.take_f64().map_err(codec_error)?,
        plant: take_plant(r)?,
        ideal_sensors: r.take_bool().map_err(codec_error)?,
    })
}

/// Encodes a containment policy.
pub(crate) fn put_resilience(w: &mut ByteWriter, policy: &ResiliencePolicy) {
    w.put_u32(policy.max_retries);
    match policy.deadline_intervals {
        Some(intervals) => {
            w.put_bool(true);
            w.put_usize(intervals);
        }
        None => w.put_bool(false),
    }
}

/// Decodes a [`ResiliencePolicy`] written by [`put_resilience`].
pub(crate) fn take_resilience(r: &mut ByteReader<'_>) -> Result<ResiliencePolicy, SimError> {
    let max_retries = r.take_u32().map_err(codec_error)?;
    let deadline_intervals = if r.take_bool().map_err(codec_error)? {
        Some(r.take_usize().map_err(codec_error)?)
    } else {
        None
    };
    Ok(ResiliencePolicy {
        max_retries,
        deadline_intervals,
    })
}

fn put_welford(w: &mut ByteWriter, welford: &Welford) {
    w.put_usize(welford.count());
    w.put_f64(welford.mean());
    w.put_f64(welford.m2());
    w.put_f64(welford.min());
    w.put_f64(welford.max());
}

fn take_welford(r: &mut ByteReader<'_>) -> Result<Welford, SimError> {
    Ok(Welford::from_parts(
        r.take_usize().map_err(codec_error)?,
        r.take_f64().map_err(codec_error)?,
        r.take_f64().map_err(codec_error)?,
        r.take_f64().map_err(codec_error)?,
        r.take_f64().map_err(codec_error)?,
    ))
}

/// Encodes one cell's terminal outcome.
pub(crate) fn put_outcome(w: &mut ByteWriter, outcome: &CellOutcome) {
    match outcome {
        CellOutcome::Completed(stats) => {
            w.put_u8(0);
            w.put_bool(stats.completed);
            w.put_f64(stats.execution_time_s);
            w.put_usize(stats.intervals);
            w.put_f64(stats.energy_j);
            w.put_f64(stats.mean_platform_power_w);
            w.put_f64(stats.mean_temp_c);
            w.put_f64(stats.peak_temp_c);
            w.put_f64(stats.intervention_rate);
            w.put_usize(stats.escalations);
            w.put_usize(stats.sensor_faults);
            w.put_bool(stats.shut_down);
        }
        CellOutcome::Failed(failure) => {
            w.put_u8(1);
            w.put_usize(failure.index);
            w.put_str(&failure.error);
        }
    }
}

/// Decodes a [`CellOutcome`] written by [`put_outcome`].
pub(crate) fn take_outcome(r: &mut ByteReader<'_>) -> Result<CellOutcome, SimError> {
    Ok(match r.take_u8().map_err(codec_error)? {
        0 => CellOutcome::Completed(CellStats {
            completed: r.take_bool().map_err(codec_error)?,
            execution_time_s: r.take_f64().map_err(codec_error)?,
            intervals: r.take_usize().map_err(codec_error)?,
            energy_j: r.take_f64().map_err(codec_error)?,
            mean_platform_power_w: r.take_f64().map_err(codec_error)?,
            mean_temp_c: r.take_f64().map_err(codec_error)?,
            peak_temp_c: r.take_f64().map_err(codec_error)?,
            intervention_rate: r.take_f64().map_err(codec_error)?,
            escalations: r.take_usize().map_err(codec_error)?,
            sensor_faults: r.take_usize().map_err(codec_error)?,
            shut_down: r.take_bool().map_err(codec_error)?,
        }),
        1 => CellOutcome::Failed(CellFailure {
            index: r.take_usize().map_err(codec_error)?,
            error: r.take_str().map_err(codec_error)?.to_owned(),
        }),
        _ => return Err(malformed("unknown cell outcome tag")),
    })
}

fn put_aggregate(w: &mut ByteWriter, a: &CampaignAggregate) {
    w.put_usize(a.cells);
    w.put_usize(a.completed_runs);
    w.put_usize(a.failed_cells);
    w.put_usize(a.shutdowns);
    w.put_usize(a.total_intervals);
    w.put_usize(a.escalations);
    w.put_usize(a.sensor_faults);
    w.put_f64(a.total_energy_j);
    for welford in [
        &a.energy_j,
        &a.mean_power_w,
        &a.execution_time_s,
        &a.peak_temp_c,
        &a.mean_temp_c,
    ] {
        put_welford(w, welford);
    }
}

fn take_aggregate(r: &mut ByteReader<'_>) -> Result<CampaignAggregate, SimError> {
    Ok(CampaignAggregate {
        cells: r.take_usize().map_err(codec_error)?,
        completed_runs: r.take_usize().map_err(codec_error)?,
        failed_cells: r.take_usize().map_err(codec_error)?,
        shutdowns: r.take_usize().map_err(codec_error)?,
        total_intervals: r.take_usize().map_err(codec_error)?,
        escalations: r.take_usize().map_err(codec_error)?,
        sensor_faults: r.take_usize().map_err(codec_error)?,
        total_energy_j: r.take_f64().map_err(codec_error)?,
        energy_j: take_welford(r)?,
        mean_power_w: take_welford(r)?,
        execution_time_s: take_welford(r)?,
        peak_temp_c: take_welford(r)?,
        mean_temp_c: take_welford(r)?,
    })
}

/// Encodes a [`MergeSink`]'s full state (range, cursor, aggregate,
/// retained failures, pending arrivals).
pub(crate) fn put_sink(w: &mut ByteWriter, sink: &MergeSink) {
    let range = sink.range();
    w.put_usize(range.start);
    w.put_usize(range.end);
    w.put_usize(sink.next_index());
    put_aggregate(w, sink.aggregate());
    w.put_usize(sink.failures().len());
    for failure in sink.failures() {
        w.put_usize(failure.index);
        w.put_str(&failure.error);
    }
    let pending = sink.pending_outcomes();
    w.put_usize(pending.len());
    for (&index, outcome) in pending {
        w.put_usize(index);
        put_outcome(w, outcome);
    }
}

/// Decodes a [`MergeSink`] written by [`put_sink`], re-validating every
/// structural invariant through the same constructor as the text decoder.
pub(crate) fn take_sink(r: &mut ByteReader<'_>) -> Result<MergeSink, SimError> {
    let start = r.take_usize().map_err(codec_error)?;
    let end = r.take_usize().map_err(codec_error)?;
    let next = r.take_usize().map_err(codec_error)?;
    let aggregate = take_aggregate(r)?;
    let failure_count = r.take_usize().map_err(codec_error)?;
    let mut failures = Vec::with_capacity(failure_count.min(1024));
    for _ in 0..failure_count {
        failures.push(CellFailure {
            index: r.take_usize().map_err(codec_error)?,
            error: r.take_str().map_err(codec_error)?.to_owned(),
        });
    }
    let pending_count = r.take_usize().map_err(codec_error)?;
    let mut pending = BTreeMap::new();
    for _ in 0..pending_count {
        let index = r.take_usize().map_err(codec_error)?;
        let outcome = take_outcome(r)?;
        if pending.insert(index, outcome).is_some() {
            return Err(malformed("pending cell duplicated"));
        }
    }
    MergeSink::from_parts(start, end, next, aggregate, pending, failures)
}

/// Encodes a [`ShardSpec`] (the shared grid plus the owned range).
pub(crate) fn put_shard(w: &mut ByteWriter, shard: &ShardSpec) {
    put_spec(w, &shard.spec);
    w.put_usize(shard.start);
    w.put_usize(shard.end);
}

/// Decodes a [`ShardSpec`] written by [`put_shard`], validating the range
/// against the decoded grid.
pub(crate) fn take_shard(r: &mut ByteReader<'_>) -> Result<ShardSpec, SimError> {
    let spec = take_spec(r)?;
    let start = r.take_usize().map_err(codec_error)?;
    let end = r.take_usize().map_err(codec_error)?;
    if start > end {
        return Err(malformed("inverted shard range"));
    }
    if end > spec.cells() {
        return Err(malformed("shard range reaches past the grid"));
    }
    Ok(ShardSpec { spec, start, end })
}

/// Encodes a [`CampaignCheckpoint`] (fingerprint, bitmap, fold).
pub(crate) fn put_checkpoint(w: &mut ByteWriter, checkpoint: &CampaignCheckpoint) {
    w.put_u64(checkpoint.fingerprint());
    let bitmap = checkpoint.bitmap();
    w.put_usize(bitmap.len());
    for &word in bitmap.words() {
        w.put_u64(word);
    }
    put_sink(w, checkpoint.fold());
}

/// Decodes a [`CampaignCheckpoint`] written by [`put_checkpoint`],
/// re-validating the bitmap/fold consistency through the same constructors
/// as the text decoder.
pub(crate) fn take_checkpoint(r: &mut ByteReader<'_>) -> Result<CampaignCheckpoint, SimError> {
    let fingerprint = r.take_u64().map_err(codec_error)?;
    let cells = r.take_usize().map_err(codec_error)?;
    let word_count = cells.div_ceil(64);
    let mut words = Vec::with_capacity(word_count.min(1 << 20));
    for _ in 0..word_count {
        words.push(r.take_u64().map_err(codec_error)?);
    }
    let bitmap = CellBitmap::from_words(words, cells)?;
    let fold = take_sink(r)?;
    CampaignCheckpoint::from_parts(fingerprint, bitmap, fold)
}

// ---------------------------------------------------------------------------
// Standalone blobs: magic + payload + CRC32.

/// Type magic of a standalone shard blob.
const SHARD_MAGIC: u32 = u32::from_le_bytes(*b"DSH1");
/// Type magic of a standalone merge-sink blob.
const SINK_MAGIC: u32 = u32::from_le_bytes(*b"DSK1");
/// Type magic of a standalone checkpoint blob.
const CHECKPOINT_MAGIC: u32 = u32::from_le_bytes(*b"DCP1");

/// Seals a payload as a standalone blob: magic, payload, CRC32 over both.
fn seal_blob(magic: u32, fill: impl FnOnce(&mut ByteWriter)) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(magic);
    fill(&mut w);
    let crc = crc32(w.as_slice());
    w.put_u32(crc);
    w.into_bytes()
}

/// Opens a standalone blob: verifies the trailing CRC32 first (so any
/// corruption is one structured error, not a partial decode), then the
/// type magic, and returns a reader over the payload.
fn open_blob<'a>(bytes: &'a [u8], magic: u32, what: &str) -> Result<ByteReader<'a>, SimError> {
    if bytes.len() < 8 {
        return Err(SimError::Corrupted(format!(
            "{what} blob shorter than its magic and checksum"
        )));
    }
    let (body, stated) = bytes.split_at(bytes.len() - 4);
    let stated = u32::from_le_bytes(stated.try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stated != computed {
        return Err(SimError::Corrupted(format!(
            "{what} blob crc32 mismatch: trailer says {stated:08x}, \
             content hashes to {computed:08x}"
        )));
    }
    let mut r = ByteReader::new(body);
    let found = r.take_u32().map_err(codec_error)?;
    if found != magic {
        return Err(SimError::Corrupted(format!(
            "{what} blob carries magic {found:08x}, expected {magic:08x}"
        )));
    }
    Ok(r)
}

/// Finishes a blob decode: rejects trailing bytes.
fn finish_blob<T>(r: &ByteReader<'_>, value: T) -> Result<T, SimError> {
    r.finish().map_err(codec_error)?;
    Ok(value)
}

/// Serialises a [`ShardSpec`] as a CRC32-sealed binary blob — the payload a
/// driver ships to a remote worker.
pub fn encode_shard(shard: &ShardSpec) -> Vec<u8> {
    seal_blob(SHARD_MAGIC, |w| put_shard(w, shard))
}

/// Decodes a blob written by [`encode_shard`], bit-exactly.
///
/// # Errors
///
/// Returns [`SimError::Corrupted`] on checksum/magic mismatch and
/// [`SimError::Io`] on structurally malformed content.
pub fn decode_shard(bytes: &[u8]) -> Result<ShardSpec, SimError> {
    let mut r = open_blob(bytes, SHARD_MAGIC, "shard")?;
    let shard = take_shard(&mut r)?;
    finish_blob(&r, shard)
}

/// Serialises a [`MergeSink`]'s full state as a CRC32-sealed binary blob —
/// the result payload a worker ships back (any fold state round-trips,
/// complete or mid-flight).
pub fn encode_sink(sink: &MergeSink) -> Vec<u8> {
    seal_blob(SINK_MAGIC, |w| put_sink(w, sink))
}

/// Decodes a blob written by [`encode_sink`], bit-exactly.
///
/// # Errors
///
/// Returns [`SimError::Corrupted`] on checksum/magic mismatch and
/// [`SimError::Io`] on structurally malformed content.
pub fn decode_sink(bytes: &[u8]) -> Result<MergeSink, SimError> {
    let mut r = open_blob(bytes, SINK_MAGIC, "merge-sink")?;
    let sink = take_sink(&mut r)?;
    finish_blob(&r, sink)
}

/// Serialises a [`CampaignCheckpoint`] as a CRC32-sealed binary blob — the
/// compact machine-to-machine form of the text checkpoint (which remains
/// the human-readable on-disk format).
pub fn encode_checkpoint(checkpoint: &CampaignCheckpoint) -> Vec<u8> {
    seal_blob(CHECKPOINT_MAGIC, |w| put_checkpoint(w, checkpoint))
}

/// Decodes a blob written by [`encode_checkpoint`], bit-exactly.
///
/// # Errors
///
/// Returns [`SimError::Corrupted`] on checksum/magic mismatch and
/// [`SimError::Io`] on structurally malformed content.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CampaignCheckpoint, SimError> {
    let mut r = open_blob(bytes, CHECKPOINT_MAGIC, "checkpoint")?;
    let checkpoint = take_checkpoint(&mut r)?;
    finish_blob(&r, checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentKind;

    fn spec() -> SweepSpec {
        SweepSpec::new(
            vec![ExperimentKind::WithoutFan, ExperimentKind::Dtpm],
            vec![BenchmarkId::Crc32, BenchmarkId::MatrixMult],
        )
        .with_ambients_c(vec![24.0, 30.5])
        .with_dtpm_variants(vec![
            DtpmVariant::default(),
            DtpmVariant {
                horizon_steps: 20,
                constraint_c: 60.0,
            },
        ])
        .with_fault_plans(vec![
            None,
            Some(FaultPlan::new(9).with_window(FaultWindow {
                channel: SensorChannel::CoreTemp(2),
                kind: FaultKind::OffsetDrift {
                    initial: 1.5,
                    drift_per_s: -0.25,
                },
                start_s: 1.0,
                end_s: 2.0,
            })),
        ])
        .with_replicates(3)
        .with_campaign_seed(0xC0FF_EE10)
        .with_cell_chaos(5, ChaosPlan::panic_at(4).healing_after(1))
    }

    fn stats(x: f64) -> CellStats {
        CellStats {
            completed: true,
            execution_time_s: 10.0 + x,
            intervals: 100 + x as usize,
            energy_j: 40.0 * x,
            mean_platform_power_w: 4.0 + x * 0.01,
            mean_temp_c: 50.0 + x,
            peak_temp_c: 60.0 + x,
            intervention_rate: 0.25,
            escalations: 1,
            sensor_faults: 0,
            shut_down: false,
        }
    }

    #[test]
    fn shard_blobs_round_trip_bit_exactly() {
        let shard = ShardSpec::new(spec(), 3, 17);
        let blob = encode_shard(&shard);
        assert_eq!(decode_shard(&blob).expect("round trip"), shard);
        // The grid identity survives the wire: same fingerprint both sides.
        assert_eq!(
            decode_shard(&blob).unwrap().spec.fingerprint(),
            shard.spec.fingerprint()
        );
    }

    #[test]
    fn sink_blobs_round_trip_mid_flight_state() {
        let mut sink = MergeSink::new(3..40);
        for k in [3, 4, 5, 9, 12, 11, 30] {
            let outcome = if k == 9 {
                CellOutcome::Failed(CellFailure {
                    index: 9,
                    error: "cell panicked (contained): boom".to_owned(),
                })
            } else {
                CellOutcome::Completed(stats(k as f64))
            };
            sink.offer(k, outcome);
        }
        let blob = encode_sink(&sink);
        assert_eq!(decode_sink(&blob).expect("round trip"), sink);
    }

    #[test]
    fn checkpoint_blobs_round_trip_and_match_the_text_format() {
        let mut checkpoint = CampaignCheckpoint::new(0xF00D, 70);
        for k in [0, 2, 64, 69] {
            checkpoint.record(k, Err(SimError::Panicked(format!("boom {k}"))));
        }
        let blob = encode_checkpoint(&checkpoint);
        let decoded = decode_checkpoint(&blob).expect("round trip");
        assert_eq!(decoded, checkpoint);
        // Binary and text decoders agree on the same state.
        assert_eq!(
            CampaignCheckpoint::decode(&checkpoint.encode()).expect("text"),
            decoded
        );
        // And the binary form is the compact one.
        assert!(
            blob.len() < checkpoint.encode().len(),
            "binary blob ({} B) should undercut the text form ({} B)",
            blob.len(),
            checkpoint.encode().len()
        );
    }

    #[test]
    fn corrupted_blobs_are_rejected_wholesale() {
        let shard = ShardSpec::new(spec(), 0, 10);
        let good = encode_shard(&shard);
        // Any single flipped byte anywhere in the blob is caught.
        for position in [0, 4, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[position] ^= 0x40;
            assert!(
                matches!(decode_shard(&bad), Err(SimError::Corrupted(_))),
                "flip at {position}"
            );
        }
        // Truncation is caught by the checksum too.
        assert!(matches!(
            decode_shard(&good[..good.len() - 5]),
            Err(SimError::Corrupted(_))
        ));
        assert!(matches!(decode_shard(&[]), Err(SimError::Corrupted(_))));
        // A valid sink blob is not a valid shard blob (magic check).
        let sink_blob = encode_sink(&MergeSink::new(0..4));
        assert!(matches!(
            decode_shard(&sink_blob),
            Err(SimError::Corrupted(_))
        ));
    }
}

//! Declarative sweep campaigns: a serde-able grid specification expanded
//! lazily into experiment configurations and streamed through the
//! lane-compacting sweep.
//!
//! The paper's evaluation is itself a grid — {baseline, reactive, DTPM} ×
//! 15 benchmarks × ambient/fan conditions (Figures 6.5/6.9/6.10) — and the
//! calibration/characterisation studies of the related work explore the
//! power–temperature state space over exactly such grids. [`SweepSpec`]
//! declares one: a cartesian product of configuration axes
//! (ExperimentKinds × benchmarks × ambients × DTPM variants × fault
//! scenarios × replicates) with deterministic per-cell seed derivation, so a
//! campaign is a small value that can be serialised, reviewed, and re-run
//! bit-identically. The fault axis (default: a single fault-free entry)
//! injects [`FaultPlan`] sensor-fault scenarios into whole slices of the
//! grid, turning robustness studies into ordinary campaign cells.
//!
//! Three properties matter at scale:
//!
//! * **Lazy expansion.** A cell's [`ExperimentConfig`] is materialised by
//!   [`SweepSpec::cell`] from its linear index on demand — workers claim an
//!   index and build the cell; a million-cell campaign never holds a
//!   million configs.
//! * **Order-independent seeding.** Cell seeds are
//!   [`splitmix64`]`(campaign_seed + cell_index)`: a bijective hash of the
//!   cell's coordinates, not a sequentially-stepped RNG — so every cell's
//!   seed is distinct, stable across runs, and independent of the order (or
//!   subset) in which cells execute.
//! * **Streaming results.** [`CampaignRunner::run_into`] drives the grid
//!   through the compacting sweep scheduler into a
//!   [`crate::experiment::ResultSink`], summaries-only by default: retained
//!   memory is O(cells), never O(cells × intervals).

use dtpm::DtpmConfig;
use serde::{Deserialize, Serialize};
use workload::BenchmarkId;

use crate::calibrate::Calibration;
use crate::engine::EnginePrecision;
use crate::error::SimError;
use crate::experiment::{sweep_stream, ExperimentConfig, ExperimentKind, ResultSink};
use crate::faults::FaultPlan;
use crate::observer::TracePolicy;
use crate::plant::PlantPowerParams;
use crate::resilience::{CampaignCheckpoint, ChaosPlan, ResiliencePolicy};

fn default_fault_axis() -> Vec<Option<FaultPlan>> {
    vec![None]
}

fn default_chaos_cells() -> Vec<(usize, ChaosPlan)> {
    Vec::new()
}

/// SplitMix64: the finalising mix of a 64-bit counter into a well-distributed
/// 64-bit value (Steele et al., *Fast splittable pseudorandom number
/// generators*). It is a bijection on `u64`, which is exactly the property
/// grid seeding needs: distinct cell indices provably derive distinct seeds.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One point on a campaign's DTPM-variant axis: the prediction horizon and
/// the temperature constraint, the two knobs the paper's sensitivity
/// discussions vary. Non-DTPM kinds ignore this axis — declare a single
/// variant when mixing kinds, or the grid runs redundant baseline cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtpmVariant {
    /// Prediction horizon in control intervals.
    pub horizon_steps: usize,
    /// Maximum permissible hotspot temperature, °C.
    pub constraint_c: f64,
}

impl Default for DtpmVariant {
    /// The paper's evaluated configuration: 10 × 100 ms horizon, 63 °C.
    fn default() -> Self {
        let base = DtpmConfig::default();
        DtpmVariant {
            horizon_steps: base.prediction_horizon_steps,
            constraint_c: base.temperature_constraint_c,
        }
    }
}

impl DtpmVariant {
    /// This variant applied over a base DTPM configuration.
    pub fn apply(self, mut base: DtpmConfig) -> DtpmConfig {
        base.prediction_horizon_steps = self.horizon_steps;
        base.temperature_constraint_c = self.constraint_c;
        base
    }
}

/// A declarative sweep campaign: the cartesian product of configuration
/// axes, expanded lazily into [`ExperimentConfig`]s with deterministic
/// per-cell seeds (see the [module docs](self)).
///
/// Cells are ordered kind-major: the linear index decomposes as
/// kinds × benchmarks × ambients × variants × fault plans × replicates,
/// with the replicate axis fastest. Every cell shares the campaign's scalar
/// parameters (control period, duration cap, plant, sensors), so a whole
/// grid steps in lockstep through the batched engines.
///
/// # Example
///
/// ```no_run
/// use platform_sim::{CalibrationCampaign, CollectSink, ExperimentKind, SweepSpec};
/// use workload::BenchmarkId;
///
/// # fn main() -> Result<(), platform_sim::SimError> {
/// let calibration = CalibrationCampaign::default().run(7)?;
/// let spec = SweepSpec::new(
///     vec![ExperimentKind::DefaultWithFan, ExperimentKind::Dtpm],
///     BenchmarkId::paper_set().collect(),
/// )
/// .with_ambients_c(vec![24.0, 28.0, 32.0])
/// .with_replicates(4);
/// assert_eq!(spec.cells(), 2 * 15 * 3 * 4);
/// let mut sink = CollectSink::new(spec.cells());
/// spec.runner().with_lanes(8).run_into(&calibration, &mut sink);
/// // Summaries only: no run retained its per-interval trace.
/// assert!(sink
///     .into_reports()
///     .iter()
///     .all(|r| r.as_ref().map(|r| r.trace.is_none()).unwrap_or(true)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The thermal-management configurations to run (grid axis 1).
    pub kinds: Vec<ExperimentKind>,
    /// The benchmarks to run (grid axis 2).
    pub benchmarks: Vec<BenchmarkId>,
    /// Ambient temperatures, °C (grid axis 3).
    pub ambients_c: Vec<f64>,
    /// DTPM algorithm variants (grid axis 4; ignored by non-DTPM kinds).
    pub dtpm_variants: Vec<DtpmVariant>,
    /// Sensor fault scenarios (grid axis 5): each entry is a fault plan to
    /// inject into every run of that slice of the grid, with `None` the
    /// fault-free baseline. Defaults to a single fault-free entry, which
    /// leaves the cell indexing (and therefore every derived seed) of
    /// pre-fault-axis campaigns unchanged.
    #[serde(default = "default_fault_axis")]
    pub fault_plans: Vec<Option<FaultPlan>>,
    /// Replicate runs per grid point (grid axis 6, the seed axis): each
    /// replicate derives a distinct per-cell seed.
    pub replicates: usize,
    /// Campaign master seed every cell seed is derived from.
    pub campaign_seed: u64,
    /// Base DTPM configuration the variants override.
    pub base_dtpm: DtpmConfig,
    /// Control interval shared by every cell, seconds.
    pub control_period_s: f64,
    /// Duration cap shared by every cell, seconds.
    pub max_duration_s: f64,
    /// Plant (true silicon) parameters shared by every cell.
    pub plant: PlantPowerParams,
    /// Use ideal (noise-free) sensors in every cell.
    pub ideal_sensors: bool,
    /// Plant-engine element precision shared by every cell. The serde
    /// default ([`EnginePrecision::F64`]) keeps persisted campaign specs and
    /// their results bit-identical.
    #[serde(default)]
    pub precision: EnginePrecision,
    /// Deterministic executor-fault injection pinned to specific cells:
    /// each `(cell index, plan)` entry makes that cell's control loop carry
    /// the [`ChaosPlan`] — the containment/retry test hook, now a campaign
    /// property so distributed and in-process executions of the same spec
    /// inject identical faults. Empty (the default) is entirely inert.
    #[serde(default = "default_chaos_cells")]
    pub chaos_cells: Vec<(usize, ChaosPlan)>,
}

impl SweepSpec {
    /// A campaign over the given kind and benchmark axes with the paper's
    /// defaults everywhere else: one ambient (28 °C), one (default) DTPM
    /// variant, one replicate, campaign seed 1.
    pub fn new(kinds: Vec<ExperimentKind>, benchmarks: Vec<BenchmarkId>) -> SweepSpec {
        let defaults = ExperimentConfig::new(ExperimentKind::Dtpm, BenchmarkId::Basicmath);
        SweepSpec {
            kinds,
            benchmarks,
            ambients_c: vec![defaults.ambient_c],
            dtpm_variants: vec![DtpmVariant::default()],
            fault_plans: default_fault_axis(),
            replicates: 1,
            campaign_seed: 1,
            base_dtpm: defaults.dtpm,
            control_period_s: defaults.control_period_s,
            max_duration_s: defaults.max_duration_s,
            plant: defaults.plant,
            ideal_sensors: defaults.ideal_sensors,
            precision: defaults.precision,
            chaos_cells: default_chaos_cells(),
        }
    }

    /// Replaces the ambient-temperature axis.
    #[must_use]
    pub fn with_ambients_c(mut self, ambients_c: Vec<f64>) -> Self {
        self.ambients_c = ambients_c;
        self
    }

    /// Replaces the DTPM-variant axis.
    #[must_use]
    pub fn with_dtpm_variants(mut self, dtpm_variants: Vec<DtpmVariant>) -> Self {
        self.dtpm_variants = dtpm_variants;
        self
    }

    /// Replaces the sensor-fault axis. Each entry applies to a full slice of
    /// the grid (`None` = fault-free); pass `vec![None, Some(plan)]` to run
    /// every scenario both clean and faulted.
    #[must_use]
    pub fn with_fault_plans(mut self, fault_plans: Vec<Option<FaultPlan>>) -> Self {
        self.fault_plans = fault_plans;
        self
    }

    /// Sets the replicate (seed-axis) count.
    #[must_use]
    pub fn with_replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates;
        self
    }

    /// Sets the campaign master seed.
    #[must_use]
    pub fn with_campaign_seed(mut self, campaign_seed: u64) -> Self {
        self.campaign_seed = campaign_seed;
        self
    }

    /// Sets the per-cell duration cap, seconds.
    #[must_use]
    pub fn with_max_duration_s(mut self, max_duration_s: f64) -> Self {
        self.max_duration_s = max_duration_s;
        self
    }

    /// Uses ideal (noise-free) sensors in every cell.
    #[must_use]
    pub fn with_ideal_sensors(mut self, ideal_sensors: bool) -> Self {
        self.ideal_sensors = ideal_sensors;
        self
    }

    /// Sets the plant-engine precision every cell runs at.
    #[must_use]
    pub fn with_precision(mut self, precision: EnginePrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Pins a [`ChaosPlan`] to one cell of the grid: that cell's control
    /// loop will carry the injected executor fault on every execution of
    /// this spec, wherever (and however often, under retry) the cell runs.
    #[must_use]
    pub fn with_cell_chaos(mut self, index: usize, plan: ChaosPlan) -> Self {
        self.chaos_cells.push((index, plan));
        self
    }

    /// Number of grid cells: the product of every axis length (zero if any
    /// axis is empty).
    pub fn cells(&self) -> usize {
        self.kinds.len()
            * self.benchmarks.len()
            * self.ambients_c.len()
            * self.dtpm_variants.len()
            * self.fault_plans.len()
            * self.replicates
    }

    /// Returns `true` if the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells() == 0
    }

    /// The derived seed of cell `index`: [`splitmix64`] of the campaign seed
    /// plus the cell's linear index — distinct per cell (SplitMix64 is a
    /// bijection), stable across runs, independent of execution order.
    pub fn cell_seed(&self, index: usize) -> u64 {
        splitmix64(self.campaign_seed.wrapping_add(index as u64))
    }

    /// Materialises cell `index` of the grid (kind-major order, replicates
    /// fastest).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn cell(&self, index: usize) -> ExperimentConfig {
        assert!(index < self.cells(), "cell index out of range");
        let mut rem = index;
        let replicate = rem % self.replicates;
        rem /= self.replicates;
        let fault = rem % self.fault_plans.len();
        rem /= self.fault_plans.len();
        let variant = self.dtpm_variants[rem % self.dtpm_variants.len()];
        rem /= self.dtpm_variants.len();
        let ambient_c = self.ambients_c[rem % self.ambients_c.len()];
        rem /= self.ambients_c.len();
        let benchmark = self.benchmarks[rem % self.benchmarks.len()];
        rem /= self.benchmarks.len();
        let kind = self.kinds[rem];
        let _ = replicate; // Distinguished through the derived seed alone.
        let mut config = ExperimentConfig::new(kind, benchmark);
        config.seed = self.cell_seed(index);
        config.ambient_c = ambient_c;
        config.dtpm = variant.apply(self.base_dtpm);
        config.control_period_s = self.control_period_s;
        config.max_duration_s = self.max_duration_s;
        config.plant = self.plant;
        config.ideal_sensors = self.ideal_sensors;
        config.faults = self.fault_plans[fault].clone();
        config.precision = self.precision;
        if let Some((_, plan)) = self.chaos_cells.iter().find(|(cell, _)| *cell == index) {
            config.chaos = Some(*plan);
        }
        config
    }

    /// Lazy iterator over every cell of the grid, in linear-index order.
    pub fn expand(&self) -> impl Iterator<Item = ExperimentConfig> + '_ {
        (0..self.cells()).map(|index| self.cell(index))
    }

    /// A stable 64-bit fingerprint of the grid: every axis, seed and shared
    /// scalar folds into it, so two specs fingerprint equal exactly when
    /// they would materialise the same cells. Campaign checkpoints are bound
    /// to this value ([`CampaignCheckpoint::fingerprint`]) so a checkpoint
    /// cannot silently resume a different campaign.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the spec's canonical debug rendering (which includes
        // the shortest round-trip form of every float), finalised through
        // SplitMix64. The rendering is stable for a given spec value, which
        // is all resume verification needs.
        let rendered = format!("{self:?}");
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in rendered.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        splitmix64(hash)
    }

    /// A runner for this campaign (streaming, summaries-only by default).
    pub fn runner(&self) -> CampaignRunner<'_> {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        CampaignRunner {
            spec: self,
            threads: parallelism.min(self.cells()).max(1),
            lanes: 1,
            recording: TracePolicy::SummaryOnly,
            resilience: ResiliencePolicy::default(),
        }
    }
}

/// Executes a [`SweepSpec`] through the lane-compacting sweep scheduler into
/// a [`ResultSink`], expanding cells lazily as workers claim them.
///
/// Built by [`SweepSpec::runner`]; defaults to one worker per available CPU,
/// scalar lanes, and [`TracePolicy::SummaryOnly`] — the configuration whose
/// retained memory is O(cells) regardless of run lengths.
#[derive(Debug, Clone)]
pub struct CampaignRunner<'a> {
    spec: &'a SweepSpec,
    threads: usize,
    lanes: usize,
    recording: TracePolicy,
    resilience: ResiliencePolicy,
}

impl CampaignRunner<'_> {
    /// Overrides the worker-thread count (clamped to at least one).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the batch width: every worker drives a panel engine of this many
    /// lanes, refilling freed lanes from the shared cell queue.
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Sets what each cell's run retains per interval (default:
    /// [`TracePolicy::SummaryOnly`]).
    #[must_use]
    pub fn with_recording(mut self, recording: TracePolicy) -> Self {
        self.recording = recording;
        self
    }

    /// The worker-thread count the runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The batch width (cells advanced per instruction stream).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The per-run trace-retention policy.
    pub fn recording(&self) -> TracePolicy {
        self.recording
    }

    /// Sets the containment policy: retry budget for panicking/overrunning
    /// cells and the cooperative per-cell interval deadline (default: no
    /// retries, no deadline — panic containment itself is always on).
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResiliencePolicy) -> Self {
        self.resilience = resilience;
        self
    }

    /// The containment policy the runner will apply.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.resilience
    }

    /// Runs every cell of the grid, pushing each cell's report into `sink`
    /// (tagged with the cell's linear index) as its lane retires. Cells are
    /// materialised lazily when claimed; individual cell failures do not
    /// abort the campaign.
    pub fn run_into<S>(&self, calibration: &Calibration, sink: &mut S)
    where
        S: ResultSink + Send + ?Sized,
    {
        let spec = self.spec;
        // Every cell shares the campaign's control period and precision:
        // one lockstep group over the whole grid.
        let groups = [(spec.control_period_s, spec.precision, spec.cells())];
        let provider = |_group: usize, index: usize| -> (usize, ExperimentConfig) {
            (index, spec.cell(index))
        };
        let sink = std::sync::Mutex::new(sink);
        sweep_stream(
            self.threads,
            self.lanes,
            &groups,
            self.recording,
            &provider,
            calibration,
            &self.resilience,
            &sink,
        );
    }

    /// Runs an arbitrary subset of the grid — `indices` are global cell
    /// indices — pushing each report into `sink` tagged with its *global*
    /// index, so sinks see the same addressing as a whole-grid run. The
    /// subset primitive behind shard execution and checkpoint resume.
    ///
    /// # Panics
    ///
    /// Panics (when the cell is claimed) if an index is out of range.
    pub fn run_indices_into<S>(&self, indices: &[usize], calibration: &Calibration, sink: &mut S)
    where
        S: ResultSink + Send + ?Sized,
    {
        let spec = self.spec;
        let groups = [(spec.control_period_s, spec.precision, indices.len())];
        let provider = |_group: usize, k: usize| -> (usize, ExperimentConfig) {
            let index = indices[k];
            (index, spec.cell(index))
        };
        let sink = std::sync::Mutex::new(sink);
        sweep_stream(
            self.threads.min(indices.len()).max(1),
            self.lanes,
            &groups,
            self.recording,
            &provider,
            calibration,
            &self.resilience,
            &sink,
        );
    }

    /// Resumes an interrupted campaign from a checkpoint: verifies the
    /// checkpoint belongs to this grid (fingerprint and cell count), then
    /// runs exactly the cells without a recorded outcome. Stream the results
    /// into a [`crate::resilience::CheckpointSink`] restored from the same
    /// checkpoint and the final merged aggregate is bit-identical to an
    /// uninterrupted run, wherever the interruption landed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the checkpoint's fingerprint
    /// or cell count disagrees with this campaign's grid.
    pub fn resume_from<S>(
        &self,
        checkpoint: &CampaignCheckpoint,
        calibration: &Calibration,
        sink: &mut S,
    ) -> Result<(), SimError>
    where
        S: ResultSink + Send + ?Sized,
    {
        if checkpoint.fingerprint() != self.spec.fingerprint() {
            return Err(SimError::InvalidConfig(
                "checkpoint fingerprint does not match this campaign's grid",
            ));
        }
        if checkpoint.cells() != self.spec.cells() {
            return Err(SimError::InvalidConfig(
                "checkpoint cell count does not match this campaign's grid",
            ));
        }
        let remaining = checkpoint.remaining();
        if !remaining.is_empty() {
            self.run_indices_into(&remaining, calibration, sink);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::new(
            vec![ExperimentKind::DefaultWithFan, ExperimentKind::Dtpm],
            vec![BenchmarkId::Crc32, BenchmarkId::Qsort, BenchmarkId::Sha],
        )
        .with_ambients_c(vec![24.0, 30.0])
        .with_dtpm_variants(vec![
            DtpmVariant::default(),
            DtpmVariant {
                horizon_steps: 20,
                constraint_c: 60.0,
            },
        ])
        .with_replicates(3)
        .with_campaign_seed(0xC0FFEE)
    }

    #[test]
    fn cell_count_is_the_axis_product() {
        let spec = spec();
        assert_eq!(spec.cells(), 2 * 3 * 2 * 2 * 3);
        assert!(!spec.is_empty());
        assert!(SweepSpec::new(vec![], vec![BenchmarkId::Crc32]).is_empty());
        assert_eq!(spec.expand().count(), spec.cells());
    }

    #[test]
    fn expansion_covers_the_full_cartesian_product() {
        let spec = spec();
        let mut seen = std::collections::HashSet::new();
        for config in spec.expand() {
            // (kind, benchmark, ambient bits, horizon, constraint bits, seed)
            // identifies the coordinates; replicates differ by seed.
            seen.insert((
                config.kind,
                config.benchmark,
                config.ambient_c.to_bits(),
                config.dtpm.prediction_horizon_steps,
                config.dtpm.temperature_constraint_c.to_bits(),
                config.seed,
            ));
            assert_eq!(config.control_period_s, spec.control_period_s);
            assert_eq!(config.max_duration_s, spec.max_duration_s);
        }
        assert_eq!(seen.len(), spec.cells(), "every cell is distinct");
    }

    #[test]
    fn cell_seeds_are_distinct_deterministic_and_order_independent() {
        let spec = spec();
        let forward: Vec<u64> = (0..spec.cells()).map(|i| spec.cell_seed(i)).collect();
        // Distinct (SplitMix64 is a bijection over the index range).
        let unique: std::collections::HashSet<u64> = forward.iter().copied().collect();
        assert_eq!(unique.len(), forward.len());
        // Independent of iteration order: reverse-order derivation agrees.
        for (i, &seed) in forward.iter().enumerate().rev() {
            assert_eq!(spec.cell_seed(i), seed);
            assert_eq!(spec.cell(i).seed, seed);
        }
        // Stable across spec clones (pure function of seed + index).
        let again = spec.clone();
        assert!((0..again.cells()).all(|i| again.cell_seed(i) == forward[i]));
        // A different campaign seed moves every cell.
        let other = spec.with_campaign_seed(0xBEEF);
        assert!((0..other.cells()).all(|i| other.cell_seed(i) != forward[i]));
    }

    #[test]
    fn lazy_and_eager_expansion_agree() {
        let spec = spec();
        let eager: Vec<ExperimentConfig> = spec.expand().collect();
        for (i, config) in eager.iter().enumerate() {
            assert_eq!(&spec.cell(i), config);
        }
    }

    #[test]
    fn variants_apply_over_the_base_dtpm_config() {
        let mut spec = spec();
        spec.base_dtpm.min_big_cores = 1;
        let config = spec.cell(spec.cells() - 1);
        assert_eq!(config.dtpm.min_big_cores, 1, "base carries through");
        assert_eq!(config.dtpm.prediction_horizon_steps, 20, "variant applies");
        assert_eq!(config.dtpm.temperature_constraint_c, 60.0);
    }

    #[test]
    fn fault_axis_defaults_to_fault_free_and_slices_the_grid() {
        use crate::faults::{FaultKind, FaultWindow, SensorChannel};

        // Default axis: one fault-free entry, invisible in the cell count and
        // in every materialised config.
        let clean = spec();
        assert_eq!(clean.fault_plans, vec![None]);
        assert!(clean.expand().all(|config| config.faults.is_none()));

        // A two-entry axis doubles the grid; each half shares its plan, and
        // the seeds of the fault-free half are NOT the same as the
        // corresponding clean-campaign seeds (the axis reindexes cells).
        let plan = FaultPlan::new(9).with_window(FaultWindow {
            channel: SensorChannel::CoreTemp(0),
            kind: FaultKind::Dropped,
            start_s: 1.0,
            end_s: 2.0,
        });
        let faulted = spec().with_fault_plans(vec![None, Some(plan.clone())]);
        assert_eq!(faulted.cells(), clean.cells() * 2);
        let with_plan = faulted
            .expand()
            .filter(|config| config.faults.is_some())
            .count();
        assert_eq!(with_plan, clean.cells());
        assert!(faulted
            .expand()
            .filter_map(|config| config.faults)
            .all(|p| p == plan));
        // Replicates stay fastest: consecutive indices inside one fault slice
        // share a plan.
        let replicates = faulted.replicates;
        for base in (0..faulted.cells()).step_by(replicates * 2) {
            for offset in 1..replicates {
                assert_eq!(
                    faulted.cell(base).faults.is_some(),
                    faulted.cell(base + offset).faults.is_some()
                );
            }
        }
    }

    #[test]
    fn cell_chaos_pins_plans_to_single_cells() {
        let chaotic = spec().with_cell_chaos(5, ChaosPlan::panic_at(3).healing_after(1));
        assert_eq!(
            chaotic.cell(5).chaos,
            Some(ChaosPlan::panic_at(3).healing_after(1))
        );
        assert!(chaotic.cell(4).chaos.is_none());
        assert!(chaotic.cell(6).chaos.is_none());
        // The chaos axis is part of the grid identity.
        assert_ne!(spec().fingerprint(), chaotic.fingerprint());
    }

    #[test]
    fn fingerprints_identify_the_grid() {
        let base = spec().fingerprint();
        assert_eq!(base, spec().fingerprint(), "stable across clones");
        assert_ne!(base, spec().with_campaign_seed(2).fingerprint());
        assert_ne!(base, spec().with_replicates(4).fingerprint());
        assert_ne!(base, spec().with_max_duration_s(9.5).fingerprint());
        assert_ne!(base, spec().with_ambients_c(vec![24.0]).fingerprint());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cell_panics() {
        let spec = spec();
        spec.cell(spec.cells());
    }

    #[test]
    fn splitmix64_reference_values() {
        // Canonical SplitMix64 outputs (first outputs of streams seeded at
        // 0, 1 and 1234567).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(1_234_567), 0x599E_D017_FB08_FC85);
        // Bijectivity smoke: consecutive inputs do not collide.
        let outputs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outputs.len(), 10_000);
    }
}

//! Structure-of-arrays batched plant: advance N scenarios per instruction
//! stream.
//!
//! [`BatchPlant`] steps K independent physical plants in lockstep, one
//! scenario per column of a [`numeric::Panel`]:
//!
//! * the temperature and node-power state live in `8 × K` panels (row = node,
//!   column = scenario), so every per-node quantity is contiguous across
//!   scenarios and the inner loops run at unit stride;
//! * the thermal ODE advances through a [`thermal_model::BatchStepTransition`]
//!   — the precomputed affine RK4 micro-step applied to the whole panel as a
//!   blocked mat-mat, loading the two 8×8 transition matrices *once* per
//!   micro-step for all lanes (a scalar sweep re-streams them once per
//!   scenario);
//! * the temperature-dependent leakage currents are evaluated by a
//!   [`power_model::LeakagePanel`] (anchored exponential, vectorised across
//!   lanes), and the remaining per-node power assembly is linearised per
//!   control interval into `P = base + coef · I_leak` panel rows.
//!
//! Control decisions stay strictly per-lane: each lane carries its own
//! platform state, demand, fan level and ambient. Only the integrator is
//! batched — lanes whose fan level or ambient diverge fall back to a strided
//! per-lane transition apply that is bit-identical to the panel path, so
//! divergence affects speed, never results.
//!
//! Trajectories match the scalar [`PhysicalPlant`](crate::PhysicalPlant) to well below 1e-9 °C over
//! full runs (the integrator is bit-identical; the leakage linearisation and
//! anchored exponential reassociate a few floating-point operations), which
//! the equivalence suite in `tests/equivalence.rs` pins down.

use numeric::Panel;
use power_model::{DomainPower, LeakagePanel, LeakageParams};
use soc_model::SocSpec;
use thermal_model::{BatchStepTransition, ExynosThermalNetwork};

use crate::engine::LaneInput;
use crate::plant::{
    compute_interval_ops, online_cores, scaled, throughput_units_per_s, IntervalOps,
    PlantPowerParams, PlantStep,
};
use crate::SimError;

/// Number of leakage-current rows the batch evaluates per micro-step: the
/// four big cores, the little cluster (sensed at the case) and the GPU.
const LEAK_ROWS: usize = 6;

/// A cached batch transition together with the (fan boost, ambient) key it
/// was built for.
#[derive(Debug, Clone)]
struct TransitionEntry {
    fan_bits: u64,
    ambient_bits: u64,
    transition: BatchStepTransition,
}

/// K physical plants advanced in lockstep with a structure-of-arrays state
/// (see the module docs). Lanes share the thermal network topology and the
/// SoC spec; power parameters (and therefore leakage models and initial
/// temperatures) are per-lane.
#[derive(Debug, Clone)]
pub struct BatchPlant {
    spec: SocSpec,
    thermal: ExynosThermalNetwork,
    lanes: usize,
    plant_dt_s: f64,
    params: Vec<PlantPowerParams>,
    /// Node temperatures, °C; `node_count × lanes`.
    temps: Panel,
    /// Node power injections, W; `node_count × lanes`.
    powers: Panel,
    /// Integrator scratch; `node_count × lanes`.
    step_tmp: Panel,
    /// Per-interval power linearisation `P = base + coef · I`; both
    /// `node_count × lanes`.
    base: Panel,
    coef: Panel,
    /// Batched leakage models and their current values; `LEAK_ROWS × lanes`.
    leak: LeakagePanel,
    currents: Panel,
    /// Per-micro-step gather of the leakage-relevant node temperatures;
    /// `LEAK_ROWS × lanes`, so the whole leakage pass runs at unit stride.
    leak_temps: Panel,
    /// Whether node rows `0..LEAK_ROWS` line up with the leakage rows (true
    /// for the Odroid topology), enabling the fused assembly span.
    aligned_leak_rows: bool,
    /// Per-domain power accumulators (big, little, gpu, memory); `4 × lanes`.
    accum: Panel,
    /// Per-lane big-cluster uncore power that lands in no node injection:
    /// the scalar plant counts the uncore in `big_w` even when zero cores
    /// are online (so no node receives a share); matched here as an
    /// interval-constant addend to the big-domain average.
    uncore_orphan_w: Vec<f64>,
    /// Temperature-panel row feeding each leakage row.
    leak_temp_rows: [usize; LEAK_ROWS],
    /// Leakage row feeding each node's power assembly (`usize::MAX` = none).
    node_leak_row: Vec<usize>,
    transitions: Vec<TransitionEntry>,
    lane_transition: Vec<usize>,
    /// Micro-steps since the leakage anchors were last refreshed.
    steps_since_anchor: usize,
    /// Per-lane column scratch for the diverged-transition fallback.
    col_scratch: Vec<f64>,
}

impl BatchPlant {
    /// Creates a batch of `params.len()` lanes, each starting at its
    /// configured initial temperature.
    ///
    /// # Panics
    ///
    /// Panics if `params` is empty.
    pub fn new(spec: SocSpec, params: &[PlantPowerParams]) -> Self {
        assert!(!params.is_empty(), "a batch plant needs at least one lane");
        let thermal = ExynosThermalNetwork::odroid_xu_e();
        let node_count = thermal.node_count();
        let lanes = params.len();

        let mut temps = Panel::zeros(node_count, lanes);
        let mut leak = LeakagePanel::filled(
            LEAK_ROWS,
            lanes,
            &scaled(LeakageParams::exynos5410_big(), params[0].leakage_mismatch),
            params[0].initial_temp_c,
        );
        for (lane, p) in params.iter().enumerate() {
            for node in 0..node_count {
                temps.set(node, lane, p.initial_temp_c);
            }
            let big = scaled(LeakageParams::exynos5410_big(), p.leakage_mismatch);
            let little = scaled(LeakageParams::exynos5410_little(), p.leakage_mismatch);
            let gpu = scaled(LeakageParams::exynos5410_gpu(), p.leakage_mismatch);
            for row in 0..4 {
                leak.set_model(row, lane, &big, p.initial_temp_c);
            }
            leak.set_model(4, lane, &little, p.initial_temp_c);
            leak.set_model(5, lane, &gpu, p.initial_temp_c);
        }

        let core_nodes = thermal.big_core_nodes();
        let leak_temp_rows = [
            core_nodes[0].0,
            core_nodes[1].0,
            core_nodes[2].0,
            core_nodes[3].0,
            thermal.case_node().0,
            thermal.gpu_node().0,
        ];
        let mut node_leak_row = vec![usize::MAX; node_count];
        for (row, core) in core_nodes.iter().enumerate() {
            node_leak_row[core.0] = row;
        }
        node_leak_row[thermal.little_node().0] = 4;
        node_leak_row[thermal.gpu_node().0] = 5;
        let aligned_leak_rows = node_leak_row.iter().enumerate().all(|(node, &row)| {
            if node < LEAK_ROWS {
                row == node
            } else {
                row == usize::MAX
            }
        });

        BatchPlant {
            spec,
            lanes,
            plant_dt_s: 0.01,
            params: params.to_vec(),
            temps,
            powers: Panel::zeros(node_count, lanes),
            step_tmp: Panel::zeros(node_count, lanes),
            base: Panel::zeros(node_count, lanes),
            coef: Panel::zeros(node_count, lanes),
            leak,
            currents: Panel::zeros(LEAK_ROWS, lanes),
            leak_temps: Panel::zeros(LEAK_ROWS, lanes),
            aligned_leak_rows,
            accum: Panel::zeros(4, lanes),
            uncore_orphan_w: vec![0.0; lanes],
            leak_temp_rows,
            node_leak_row,
            transitions: Vec::new(),
            lane_transition: vec![0; lanes],
            steps_since_anchor: 0,
            col_scratch: vec![0.0; node_count],
            thermal,
        }
    }

    /// Number of scenario lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of thermal nodes per lane.
    pub fn node_count(&self) -> usize {
        self.temps.rows()
    }

    /// Writes lane `lane`'s current true temperature of every thermal node
    /// (°C) into `out` — the allocation-free accessor the control-loop
    /// executor and the equivalence harnesses use for their per-lane reads.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `out` does not cover
    /// [`BatchPlant::node_count`] nodes.
    pub fn node_temps_into(&self, lane: usize, out: &mut [f64]) {
        self.temps.column_into(lane, out);
    }

    /// Lane `lane`'s current true temperature of every thermal node, °C
    /// (allocating convenience wrapper over [`BatchPlant::node_temps_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn node_temps_c(&self, lane: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.node_count()];
        self.node_temps_into(lane, &mut out);
        out
    }

    /// Lane `lane`'s current true hotspot (big-core) temperatures, °C.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn core_temps_c(&self, lane: usize) -> [f64; 4] {
        let cores = self.thermal.big_core_nodes();
        [
            self.temps.get(cores[0].0, lane),
            self.temps.get(cores[1].0, lane),
            self.temps.get(cores[2].0, lane),
            self.temps.get(cores[3].0, lane),
        ]
    }

    /// Resets every node of `lane` to the given temperature (the leakage
    /// anchors are refreshed on the next micro-step).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn reset_lane_temps(&mut self, lane: usize, temp_c: f64) {
        for node in 0..self.temps.rows() {
            self.temps.set(node, lane, temp_c);
        }
        self.steps_since_anchor = 0;
    }

    /// Re-initialises lane `lane` for a new scenario mid-batch: the lane's
    /// true power parameters become `params`, its leakage models are rebuilt
    /// from the new mismatch factor (anchored exactly at the new initial
    /// temperature, so the admitted lane never reads a stale or unanchored
    /// exponential), and every node restarts at `params.initial_temp_c`.
    ///
    /// The other lanes are untouched — their temperatures, anchors and the
    /// shared re-anchor cadence all stay exactly as they were, so recycling
    /// a freed lane mid-sweep cannot perturb in-flight trajectories. This is
    /// the retire→admit primitive behind the lane-compacting sweep
    /// scheduler (see [`crate::ScenarioSweep`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn admit_lane(&mut self, lane: usize, params: PlantPowerParams) {
        assert!(lane < self.lanes, "lane index out of bounds");
        let big = scaled(LeakageParams::exynos5410_big(), params.leakage_mismatch);
        let little = scaled(LeakageParams::exynos5410_little(), params.leakage_mismatch);
        let gpu = scaled(LeakageParams::exynos5410_gpu(), params.leakage_mismatch);
        for row in 0..4 {
            self.leak.set_model(row, lane, &big, params.initial_temp_c);
        }
        self.leak.set_model(4, lane, &little, params.initial_temp_c);
        self.leak.set_model(5, lane, &gpu, params.initial_temp_c);
        for node in 0..self.temps.rows() {
            self.temps.set(node, lane, params.initial_temp_c);
        }
        self.params[lane] = params;
    }

    /// Looks up (or builds and caches) the batch transition for one
    /// (fan boost, ambient) key.
    fn ensure_transition(&mut self, boost_w_per_k: f64, ambient_c: f64) -> Result<usize, SimError> {
        let key = (boost_w_per_k.to_bits(), ambient_c.to_bits());
        if let Some(found) = self
            .transitions
            .iter()
            .position(|t| (t.fan_bits, t.ambient_bits) == key)
        {
            return Ok(found);
        }
        let boost = self.thermal.fan_boost(boost_w_per_k);
        let transition =
            self.thermal
                .network()
                .batch_step_transition(boost, ambient_c, self.plant_dt_s)?;
        self.transitions.push(TransitionEntry {
            fan_bits: key.0,
            ambient_bits: key.1,
            transition,
        });
        Ok(self.transitions.len() - 1)
    }

    /// Writes lane `lane`'s per-node power linearisation `P = base + coef·I`
    /// for one control interval. The coefficients reproduce the scalar
    /// plant's power computation (same expressions, reassociated at the
    /// interval level), with the per-domain totals recoverable as sums of
    /// node powers.
    fn fill_lane_linearisation(&mut self, lane: usize, ops: &IntervalOps, online_mask: &[bool; 4]) {
        let params = &self.params[lane];
        let core_nodes = self.thermal.big_core_nodes();
        let mut slot = 0;
        for (core, node) in core_nodes.iter().enumerate() {
            let (b, k) = if ops.active_is_big {
                if online_mask[core] {
                    let dynamic = ops.slot_dynamic[slot];
                    slot += 1;
                    (dynamic + ops.uncore_share, ops.volts * 0.25)
                } else {
                    (0.0, ops.volts * 0.25 * params.gated_leakage_fraction)
                }
            } else {
                (0.0, ops.idle_volts * 0.25 * params.gated_leakage_fraction)
            };
            self.base.set(node.0, lane, b);
            self.coef.set(node.0, lane, k);
        }
        let little = self.thermal.little_node().0;
        if ops.active_is_big {
            self.base.set(little, lane, 0.0);
            self.coef
                .set(little, lane, ops.idle_volts * params.gated_leakage_fraction);
        } else {
            self.base.set(little, lane, ops.little_base);
            self.coef.set(little, lane, ops.volts);
        }
        let gpu = self.thermal.gpu_node().0;
        self.base.set(gpu, lane, ops.gpu_dynamic);
        self.coef.set(gpu, lane, ops.gpu_volts);
        let memory = self.thermal.memory_node().0;
        self.base.set(memory, lane, ops.mem_power);
        self.coef.set(memory, lane, 0.0);
        let case = self.thermal.case_node().0;
        self.base.set(case, lane, 0.0);
        self.coef.set(case, lane, 0.0);
    }

    /// Zeroes lane `lane`'s power injection (used when the lane's interval
    /// setup failed: its temperatures keep relaxing, its powers are zero).
    fn zero_lane(&mut self, lane: usize) {
        for node in 0..self.base.rows() {
            self.base.set(node, lane, 0.0);
            self.coef.set(node, lane, 0.0);
        }
    }

    /// Advances every lane by one control interval with per-lane platform
    /// state, demand, fan level and ambient held constant. Returns one
    /// [`PlantStep`] result per lane, in lane order (allocating convenience
    /// wrapper over [`BatchPlant::step_interval_into`]).
    ///
    /// # Errors
    ///
    /// See [`BatchPlant::step_interval_into`].
    pub fn step_interval(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
    ) -> Result<Vec<Result<PlantStep, SimError>>, SimError> {
        let mut steps = Vec::with_capacity(self.lanes);
        self.step_interval_into(inputs, interval_s, &mut steps)?;
        Ok(steps)
    }

    /// Advances every lane by one control interval with per-lane platform
    /// state, demand, fan level and ambient held constant, replacing the
    /// contents of `steps` with one [`PlantStep`] result per lane, in lane
    /// order.
    ///
    /// A lane whose interval setup fails (e.g. an unsupported frequency)
    /// reports its error without disturbing the other lanes; its power
    /// injection is zero for the interval.
    ///
    /// # Errors
    ///
    /// Returns a batch-level error only for malformed calls: a lane-input
    /// count that does not match [`BatchPlant::lanes`] or a non-positive
    /// interval. `steps` is left empty in that case.
    pub fn step_interval_into(
        &mut self,
        inputs: &[LaneInput<'_>],
        interval_s: f64,
        steps: &mut Vec<Result<PlantStep, SimError>>,
    ) -> Result<(), SimError> {
        steps.clear();
        if inputs.len() != self.lanes {
            return Err(SimError::InvalidConfig(
                "lane input count must match the batch width",
            ));
        }
        if !(interval_s > 0.0) {
            return Err(SimError::InvalidConfig("control interval must be positive"));
        }
        let micro_steps = (interval_s / self.plant_dt_s).round().max(1.0) as usize;

        // The transition cache is keyed by (fan level, ambient); both take a
        // handful of values per sweep, but bound it anyway so a caller that
        // churns keys over a long run cannot grow it without limit. Evicting
        // is only safe *between* intervals: during lane setup below,
        // `lane_transition` accumulates live indices into the cache, so a
        // mid-loop clear would dangle them. Within one interval the cache
        // grows by at most `lanes` entries.
        if self.transitions.len() >= 32 {
            self.transitions.clear();
        }

        // Per-lane interval setup: power linearisation + transition key.
        let mut lane_errors: Vec<Option<SimError>> = Vec::with_capacity(self.lanes);
        for (lane, input) in inputs.iter().enumerate() {
            let (online_buf, online_mask, online_count) =
                online_cores(input.state, input.state.active_cluster);
            let ops = compute_interval_ops(
                &self.spec,
                &self.params[lane],
                input.state,
                input.demand,
                &online_buf[..online_count],
            );
            match ops {
                Ok(ops) => {
                    self.fill_lane_linearisation(lane, &ops, &online_mask);
                    // With zero online cores there is no node to carry the
                    // powered cluster's uncore share, but the scalar plant
                    // still bills it to the big domain — keep the averages
                    // equivalent.
                    self.uncore_orphan_w[lane] = if ops.active_is_big && online_count == 0 {
                        ops.uncore
                    } else {
                        0.0
                    };
                    lane_errors.push(None);
                }
                Err(e) => {
                    self.zero_lane(lane);
                    self.uncore_orphan_w[lane] = 0.0;
                    lane_errors.push(Some(e));
                }
            }
            let boost = self.spec.fan().conductance_boost_w_per_k(input.fan_level);
            let index = self.ensure_transition(boost, input.ambient_c)?;
            self.lane_transition[lane] = index;
        }
        let uniform = self
            .lane_transition
            .iter()
            .all(|&i| i == self.lane_transition[0]);
        self.prefill_constant_power_rows();

        self.accum.fill(0.0);
        for _ in 0..micro_steps {
            self.micro_step(uniform);
        }

        let scale = 1.0 / micro_steps as f64;
        steps.extend(inputs.iter().enumerate().map(|(lane, input)| {
            if let Some(e) = lane_errors[lane].take() {
                return Err(e);
            }
            let domain_power = DomainPower::new(
                self.accum.get(0, lane) * scale + self.uncore_orphan_w[lane],
                self.accum.get(1, lane) * scale,
                self.accum.get(2, lane) * scale,
                self.accum.get(3, lane) * scale,
            );
            let fan_power = self.spec.fan().power_w(input.fan_level);
            let platform_power_w =
                domain_power.total() + self.params[lane].board_base_w + fan_power;
            let work_done =
                throughput_units_per_s(&self.spec, input.state, input.demand) * interval_s;
            Ok(PlantStep {
                domain_power,
                core_temps_c: self.core_temps_c(lane),
                platform_power_w,
                work_done,
            })
        }));
        Ok(())
    }

    /// Fills the power rows of nodes without a leakage source (memory, case)
    /// once per interval — they are constant between control decisions, so
    /// the per-micro-step assembly only touches leakage-driven rows.
    fn prefill_constant_power_rows(&mut self) {
        for node in 0..self.powers.rows() {
            if self.node_leak_row[node] == usize::MAX {
                let BatchPlant { powers, base, .. } = self;
                powers.row_mut(node).copy_from_slice(base.row(node));
            }
        }
    }

    /// One batched micro-step: leakage currents, node-power assembly, domain
    /// accumulation and the panel transition. Allocation-free.
    fn micro_step(&mut self, uniform: bool) {
        let lanes = self.lanes;
        let BatchPlant {
            temps,
            powers,
            step_tmp,
            base,
            coef,
            leak,
            currents,
            leak_temps,
            accum,
            leak_temp_rows,
            node_leak_row,
            aligned_leak_rows,
            transitions,
            lane_transition,
            steps_since_anchor,
            col_scratch,
            thermal,
            ..
        } = self;

        // Gather the leakage-relevant node temperatures into one contiguous
        // panel (six row copies), so anchoring and evaluation below are
        // single unit-stride passes over all rows × lanes cells.
        for (row, &temp_row) in leak_temp_rows.iter().enumerate() {
            leak_temps.row_mut(row).copy_from_slice(temps.row(temp_row));
        }
        if *steps_since_anchor == 0 {
            leak.anchor_all(leak_temps.as_slice());
        }
        *steps_since_anchor = (*steps_since_anchor + 1) % LeakagePanel::REANCHOR_STEPS;
        leak.currents_into(leak_temps.as_slice(), currents.as_mut_slice());

        // Node power assembly: P = base + coef · I(src). On the aligned
        // (Odroid) layout the six leakage-driven node rows coincide with the
        // six current rows, so the whole assembly is one fused span; the
        // constant rows were prefilled at interval setup.
        if *aligned_leak_rows {
            let span = LEAK_ROWS * lanes;
            numeric::simd::fused_mul_add_span(
                &base.as_slice()[..span],
                &coef.as_slice()[..span],
                &currents.as_slice()[..span],
                &mut powers.as_mut_slice()[..span],
            );
        } else {
            for (node, &src) in node_leak_row.iter().enumerate() {
                if src == usize::MAX {
                    continue;
                }
                numeric::simd::fused_mul_add_span(
                    base.row(node),
                    coef.row(node),
                    currents.row(src),
                    powers.row_mut(node),
                );
            }
        }

        // Per-domain power accumulation (big = the four core nodes, little,
        // gpu, memory — the per-domain totals are exactly the node sums).
        {
            let cores = thermal.big_core_nodes();
            let p = powers.as_slice();
            let (c0, c1, c2, c3) = (
                &p[cores[0].0 * lanes..cores[0].0 * lanes + lanes],
                &p[cores[1].0 * lanes..cores[1].0 * lanes + lanes],
                &p[cores[2].0 * lanes..cores[2].0 * lanes + lanes],
                &p[cores[3].0 * lanes..cores[3].0 * lanes + lanes],
            );
            let little_node = thermal.little_node().0 * lanes;
            let gpu_node = thermal.gpu_node().0 * lanes;
            let memory_node = thermal.memory_node().0 * lanes;
            let little = &p[little_node..little_node + lanes];
            let gpu = &p[gpu_node..gpu_node + lanes];
            let memory = &p[memory_node..memory_node + lanes];
            let acc = accum.as_mut_slice();
            let (acc_big, rest) = acc.split_at_mut(lanes);
            let (acc_little, rest) = rest.split_at_mut(lanes);
            let (acc_gpu, acc_mem) = rest.split_at_mut(lanes);
            for l in 0..lanes {
                acc_big[l] += c0[l] + c1[l] + c2[l] + c3[l];
                acc_little[l] += little[l];
                acc_gpu[l] += gpu[l];
                acc_mem[l] += memory[l];
            }
        }

        // Advance the thermal panel: one blocked mat-mat when every lane
        // shares the transition, the bit-identical strided fallback otherwise.
        if uniform {
            let transition = &transitions[lane_transition[0]].transition;
            transition.apply_panel(temps, powers, step_tmp);
        } else {
            for lane in 0..lanes {
                let transition = &transitions[lane_transition[lane]].transition;
                transition.apply_lane(temps, powers, lane, col_scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::PhysicalPlant;
    use soc_model::{FanLevel, PlatformState};
    use workload::Demand;

    fn demand() -> Demand {
        Demand {
            cpu_streams: 3.0,
            activity_factor: 0.85,
            gpu_utilization: 0.3,
            memory_intensity: 0.5,
            frequency_scalability: 0.9,
        }
    }

    #[test]
    fn single_lane_batch_tracks_scalar_plant() {
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut scalar = PhysicalPlant::new(spec.clone(), params);
        let mut batch = BatchPlant::new(spec.clone(), &[params]);
        let state = PlatformState::default_for(&spec);
        let d = demand();
        for _ in 0..600 {
            let scalar_step = scalar
                .step_interval(&state, &d, FanLevel::Off, 28.0, 0.1)
                .unwrap();
            let batch_steps = batch
                .step_interval(
                    &[LaneInput {
                        state: &state,
                        demand: &d,
                        fan_level: FanLevel::Off,
                        ambient_c: 28.0,
                    }],
                    0.1,
                )
                .unwrap();
            let batch_step = batch_steps[0].as_ref().unwrap();
            assert_eq!(batch_step.work_done, scalar_step.work_done);
            assert!(
                (batch_step.platform_power_w - scalar_step.platform_power_w).abs() < 1e-9,
                "power diverged: {} vs {}",
                batch_step.platform_power_w,
                scalar_step.platform_power_w
            );
        }
        for (a, b) in batch
            .node_temps_c(0)
            .iter()
            .zip(scalar.node_temps_c().iter())
        {
            assert!((a - b).abs() < 1e-9, "trajectories diverged: {a} vs {b}");
        }
    }

    #[test]
    fn mixed_fan_levels_fall_back_to_per_lane_transitions() {
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut batch = BatchPlant::new(spec.clone(), &[params, params]);
        let state = PlatformState::default_for(&spec);
        let d = demand();
        for _ in 0..300 {
            let steps = batch
                .step_interval(
                    &[
                        LaneInput {
                            state: &state,
                            demand: &d,
                            fan_level: FanLevel::Off,
                            ambient_c: 28.0,
                        },
                        LaneInput {
                            state: &state,
                            demand: &d,
                            fan_level: FanLevel::Full,
                            ambient_c: 28.0,
                        },
                    ],
                    0.1,
                )
                .unwrap();
            assert!(steps.iter().all(Result::is_ok));
        }
        let hot = batch.core_temps_c(0)[0];
        let cooled = batch.core_temps_c(1)[0];
        assert!(
            cooled < hot - 5.0,
            "fanned lane must run cooler: {hot} vs {cooled}"
        );
    }

    #[test]
    fn zero_online_cores_keep_uncore_power_equivalent_to_scalar() {
        // With the big cluster powered but every core offline, no node can
        // carry the uncore share; the scalar plant still bills the uncore to
        // the big domain and the batch must agree.
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut scalar = PhysicalPlant::new(spec.clone(), params);
        let mut batch = BatchPlant::new(spec.clone(), &[params]);
        let mut state = PlatformState::default_for(&spec);
        for core in 0..4 {
            state.set_core_online(soc_model::ClusterKind::Big, core, false);
        }
        let d = demand();
        for _ in 0..50 {
            let scalar_step = scalar
                .step_interval(&state, &d, FanLevel::Off, 28.0, 0.1)
                .unwrap();
            let batch_steps = batch
                .step_interval(
                    &[LaneInput {
                        state: &state,
                        demand: &d,
                        fan_level: FanLevel::Off,
                        ambient_c: 28.0,
                    }],
                    0.1,
                )
                .unwrap();
            let batch_step = batch_steps[0].as_ref().unwrap();
            assert!(
                (batch_step.domain_power.big_w - scalar_step.domain_power.big_w).abs() < 1e-9,
                "big power diverged with zero online cores: {} vs {}",
                batch_step.domain_power.big_w,
                scalar_step.domain_power.big_w
            );
        }
        for (a, b) in batch
            .node_temps_c(0)
            .iter()
            .zip(scalar.node_temps_c().iter())
        {
            assert!((a - b).abs() < 1e-9, "trajectories diverged: {a} vs {b}");
        }
    }

    #[test]
    fn transition_cache_churn_stays_correct() {
        // More distinct (fan, ambient) keys than the cache bound — both
        // across intervals (one lane, ambient changing every interval) and
        // within a single interval (many lanes, all-distinct ambients). The
        // cache may evict between intervals but lane results must keep
        // matching the scalar plant.
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let d = demand();

        let mut scalar = PhysicalPlant::new(spec.clone(), params);
        let mut batch = BatchPlant::new(spec.clone(), &[params]);
        let state = PlatformState::default_for(&spec);
        for i in 0..80 {
            let ambient = 20.0 + 0.25 * i as f64;
            scalar
                .step_interval(&state, &d, FanLevel::Off, ambient, 0.1)
                .unwrap();
            let steps = batch
                .step_interval(
                    &[LaneInput {
                        state: &state,
                        demand: &d,
                        fan_level: FanLevel::Off,
                        ambient_c: ambient,
                    }],
                    0.1,
                )
                .unwrap();
            assert!(steps[0].is_ok());
        }
        for (a, b) in batch
            .node_temps_c(0)
            .iter()
            .zip(scalar.node_temps_c().iter())
        {
            assert!((a - b).abs() < 1e-9, "churned lane diverged: {a} vs {b}");
        }

        let lanes = 40;
        let wide_params = vec![params; lanes];
        let mut wide = BatchPlant::new(spec.clone(), &wide_params);
        let ambients: Vec<f64> = (0..lanes).map(|l| 20.0 + 0.5 * l as f64).collect();
        for _ in 0..5 {
            let inputs: Vec<LaneInput<'_>> = ambients
                .iter()
                .map(|&ambient_c| LaneInput {
                    state: &state,
                    demand: &d,
                    fan_level: FanLevel::Off,
                    ambient_c,
                })
                .collect();
            let steps = wide.step_interval(&inputs, 0.1).unwrap();
            assert!(steps.iter().all(Result::is_ok));
        }
        for (lane, &ambient) in ambients.iter().enumerate() {
            let mut twin = PhysicalPlant::new(spec.clone(), params);
            for _ in 0..5 {
                twin.step_interval(&state, &d, FanLevel::Off, ambient, 0.1)
                    .unwrap();
            }
            for (a, b) in wide
                .node_temps_c(lane)
                .iter()
                .zip(twin.node_temps_c().iter())
            {
                assert!(
                    (a - b).abs() < 1e-9,
                    "wide-batch lane {lane} diverged: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn batch_rejects_malformed_calls() {
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut batch = BatchPlant::new(spec.clone(), &[params]);
        let state = PlatformState::default_for(&spec);
        let d = demand();
        let input = LaneInput {
            state: &state,
            demand: &d,
            fan_level: FanLevel::Off,
            ambient_c: 28.0,
        };
        assert!(batch.step_interval(&[input, input], 0.1).is_err());
        assert!(batch.step_interval(&[input], 0.0).is_err());
    }

    #[test]
    fn reset_lane_temps_resets_one_lane_only() {
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut batch = BatchPlant::new(spec, &[params, params]);
        batch.reset_lane_temps(1, 70.0);
        assert!(batch.node_temps_c(1).iter().all(|&t| t == 70.0));
        assert!(batch
            .node_temps_c(0)
            .iter()
            .all(|&t| t == params.initial_temp_c));
        assert_eq!(batch.lanes(), 2);
        assert_eq!(batch.core_temps_c(1), [70.0; 4]);
    }

    #[test]
    fn lane_admitted_mid_sweep_matches_a_fresh_scalar_run() {
        // The retire→admit primitive: run a 2-lane batch for a while (so the
        // shared re-anchor cadence is mid-stride), recycle lane 1 for a new
        // scenario with different power parameters, and check that (a) the
        // admitted lane's trajectory matches a fresh scalar plant of the new
        // scenario to ≤ 1e-9 °C — in particular it never reads an unanchored
        // leakage exponential (which would show up as NaN temperatures) —
        // and (b) the surviving lane 0 stays on its original trajectory.
        let spec = SocSpec::odroid_xu_e();
        let params = PlantPowerParams::default();
        let mut batch = BatchPlant::new(spec.clone(), &[params, params]);
        let mut survivor = PhysicalPlant::new(spec.clone(), params);
        let state = PlatformState::default_for(&spec);
        let d = demand();
        let input = |state| LaneInput {
            state,
            demand: &d,
            fan_level: FanLevel::Off,
            ambient_c: 28.0,
        };
        // 7 intervals × 10 micro-steps: steps_since_anchor = 70 % 16 ≠ 0.
        for _ in 0..7 {
            batch
                .step_interval(&[input(&state), input(&state)], 0.1)
                .unwrap();
            survivor
                .step_interval(&state, &d, FanLevel::Off, 28.0, 0.1)
                .unwrap();
        }

        let fresh_params = PlantPowerParams {
            leakage_mismatch: 0.97,
            initial_temp_c: 38.5,
            ..PlantPowerParams::default()
        };
        batch.admit_lane(1, fresh_params);
        assert_eq!(batch.core_temps_c(1), [38.5; 4]);
        let mut fresh = PhysicalPlant::new(spec.clone(), fresh_params);

        let mut batch_nodes = vec![0.0; batch.node_count()];
        for i in 0..200 {
            let steps = batch
                .step_interval(&[input(&state), input(&state)], 0.1)
                .unwrap();
            let survivor_step = survivor
                .step_interval(&state, &d, FanLevel::Off, 28.0, 0.1)
                .unwrap();
            let fresh_step = fresh
                .step_interval(&state, &d, FanLevel::Off, 28.0, 0.1)
                .unwrap();
            for (lane, scalar_step) in [(0usize, &survivor_step), (1, &fresh_step)] {
                let batch_step = steps[lane].as_ref().expect("lane step succeeds");
                assert!(
                    batch_step.core_temps_c.iter().all(|t| t.is_finite()),
                    "lane {lane} produced non-finite temperatures at interval {i}"
                );
                assert!(
                    (batch_step.platform_power_w - scalar_step.platform_power_w).abs() < 1e-9,
                    "lane {lane} power diverged at interval {i}"
                );
            }
        }
        for (lane, scalar) in [(0usize, &survivor), (1, &fresh)] {
            batch.node_temps_into(lane, &mut batch_nodes);
            for (a, b) in batch_nodes.iter().zip(scalar.node_temps_c()) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "recycled-batch lane {lane} diverged: {a} vs {b}"
                );
            }
        }
    }
}
